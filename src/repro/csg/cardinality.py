"""Cardinalities: the constraint language of CSGs (Section 4.1).

A cardinality κ prescribes how many links of a relationship each element
must participate in.  The paper writes cardinalities as subsets of ℕ, e.g.
``1``, ``0..1``, ``1..*``; Lemma 2's union operator can produce
*non-contiguous* sets, so we represent a :class:`Cardinality` exactly as a
normalised list of disjoint, ascending integer intervals whose last
interval may be unbounded (``hi is None`` ≙ ``*``).

The four inference operators of the paper — composition (Lemma 1), union
(Lemma 2, in its three domain/codomain variants), join (Lemma 3) and
collateral (Lemma 4) — are implemented here as pure functions on
cardinalities.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable


class CardinalityError(ValueError):
    """A cardinality expression or operation is malformed."""


@dataclasses.dataclass(frozen=True, order=True)
class Interval:
    """A closed integer interval ``lo..hi``; ``hi=None`` means unbounded."""

    lo: int
    hi: int | None

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise CardinalityError(f"negative interval bound: {self.lo}")
        if self.hi is not None and self.hi < self.lo:
            raise CardinalityError(f"empty interval: {self.lo}..{self.hi}")

    def contains(self, value: int) -> bool:
        return value >= self.lo and (self.hi is None or value <= self.hi)

    def __str__(self) -> str:
        if self.hi == self.lo:
            return str(self.lo)
        hi = "*" if self.hi is None else str(self.hi)
        return f"{self.lo}..{hi}"


def _mul(a: int | None, b: int | None) -> int | None:
    """Multiply bounds where ``None`` is +∞ (but ∞·0 = 0)."""
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return a * b


def _add(a: int | None, b: int | None) -> int | None:
    """Add bounds where ``None`` is +∞."""
    if a is None or b is None:
        return None
    return a + b


def _min_bound(a: int | None, b: int | None) -> int | None:
    """Minimum of upper bounds where ``None`` is +∞."""
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _normalise(intervals: Iterable[Interval]) -> tuple[Interval, ...]:
    """Sort intervals and merge overlapping/adjacent ones."""
    ordered = sorted(
        intervals, key=lambda iv: (iv.lo, float("inf") if iv.hi is None else iv.hi)
    )
    merged: list[Interval] = []
    for interval in ordered:
        if not merged:
            merged.append(interval)
            continue
        last = merged[-1]
        if last.hi is None or interval.lo <= last.hi + 1:
            hi = (
                None
                if last.hi is None or interval.hi is None
                else max(last.hi, interval.hi)
            )
            merged[-1] = Interval(last.lo, hi)
        else:
            merged.append(interval)
    return tuple(merged)


class Cardinality:
    """A prescribed cardinality: a set of admissible link counts.

    Construct via :meth:`of`, :meth:`parse`, or the module constants
    :data:`EXACTLY_ONE`, :data:`AT_MOST_ONE`, :data:`AT_LEAST_ONE`,
    :data:`ANY`, :data:`NONE` (the empty cardinality, e.g. from Lemma 3's
    degenerate join).
    """

    __slots__ = ("intervals",)

    def __init__(self, intervals: Iterable[Interval]) -> None:
        object.__setattr__(self, "intervals", _normalise(intervals))

    def __setattr__(self, name: str, value: object) -> None:  # immutability
        raise AttributeError("Cardinality objects are immutable")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, lo: int, hi: int | None = -1) -> "Cardinality":
        """``Cardinality.of(1)`` ≙ exactly 1; ``of(0, None)`` ≙ ``0..*``."""
        if hi == -1:
            hi = lo
        return cls([Interval(lo, hi)])

    @classmethod
    def empty(cls) -> "Cardinality":
        return cls([])

    @classmethod
    def parse(cls, text: str) -> "Cardinality":
        """Parse the paper's notation: ``"1"``, ``"0..1"``, ``"1..*"``, or
        comma-separated unions such as ``"0, 2..4"``."""
        intervals: list[Interval] = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                raise CardinalityError(f"bad cardinality: {text!r}")
            if ".." in part:
                lo_text, hi_text = part.split("..", 1)
                lo = int(lo_text)
                hi = None if hi_text.strip() == "*" else int(hi_text)
            elif part == "*":
                lo, hi = 0, None
            else:
                lo = int(part)
                hi = lo
            intervals.append(Interval(lo, hi))
        return cls(intervals)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    @property
    def min(self) -> int | None:
        """The smallest admissible count, or None if empty."""
        return self.intervals[0].lo if self.intervals else None

    @property
    def max(self) -> int | None:
        """The largest admissible count; ``None`` for unbounded or empty.

        Use :attr:`is_bounded` to tell the two ``None`` cases apart.
        """
        if not self.intervals:
            return None
        return self.intervals[-1].hi

    @property
    def is_bounded(self) -> bool:
        return bool(self.intervals) and self.intervals[-1].hi is not None

    def contains(self, value: int) -> bool:
        return any(interval.contains(value) for interval in self.intervals)

    def is_subset(self, other: "Cardinality") -> bool:
        """κ₁ ⊆ κ₂ — every admissible count of self is admissible in other."""
        for interval in self.intervals:
            if not _interval_covered(interval, other.intervals):
                return False
        return True

    def is_proper_subset(self, other: "Cardinality") -> bool:
        """κ₁ ⊂ κ₂ — the paper's "more concise" relation (Section 4.1)."""
        return self.is_subset(other) and self != other

    def intersection(self, other: "Cardinality") -> "Cardinality":
        result: list[Interval] = []
        for a in self.intervals:
            for b in other.intervals:
                lo = max(a.lo, b.lo)
                hi = _min_bound(a.hi, b.hi)
                if hi is None or lo <= hi:
                    result.append(Interval(lo, hi))
        return Cardinality(result)

    # ------------------------------------------------------------------
    # Lemma 1: composition
    # ------------------------------------------------------------------

    def compose(self, other: "Cardinality") -> "Cardinality":
        """κ(ρ₁ ∘ ρ₂) = (sgn a₁ · a₂)..(b₁ · b₂) per interval pair (Lemma 1)."""
        if self.is_empty or other.is_empty:
            return Cardinality.empty()
        result = []
        for a in self.intervals:
            for b in other.intervals:
                lo = b.lo if a.lo > 0 else 0
                hi = _mul(a.hi, b.hi)
                result.append(Interval(lo, hi))
        return Cardinality(result)

    # ------------------------------------------------------------------
    # Lemma 2: union (three variants)
    # ------------------------------------------------------------------

    def union_disjoint_domains(self, other: "Cardinality") -> "Cardinality":
        """κ₁ ∪ κ₂ — plain set union (disjoint link domains)."""
        return Cardinality(self.intervals + other.intervals)

    def union_sum(self, other: "Cardinality") -> "Cardinality":
        """κ₁ + κ₂ = {a+b} — equal domains, disjoint codomains."""
        if self.is_empty or other.is_empty:
            return Cardinality.empty()
        result = []
        for a in self.intervals:
            for b in other.intervals:
                result.append(Interval(a.lo + b.lo, _add(a.hi, b.hi)))
        return Cardinality(result)

    def union_overlapping(self, other: "Cardinality") -> "Cardinality":
        """κ₁ +̂ κ₂ = {c : max(a,b) ≤ c ≤ a+b} — overlapping codomains."""
        if self.is_empty or other.is_empty:
            return Cardinality.empty()
        result = []
        for a in self.intervals:
            for b in other.intervals:
                result.append(Interval(max(a.lo, b.lo), _add(a.hi, b.hi)))
        return Cardinality(result)

    # ------------------------------------------------------------------
    # Lemma 3: join
    # ------------------------------------------------------------------

    def join(self, other: "Cardinality") -> "Cardinality":
        """κ(ρ₁ ⋈ ρ₂): ∅ if either relationship admits no link, else 1..m
        with m = min(max κ₁, max κ₂)."""
        if self.is_empty or other.is_empty:
            return Cardinality.empty()
        m = _min_bound(self.max if self.is_bounded else None,
                       other.max if other.is_bounded else None)
        if m == 0:
            return Cardinality.empty()
        return Cardinality([Interval(1, m)])

    def join_inverse(self, other: "Cardinality") -> "Cardinality":
        """κ((ρ₁ ⋈ ρ₂)⁻¹) = (min κ₁ · min κ₂)..(max κ₁ · max κ₂)."""
        if self.is_empty or other.is_empty:
            return Cardinality.empty()
        lo = self.min * other.min
        hi = _mul(
            self.max if self.is_bounded else None,
            other.max if other.is_bounded else None,
        )
        return Cardinality([Interval(lo, hi)])

    # ------------------------------------------------------------------
    # Lemma 4: collateral
    # ------------------------------------------------------------------

    def collateral(self, other: "Cardinality") -> "Cardinality":
        """κ(ρ₁ ‖ ρ₂) = 0..(max κ₁ · max κ₂)."""
        if self.is_empty or other.is_empty:
            return Cardinality.empty()
        hi = _mul(
            self.max if self.is_bounded else None,
            other.max if other.is_bounded else None,
        )
        return Cardinality([Interval(0, hi)])

    # ------------------------------------------------------------------
    # Dunder
    # ------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cardinality):
            return NotImplemented
        return self.intervals == other.intervals

    def __hash__(self) -> int:
        return hash(self.intervals)

    def __str__(self) -> str:
        if not self.intervals:
            return "∅"  # ∅
        return ", ".join(str(interval) for interval in self.intervals)

    def __repr__(self) -> str:
        return f"Cardinality({self})"


def _interval_covered(interval: Interval, cover: tuple[Interval, ...]) -> bool:
    """Whether ``interval`` lies within the (normalised, disjoint) ``cover``."""
    for candidate in cover:
        if candidate.lo <= interval.lo and (
            candidate.hi is None
            or (interval.hi is not None and interval.hi <= candidate.hi)
        ):
            return True
    return False


EXACTLY_ONE = Cardinality.of(1)
AT_MOST_ONE = Cardinality.of(0, 1)
AT_LEAST_ONE = Cardinality.of(1, None)
ANY = Cardinality.of(0, None)
NONE = Cardinality.empty()
