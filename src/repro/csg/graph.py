"""Cardinality-constrained schema graphs (CSGs), Definition 1 of the paper.

A CSG is a tuple Γ = (N, P, κ): nodes, directed relationships between
nodes, and a prescribed cardinality per relationship.  Nodes are either
*table nodes* (the identity of tuples) or *attribute nodes* (the distinct
values of an attribute).  Relationships come in two flavours:

* ``attribute`` relationships link tuples to their attribute values
  (ρ_table→attr and its inverse), and
* ``equality`` relationships link equal elements of two attribute nodes —
  this is how foreign keys (dashed lines in Fig. 4) and correspondence-
  induced value sharing are modelled.

Every relationship is stored together with its inverse so both directions
carry their own prescribed cardinality (e.g. κ(ρ_tracks→record) = 1 but
κ(ρ_record→tracks) = 1..*).
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Iterator

from .cardinality import ANY, Cardinality


class CsgError(ValueError):
    """A CSG is being built or queried inconsistently."""


class NodeKind(enum.Enum):
    TABLE = "table"
    ATTRIBUTE = "attribute"


@dataclasses.dataclass(frozen=True)
class Node:
    """A CSG node.  ``name`` is unique within its graph.

    For attribute nodes created from a relational schema the name is
    ``relation.attribute``; ``relation``/``attribute`` keep the provenance
    for reporting.
    """

    name: str
    kind: NodeKind
    relation: str | None = None
    attribute: str | None = None

    @property
    def is_table(self) -> bool:
        return self.kind is NodeKind.TABLE

    @property
    def is_attribute(self) -> bool:
        return self.kind is NodeKind.ATTRIBUTE

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class RelationshipKind(enum.Enum):
    ATTRIBUTE = "attribute"
    EQUALITY = "equality"


class Relationship:
    """A directed relationship ρ_{start→end} with a prescribed cardinality."""

    __slots__ = ("start", "end", "kind", "cardinality", "_inverse", "label")

    def __init__(
        self,
        start: Node,
        end: Node,
        kind: RelationshipKind,
        cardinality: Cardinality = ANY,
        label: str | None = None,
    ) -> None:
        self.start = start
        self.end = end
        self.kind = kind
        self.cardinality = cardinality
        self.label = label or f"{start.name}->{end.name}"
        self._inverse: Relationship | None = None

    @property
    def inverse(self) -> "Relationship":
        if self._inverse is None:
            raise CsgError(f"relationship {self.label} has no inverse bound")
        return self._inverse

    def bind_inverse(self, other: "Relationship") -> None:
        if other.start is not self.end or other.end is not self.start:
            raise CsgError("inverse relationship endpoints do not mirror")
        self._inverse = other
        other._inverse = self

    @property
    def is_equality(self) -> bool:
        return self.kind is RelationshipKind.EQUALITY

    def __repr__(self) -> str:
        return f"Relationship({self.label}, κ={self.cardinality})"


class Csg:
    """A cardinality-constrained schema graph."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._nodes: dict[str, Node] = {}
        self._relationships: list[Relationship] = []
        self._outgoing: dict[str, list[Relationship]] = {}

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise CsgError(f"duplicate node name: {node.name!r}")
        self._nodes[node.name] = node
        self._outgoing[node.name] = []
        return node

    def add_table_node(self, relation: str) -> Node:
        return self.add_node(Node(relation, NodeKind.TABLE, relation=relation))

    def add_attribute_node(self, relation: str, attribute: str) -> Node:
        return self.add_node(
            Node(
                f"{relation}.{attribute}",
                NodeKind.ATTRIBUTE,
                relation=relation,
                attribute=attribute,
            )
        )

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise CsgError(f"unknown CSG node: {name!r}") from None

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    @property
    def nodes(self) -> tuple[Node, ...]:
        return tuple(self._nodes.values())

    def table_nodes(self) -> tuple[Node, ...]:
        return tuple(node for node in self._nodes.values() if node.is_table)

    def attribute_nodes(self) -> tuple[Node, ...]:
        return tuple(node for node in self._nodes.values() if node.is_attribute)

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------

    def add_relationship_pair(
        self,
        start: Node,
        end: Node,
        kind: RelationshipKind,
        forward: Cardinality,
        backward: Cardinality,
    ) -> tuple[Relationship, Relationship]:
        """Add ρ_{start→end} and its inverse in one step."""
        for node in (start, end):
            if node.name not in self._nodes:
                raise CsgError(f"node {node.name!r} is not in graph {self.name!r}")
        fwd = Relationship(start, end, kind, forward)
        bwd = Relationship(end, start, kind, backward)
        fwd.bind_inverse(bwd)
        self._relationships.extend((fwd, bwd))
        self._outgoing[start.name].append(fwd)
        self._outgoing[end.name].append(bwd)
        return fwd, bwd

    @property
    def relationships(self) -> tuple[Relationship, ...]:
        return tuple(self._relationships)

    def outgoing(self, node: Node) -> tuple[Relationship, ...]:
        return tuple(self._outgoing[node.name])

    def relationship(self, start_name: str, end_name: str) -> Relationship:
        """The (first) direct relationship from ``start_name`` to ``end_name``."""
        for rel in self._outgoing.get(start_name, ()):
            if rel.end.name == end_name:
                return rel
        raise CsgError(
            f"no relationship {start_name!r} -> {end_name!r} in {self.name!r}"
        )

    def atomic_relationships(self) -> Iterator[Relationship]:
        """All non-equality relationships (the ones constraints prescribe)."""
        for rel in self._relationships:
            if not rel.is_equality:
                yield rel

    def __repr__(self) -> str:
        return (
            f"Csg({self.name!r}, {len(self._nodes)} nodes, "
            f"{len(self._relationships)} relationships)"
        )
