"""Cardinality-constrained schema graphs (CSGs) — Section 4 of the paper.

The CSG formalism is the paper's novel metamodel for comparing schemas in
terms of mappings and constraints.  This package provides:

* :mod:`~repro.csg.cardinality` — cardinality interval sets and the four
  inference operators (composition, union, join, collateral; Lemmas 1-4),
* :mod:`~repro.csg.graph` — graphs, nodes, relationships (Definition 1),
* :mod:`~repro.csg.instance` — instances, links, actual cardinalities and
  violation counting (Definition 2),
* :mod:`~repro.csg.convert` — lossless relational → CSG conversion,
* :mod:`~repro.csg.paths` — path search and conciseness-based matching of
  target relationships to composite source relationships.
"""

from .cardinality import (
    ANY,
    AT_LEAST_ONE,
    AT_MOST_ONE,
    EXACTLY_ONE,
    NONE,
    Cardinality,
    CardinalityError,
    Interval,
)
from .convert import attribute_node_of, database_to_csg, schema_to_csg, tuple_id
from .graph import Csg, CsgError, Node, NodeKind, Relationship, RelationshipKind
from .instance import CsgInstance
from .paths import (
    DEFAULT_MAX_PATH_LENGTH,
    MatchedPath,
    find_paths,
    infer_path_cardinality,
    match_endpoints,
    most_concise,
)

__all__ = [
    "ANY",
    "AT_LEAST_ONE",
    "AT_MOST_ONE",
    "Cardinality",
    "CardinalityError",
    "Csg",
    "CsgError",
    "CsgInstance",
    "DEFAULT_MAX_PATH_LENGTH",
    "EXACTLY_ONE",
    "Interval",
    "MatchedPath",
    "NONE",
    "Node",
    "NodeKind",
    "Relationship",
    "RelationshipKind",
    "attribute_node_of",
    "database_to_csg",
    "find_paths",
    "infer_path_cardinality",
    "match_endpoints",
    "most_concise",
    "schema_to_csg",
    "tuple_id",
]
