"""Path search and conciseness-based relationship matching (Section 4.1).

Target relationships can correspond to arbitrarily complex source
relationships — in particular compositions — so matching a target
relationship to the source schema is a graph-search problem: map the
target relationship's endpoints into the source CSG via the
correspondences, enumerate simple paths between the mapped nodes, infer
each path's cardinality by composing the edge cardinalities (Lemma 1), and
pick the *most concise* path: the one whose inferred cardinality is a
proper subset of the others', with ties broken by path length (Occam's
razor) and finally by label order for determinism.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from .cardinality import Cardinality
from .graph import Csg, Node, Relationship

Path = tuple[Relationship, ...]

DEFAULT_MAX_PATH_LENGTH = 8


def infer_path_cardinality(path: Sequence[Relationship]) -> Cardinality:
    """Compose the cardinalities along ``path`` via Lemma 1."""
    if not path:
        raise ValueError("cannot infer the cardinality of an empty path")
    cardinality = path[0].cardinality
    for relationship in path[1:]:
        cardinality = cardinality.compose(relationship.cardinality)
    return cardinality


def find_paths(
    graph: Csg,
    start: Node,
    end: Node,
    max_length: int = DEFAULT_MAX_PATH_LENGTH,
) -> list[Path]:
    """All node-simple paths from ``start`` to ``end`` up to ``max_length``.

    Node-simplicity also prevents trivially bouncing back over an inverse
    relationship.  Results are in breadth-first (shortest-first) order.
    """
    if start.name == end.name:
        return []
    paths: list[Path] = []
    frontier: list[tuple[Node, Path, frozenset[str]]] = [
        (start, (), frozenset({start.name}))
    ]
    while frontier:
        next_frontier: list[tuple[Node, Path, frozenset[str]]] = []
        for node, path, visited in frontier:
            if len(path) >= max_length:
                continue
            for relationship in graph.outgoing(node):
                successor = relationship.end
                if successor.name in visited:
                    continue
                extended = path + (relationship,)
                if successor.name == end.name:
                    paths.append(extended)
                else:
                    next_frontier.append(
                        (successor, extended, visited | {successor.name})
                    )
        frontier = next_frontier
    return paths


@dataclasses.dataclass(frozen=True)
class MatchedPath:
    """A source path matched to a target relationship, with its cardinality."""

    path: Path
    cardinality: Cardinality

    @property
    def length(self) -> int:
        return len(self.path)

    def describe(self) -> str:
        if not self.path:
            return "<empty>"
        nodes = [self.path[0].start.name]
        nodes.extend(relationship.end.name for relationship in self.path)
        return " -> ".join(nodes)


def most_concise(
    candidates: Sequence[MatchedPath], use_conciseness: bool = True
) -> MatchedPath | None:
    """Select the best candidate per Section 4.1's conciseness rule.

    ``use_conciseness=False`` disables the cardinality criterion and falls
    back to shortest-path selection — this switch exists for the
    conciseness ablation benchmark.
    """
    if not candidates:
        return None
    pool = list(candidates)
    if use_conciseness:
        minimal = [
            candidate
            for candidate in pool
            if not any(
                other.cardinality.is_proper_subset(candidate.cardinality)
                for other in pool
            )
        ]
        if minimal:
            pool = minimal
    pool.sort(
        key=lambda candidate: (
            candidate.length,
            tuple(relationship.label for relationship in candidate.path),
        )
    )
    return pool[0]


def match_endpoints(
    graph: Csg,
    start_names: Sequence[str],
    end_names: Sequence[str],
    max_length: int = DEFAULT_MAX_PATH_LENGTH,
    use_conciseness: bool = True,
) -> MatchedPath | None:
    """Match a target relationship whose endpoints map to the given source
    node names (several candidates each when correspondences are m:n)."""
    candidates: list[MatchedPath] = []
    for start_name in start_names:
        if not graph.has_node(start_name):
            continue
        start = graph.node(start_name)
        for end_name in end_names:
            if not graph.has_node(end_name):
                continue
            end = graph.node(end_name)
            for path in find_paths(graph, start, end, max_length=max_length):
                candidates.append(
                    MatchedPath(path, infer_path_cardinality(path))
                )
    return most_concise(candidates, use_conciseness=use_conciseness)
