"""CSG instances (Definition 2): elements per node, links per relationship.

An instance assigns to each node a set of elements (abstract tuple ids for
table nodes, distinct values for attribute nodes) and to each relationship
the set of links between those elements.  The instance is what lets the
structure conflict detector turn a *potential* conflict (cardinality
mismatch) into a *counted* one (how many source elements actually violate
the target constraint, Table 3).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Sequence

from .cardinality import Cardinality, Interval
from .graph import Csg, CsgError, Relationship

Link = tuple[object, object]


class CsgInstance:
    """Elements and links for a :class:`~repro.csg.graph.Csg`."""

    def __init__(self, graph: Csg) -> None:
        self.graph = graph
        self._elements: dict[str, set[object]] = {
            node.name: set() for node in graph.nodes
        }
        self._links: dict[int, set[Link]] = {}

    # ------------------------------------------------------------------
    # Population
    # ------------------------------------------------------------------

    def add_elements(self, node_name: str, elements: Iterable[object]) -> None:
        if node_name not in self._elements:
            raise CsgError(f"unknown CSG node: {node_name!r}")
        self._elements[node_name].update(elements)

    def add_links(self, relationship: Relationship, links: Iterable[Link]) -> None:
        """Add links to a relationship and mirror them on its inverse."""
        forward = self._links.setdefault(id(relationship), set())
        backward = self._links.setdefault(id(relationship.inverse), set())
        for start_element, end_element in links:
            forward.add((start_element, end_element))
            backward.add((end_element, start_element))

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    def elements(self, node_name: str) -> frozenset[object]:
        try:
            return frozenset(self._elements[node_name])
        except KeyError:
            raise CsgError(f"unknown CSG node: {node_name!r}") from None

    def links(self, relationship: Relationship) -> frozenset[Link]:
        return frozenset(self._links.get(id(relationship), ()))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------

    def image_sets(
        self, path: Sequence[Relationship]
    ) -> dict[object, set[object]]:
        """For the composed relationship along ``path``, map every element
        of the path's start node to the set of *distinct* end elements it
        reaches (possibly empty)."""
        if not path:
            raise CsgError("image_sets requires a non-empty path")
        start_node = path[0].start.name
        reachable: dict[object, set[object]] = {
            element: {element} for element in self._elements[start_node]
        }
        for relationship in path:
            adjacency: dict[object, set[object]] = defaultdict(set)
            for a, b in self._links.get(id(relationship), ()):
                adjacency[a].add(b)
            reachable = {
                origin: set().union(
                    *(adjacency.get(current, set()) for current in frontier)
                )
                if frontier
                else set()
                for origin, frontier in reachable.items()
            }
        return reachable

    def image_counts(self, path: Sequence[Relationship]) -> dict[object, int]:
        """For the composed relationship along ``path``, map every element
        of the path's start node to the number of *distinct* end elements
        it reaches.  Elements reaching nothing are reported with count 0.
        """
        return {
            origin: len(frontier)
            for origin, frontier in self.image_sets(path).items()
        }

    def actual_cardinality(self, path: Sequence[Relationship]) -> Cardinality:
        """The observed cardinality of the composed relationship: the hull
        ``min..max`` of per-element distinct-image counts.

        An empty start node yields the empty cardinality (nothing is
        observed, nothing is prescribed).
        """
        counts = self.image_counts(path)
        if not counts:
            return Cardinality.empty()
        values = sorted(set(counts.values()))
        return Cardinality([Interval(values[0], values[-1])])

    def count_violations(
        self, path: Sequence[Relationship], prescribed: Cardinality
    ) -> int:
        """How many start-node elements have an image count outside
        ``prescribed`` — the violation counts of Table 3."""
        counts = self.image_counts(path)
        return sum(
            1 for count in counts.values() if not prescribed.contains(count)
        )

    def violating_elements(
        self, path: Sequence[Relationship], prescribed: Cardinality
    ) -> dict[object, int]:
        """The violating start elements and their offending image counts."""
        counts = self.image_counts(path)
        return {
            element: count
            for element, count in counts.items()
            if not prescribed.contains(count)
        }

    def __repr__(self) -> str:
        total_elements = sum(len(values) for values in self._elements.values())
        total_links = sum(len(links) for links in self._links.values()) // 2
        return (
            f"CsgInstance({self.graph.name!r}, {total_elements} elements, "
            f"{total_links} link pairs)"
        )
