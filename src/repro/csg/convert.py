"""Relational → CSG conversion (Section 4.1).

"To convert a relational schema, for each of its relations, a table node
is created [...]; for each attribute, an attribute node is created and
connected to its table node via a relationship."  Constraints translate to
prescribed cardinalities:

===========================  =======================================
relational constraint        prescribed cardinality
===========================  =======================================
NOT NULL on R.a              κ(ρ_R→a) = 1      (else 0..1)
UNIQUE on R.a                κ(ρ_a→R) = 1      (else 1..*)
FOREIGN KEY R.a → S.b        equality relationship a = b with
                             κ(ρ_a→b) = 1, κ(ρ_b→a) = 0..1
===========================  =======================================

The two relational conformity rules come for free: "each tuple can have at
most one value per attribute" (κ(ρ_R→a) ⊆ 0..1) and "each attribute value
must be contained in a tuple" (κ(ρ_a→R) ⊇ 1..*, tightened to 1 by UNIQUE).

Composite foreign keys are translated attribute-pair-wise: if the composite
combination exists in the referenced relation then each component value
exists in its referenced column, so the per-pair κ(ρ_a→b) = 1 constraints
are sound (the n-ary version corresponds to the paper's collateral
operator).
"""

from __future__ import annotations

from ..relational.constraints import ForeignKey
from ..relational.database import Database
from ..relational.schema import Schema
from .cardinality import AT_LEAST_ONE, AT_MOST_ONE, EXACTLY_ONE
from .graph import Csg, Node, RelationshipKind
from .instance import CsgInstance

TupleId = tuple[str, int]


def schema_to_csg(schema: Schema) -> Csg:
    """Convert a relational schema (without data) into a CSG."""
    graph = Csg(schema.name)
    for relation in schema.relations:
        table_node = graph.add_table_node(relation.name)
        for attribute in relation.attributes:
            attribute_node = graph.add_attribute_node(
                relation.name, attribute.name
            )
            forward = (
                EXACTLY_ONE
                if schema.is_not_null(relation.name, attribute.name)
                else AT_MOST_ONE
            )
            backward = (
                EXACTLY_ONE
                if schema.is_unique(relation.name, attribute.name)
                else AT_LEAST_ONE
            )
            graph.add_relationship_pair(
                table_node,
                attribute_node,
                RelationshipKind.ATTRIBUTE,
                forward,
                backward,
            )
    for constraint in schema.foreign_keys():
        _add_foreign_key(graph, constraint)
    return graph


def _add_foreign_key(graph: Csg, constraint: ForeignKey) -> None:
    for attribute, referenced_attribute in zip(
        constraint.attributes, constraint.referenced_attributes
    ):
        referencing_node = graph.node(f"{constraint.relation}.{attribute}")
        referenced_node = graph.node(
            f"{constraint.referenced}.{referenced_attribute}"
        )
        graph.add_relationship_pair(
            referencing_node,
            referenced_node,
            RelationshipKind.EQUALITY,
            EXACTLY_ONE,
            AT_MOST_ONE,
        )


def tuple_id(relation_name: str, index: int) -> TupleId:
    """The abstract element identifying tuple ``index`` of a relation."""
    return (relation_name, index)


def database_to_csg(database: Database) -> tuple[Csg, CsgInstance]:
    """Convert a database into a CSG plus the CSG instance of its data.

    Table-node elements are abstract tuple ids; attribute-node elements
    are the distinct non-null values of the attribute; attribute links
    connect tuple ids to their values; equality links connect the common
    values of FK attribute pairs.
    """
    graph = schema_to_csg(database.schema)
    instance = CsgInstance(graph)
    for relation in database.schema.relations:
        table = database.table(relation.name)
        ids = [tuple_id(relation.name, index) for index in range(len(table))]
        instance.add_elements(relation.name, ids)
        for position, attribute in enumerate(relation.attributes):
            node_name = f"{relation.name}.{attribute.name}"
            relationship = graph.relationship(relation.name, node_name)
            links = []
            values: set[object] = set()
            for index, row in enumerate(table):
                value = row[position]
                if value is None:
                    continue
                values.add(value)
                links.append((ids[index], value))
            instance.add_elements(node_name, values)
            instance.add_links(relationship, links)
    for constraint in database.schema.foreign_keys():
        _link_foreign_key(graph, instance, constraint)
    return graph, instance


def _link_foreign_key(
    graph: Csg, instance: CsgInstance, constraint: ForeignKey
) -> None:
    for attribute, referenced_attribute in zip(
        constraint.attributes, constraint.referenced_attributes
    ):
        referencing_name = f"{constraint.relation}.{attribute}"
        referenced_name = f"{constraint.referenced}.{referenced_attribute}"
        relationship = graph.relationship(referencing_name, referenced_name)
        common = instance.elements(referencing_name) & instance.elements(
            referenced_name
        )
        instance.add_links(relationship, [(value, value) for value in common])


def attribute_node_of(graph: Csg, relation: str, attribute: str) -> Node:
    """Convenience lookup of the attribute node ``relation.attribute``."""
    return graph.node(f"{relation}.{attribute}")
