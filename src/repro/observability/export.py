"""Exporters: span trees to JSON/text, metrics to Prometheus exposition.

Three consumers, three formats:

* :func:`span_to_dict` / :func:`span_from_dict` — the lossless JSON codec
  behind ``GET /trace/<job_id>``, the experiments harness's per-scenario
  trace files, and :mod:`repro.core.serialize`,
* :func:`render_span_tree` — the aligned text tree ``efes trace`` prints,
  with per-span total/self times and cache-hit annotations,
* :func:`prometheus_text` — Prometheus text exposition (format 0.0.4) of
  a :class:`~repro.runtime.metrics.MetricsSnapshot`, served by the
  service's ``GET /metrics`` under ``Accept: text/plain``.

The exposition follows the format rules that scrapers actually validate:
sanitised metric names, escaped label values, cumulative monotone
histogram buckets ending at ``+Inf``, and ``_sum``/``_count`` series per
histogram family.  Quantile estimates (p50/p95/p99) are emitted as a
companion gauge family because native histograms cannot carry them.
"""

from __future__ import annotations

import math
import re

from .tracing import Span

_METRIC_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Format marker embedded in serialised span documents.
TRACE_VERSION = 1


# ----------------------------------------------------------------------
# Span codec
# ----------------------------------------------------------------------


def span_to_dict(span: Span) -> dict:
    """A lossless JSON-compatible rendering of a span subtree."""
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "started_at": span.started_at,
        "duration_seconds": span.duration_seconds,
        "attributes": dict(span.attributes),
        "children": [span_to_dict(child) for child in span.children],
    }


def span_from_dict(doc: dict) -> Span:
    """Rebuild a span tree; the inverse of :func:`span_to_dict`."""
    try:
        span = Span(
            doc["name"],
            trace_id=doc["trace_id"],
            parent_id=doc.get("parent_id"),
            attributes=doc.get("attributes"),
        )
        span.span_id = doc["span_id"]
        span.started_at = doc["started_at"]
        span.duration_seconds = doc["duration_seconds"]
        for child_doc in doc.get("children", ()):
            span.add_child(span_from_dict(child_doc))
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed span document: {exc}") from exc
    return span


# ----------------------------------------------------------------------
# Text tree
# ----------------------------------------------------------------------


def _annotations(span: Span) -> str:
    notes = []
    if span.attributes.get("cache_hit") is True:
        notes.append("cache hit")
    if span.attributes.get("from_store") is True:
        notes.append("from store")
    if "error" in span.attributes:
        notes.append(f"error: {span.attributes['error']}")
    return f"  [{', '.join(notes)}]" if notes else ""


def render_span_tree(span: Span, *, name_width: int | None = None) -> str:
    """An aligned, box-drawn rendering of one trace tree::

        run:example                       total  1.2034s  self  0.0021s
        ├─ assess                         total  0.9001s  self  0.0004s
        │  ├─ detector:mapping            total  0.3101s  self  0.2900s
        │  │  └─ profile                  total  0.0201s  self  0.0201s  [cache hit]
        ...
    """
    rows: list[tuple[str, Span]] = []

    def collect(node: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            label = node.name
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            label = f"{prefix}{connector}{node.name}"
            child_prefix = prefix + ("   " if is_last else "│  ")
        rows.append((label, node))
        children = list(node.children)
        for index, child in enumerate(children):
            collect(child, child_prefix, index == len(children) - 1, False)

    collect(span, "", True, True)
    width = name_width or max(len(label) for label, _ in rows)
    lines = []
    for label, node in rows:
        lines.append(
            f"{label:<{width}}  total {node.total_seconds:9.4f}s"
            f"  self {node.self_seconds:9.4f}s{_annotations(node)}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------


def sanitize_metric_name(name: str) -> str:
    """Map an internal metric name onto ``[a-zA-Z_:][a-zA-Z0-9_:]*``."""
    sanitized = _METRIC_NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = f"_{sanitized}"
    return sanitized


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash, quote,
    and newline."""
    return (
        str(value)
        .replace("\\", r"\\")
        .replace('"', r"\"")
        .replace("\n", r"\n")
    )


def format_labels(labels: dict | tuple) -> str:
    pairs = dict(labels)
    if not pairs:
        return ""
    rendered = ",".join(
        f'{_LABEL_NAME_RE.sub("_", str(name))}="{escape_label_value(value)}"'
        for name, value in sorted(pairs.items())
    )
    return f"{{{rendered}}}"


def _format_value(value: float) -> str:
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


def prometheus_text(
    snapshot,
    *,
    prefix: str = "repro",
    extra_gauges: dict[str, float] | None = None,
) -> str:
    """Render a :class:`~repro.runtime.metrics.MetricsSnapshot` (plus
    optional scalar gauges, e.g. queue depth) as Prometheus exposition.

    Counters become ``<prefix>_<name>_total``; stage timings become a
    ``_stage_seconds`` family with work/wall/max series; histograms are
    emitted natively with cumulative buckets plus a companion
    ``_quantile``-labelled gauge family for p50/p95/p99.
    """
    lines: list[str] = []

    # Counter families: the unlabelled counter and any labelled series
    # of the same name share one TYPE declaration.
    counter_families: dict[str, list[tuple[dict, float]]] = {}
    for name in snapshot.counters:
        counter_families.setdefault(name, []).append(
            ({}, snapshot.counters[name])
        )
    for name, labels, value in getattr(snapshot, "counter_series", ()):
        counter_families.setdefault(name, []).append((dict(labels), value))
    for name in sorted(counter_families):
        metric = f"{prefix}_{sanitize_metric_name(name)}_total"
        lines.append(f"# TYPE {metric} counter")
        for labels, value in counter_families[name]:
            lines.append(f"{metric}{format_labels(labels)} {value}")

    gauge_families: dict[str, list[tuple[dict, float]]] = {}
    for name, labels, value in getattr(snapshot, "gauges", ()):
        gauge_families.setdefault(name, []).append((dict(labels), value))
    for name in sorted(gauge_families):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        for labels, value in gauge_families[name]:
            lines.append(
                f"{metric}{format_labels(labels)} {_format_value(value)}"
            )

    if snapshot.stages:
        work = f"{prefix}_stage_work_seconds"
        lines.append(f"# HELP {work} Summed per-call work time per stage.")
        lines.append(f"# TYPE {work} counter")
        for name in sorted(snapshot.stages):
            timing = snapshot.stages[name]
            labels = format_labels({"stage": name})
            lines.append(f"{work}{labels} {_format_value(timing.seconds)}")
        for suffix, help_text, getter in (
            ("stage_wall_seconds", "Wall-clock latency per stage "
             "(concurrent calls overlap).", lambda t: t.wall_seconds),
            ("stage_max_seconds", "Longest single call per stage.",
             lambda t: t.max_seconds),
            ("stage_calls_total", "Calls per stage.", lambda t: t.calls),
        ):
            metric = f"{prefix}_{suffix}"
            kind = "counter" if suffix.endswith("_total") else "gauge"
            lines.append(f"# HELP {metric} {help_text}")
            lines.append(f"# TYPE {metric} {kind}")
            for name in sorted(snapshot.stages):
                timing = snapshot.stages[name]
                labels = format_labels({"stage": name})
                lines.append(
                    f"{metric}{labels} {_format_value(getter(timing))}"
                )

    families: dict[str, list] = {}
    for histogram in getattr(snapshot, "histograms", ()):
        families.setdefault(histogram.name, []).append(histogram)
    for family_name in sorted(families):
        metric = f"{prefix}_{sanitize_metric_name(family_name)}"
        lines.append(f"# TYPE {metric} histogram")
        for histogram in families[family_name]:
            base_labels = dict(histogram.labels)
            for bound, cumulative in histogram.cumulative_buckets():
                labels = format_labels(
                    {**base_labels, "le": _format_value(bound)}
                )
                lines.append(f"{metric}_bucket{labels} {cumulative}")
            labels = format_labels(base_labels)
            lines.append(f"{metric}_sum{labels} {_format_value(histogram.sum)}")
            lines.append(f"{metric}_count{labels} {histogram.count}")
        quantile_metric = f"{metric}_quantile"
        lines.append(f"# TYPE {quantile_metric} gauge")
        for histogram in families[family_name]:
            base_labels = dict(histogram.labels)
            for q in (0.5, 0.95, 0.99):
                labels = format_labels({**base_labels, "quantile": str(q)})
                lines.append(
                    f"{quantile_metric}{labels} "
                    f"{_format_value(histogram.quantile(q))}"
                )

    timestamp = getattr(snapshot, "timestamp", None)
    if timestamp is not None:
        metric = f"{prefix}_metrics_snapshot_timestamp_seconds"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(timestamp)}")

    for name, value in sorted((extra_gauges or {}).items()):
        metric = f"{prefix}_{sanitize_metric_name(name)}"
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(value)}")

    return "\n".join(lines) + "\n"
