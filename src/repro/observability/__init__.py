"""Observability for the assessment pipeline and service.

Three stdlib-only instruments, designed to compose with (not replace)
the aggregate counters of :class:`repro.runtime.RuntimeMetrics`:

* **Tracing** (:mod:`~repro.observability.tracing`) — hierarchical span
  trees (``assess → detector:<name> → profile/ucc/ind/fd``, ``plan``,
  ``estimate``, ``service.job:<id>``) with :mod:`contextvars`-based
  propagation, so spans opened on thread-pool workers attach to the
  span that submitted the work.  Disabled by default; activating a
  :class:`Tracer` turns every instrumentation point on for that context.
* **Histograms** (:mod:`~repro.observability.histograms`) — fixed
  log-scale latency distributions with p50/p95/p99 summaries, recorded
  per stage, per detector, and per service-job phase.
* **Event logs** (:mod:`~repro.observability.events`) — structured JSONL
  lifecycle events with per-job correlation IDs bound to the calling
  context, plus a :mod:`logging` adapter.

Exporters (:mod:`~repro.observability.export`) turn spans into JSON and
aligned text trees, and metrics snapshots into Prometheus exposition.
"""

from .context import (
    SpanContext,
    WorkerTelemetry,
    WorkerTelemetrySession,
    merge_worker_telemetry,
    telemetry_session,
)
from .events import (
    EVENT_LOG_ENV_VAR,
    EventLog,
    EventLogHandler,
    correlation_scope,
    current_correlation_id,
)
from .export import (
    escape_label_value,
    prometheus_text,
    render_span_tree,
    span_from_dict,
    span_to_dict,
)
from .histograms import (
    DEFAULT_BOUNDS,
    Histogram,
    HistogramSnapshot,
)
from .resources import (
    ResourceSampler,
    publish_worker_resources,
    sample_resources,
)
from .slo import (
    CRITICAL_BURN_RATE,
    WARN_BURN_RATE,
    SLOMonitor,
    SLOSpec,
    SLOStatus,
    default_slos,
)
from .tracing import (
    NOOP_SPAN,
    Span,
    Tracer,
    active_tracer,
    current_span,
    is_tracing,
    span,
)

__all__ = [
    "CRITICAL_BURN_RATE",
    "DEFAULT_BOUNDS",
    "EVENT_LOG_ENV_VAR",
    "EventLog",
    "EventLogHandler",
    "Histogram",
    "HistogramSnapshot",
    "NOOP_SPAN",
    "ResourceSampler",
    "SLOMonitor",
    "SLOSpec",
    "SLOStatus",
    "Span",
    "SpanContext",
    "Tracer",
    "WARN_BURN_RATE",
    "WorkerTelemetry",
    "WorkerTelemetrySession",
    "active_tracer",
    "correlation_scope",
    "current_correlation_id",
    "current_span",
    "default_slos",
    "escape_label_value",
    "is_tracing",
    "merge_worker_telemetry",
    "prometheus_text",
    "publish_worker_resources",
    "render_span_tree",
    "sample_resources",
    "span",
    "span_from_dict",
    "span_to_dict",
    "telemetry_session",
]
