"""Observability for the assessment pipeline and service.

Three stdlib-only instruments, designed to compose with (not replace)
the aggregate counters of :class:`repro.runtime.RuntimeMetrics`:

* **Tracing** (:mod:`~repro.observability.tracing`) — hierarchical span
  trees (``assess → detector:<name> → profile/ucc/ind/fd``, ``plan``,
  ``estimate``, ``service.job:<id>``) with :mod:`contextvars`-based
  propagation, so spans opened on thread-pool workers attach to the
  span that submitted the work.  Disabled by default; activating a
  :class:`Tracer` turns every instrumentation point on for that context.
* **Histograms** (:mod:`~repro.observability.histograms`) — fixed
  log-scale latency distributions with p50/p95/p99 summaries, recorded
  per stage, per detector, and per service-job phase.
* **Event logs** (:mod:`~repro.observability.events`) — structured JSONL
  lifecycle events with per-job correlation IDs bound to the calling
  context, plus a :mod:`logging` adapter.

Exporters (:mod:`~repro.observability.export`) turn spans into JSON and
aligned text trees, and metrics snapshots into Prometheus exposition.
"""

from .events import (
    EVENT_LOG_ENV_VAR,
    EventLog,
    EventLogHandler,
    correlation_scope,
    current_correlation_id,
)
from .export import (
    escape_label_value,
    prometheus_text,
    render_span_tree,
    span_from_dict,
    span_to_dict,
)
from .histograms import (
    DEFAULT_BOUNDS,
    Histogram,
    HistogramSnapshot,
)
from .tracing import (
    NOOP_SPAN,
    Span,
    Tracer,
    current_span,
    is_tracing,
    span,
)

__all__ = [
    "DEFAULT_BOUNDS",
    "EVENT_LOG_ENV_VAR",
    "EventLog",
    "EventLogHandler",
    "Histogram",
    "HistogramSnapshot",
    "NOOP_SPAN",
    "Span",
    "Tracer",
    "correlation_scope",
    "current_correlation_id",
    "current_span",
    "escape_label_value",
    "is_tracing",
    "prometheus_text",
    "render_span_tree",
    "span",
    "span_from_dict",
    "span_to_dict",
]
