"""Structured JSONL event logging with per-job correlation IDs.

Every significant lifecycle transition of the assessment service —
submitted, started, finished, cancelled, timed out — is recorded as one
JSON object per line, each carrying the **correlation ID** of the job it
belongs to.  The ID is bound to the calling context
(:func:`correlation_scope`), so code deep inside a payload never passes
it around explicitly, and log lines emitted from worker threads still
correlate back to the HTTP submission that caused them.

The :class:`EventLog` keeps a bounded in-memory ring (queryable by
tests and the service) and optionally appends to a JSONL file.  Standard
:mod:`logging` traffic can be routed into the same stream via
:func:`EventLog.logging_handler`, which stamps records with the bound
correlation ID — the "logging adapter" face of the event log.
"""

from __future__ import annotations

import contextvars
import json
import logging
import threading
import time
from collections import deque
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

_CORRELATION: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_correlation_id", default=None
)

#: Default in-memory ring capacity; old events fall off the front.
DEFAULT_MEMORY_EVENTS = 2048

#: Environment variable naming a JSONL sink for default-constructed
#: event logs (the chaos CI job sets it to capture an artifact).
EVENT_LOG_ENV_VAR = "REPRO_EVENT_LOG"


def current_correlation_id() -> str | None:
    """The correlation ID bound to the calling context, if any."""
    return _CORRELATION.get()


@contextmanager
def correlation_scope(correlation_id: str | None) -> Iterator[None]:
    """Bind a correlation ID for the duration of the ``with`` block."""
    token = _CORRELATION.set(correlation_id)
    try:
        yield
    finally:
        _CORRELATION.reset(token)


class EventLogHandler(logging.Handler):
    """Routes :mod:`logging` records into an :class:`EventLog`.

    The adapter between the stdlib logging tree and the structured
    stream: each record becomes a ``log`` event carrying logger name,
    level, rendered message, and the context's correlation ID.
    """

    def __init__(self, log: "EventLog", level: int = logging.INFO) -> None:
        super().__init__(level=level)
        self.log = log

    def emit(self, record: logging.LogRecord) -> None:
        try:
            self.log.emit(
                "log",
                logger=record.name,
                level=record.levelname.lower(),
                message=record.getMessage(),
            )
        except Exception:  # pragma: no cover - logging must never raise
            self.handleError(record)


class EventLog:
    """A bounded in-memory + optional on-disk JSONL stream of events."""

    def __init__(
        self,
        path: str | Path | None = None,
        max_memory_events: int = DEFAULT_MEMORY_EVENTS,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self._lock = threading.Lock()
        self._events: deque[dict] = deque(maxlen=max_memory_events)
        self._sequence = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    # -- recording --------------------------------------------------------

    def emit(self, event: str, **fields) -> dict:
        """Record one event; the bound correlation ID is attached unless
        the caller passes an explicit ``correlation_id`` field."""
        record = {
            "ts": time.time(),
            "event": event,
            "correlation_id": fields.pop(
                "correlation_id", current_correlation_id()
            ),
            **fields,
        }
        with self._lock:
            self._sequence += 1
            record["seq"] = self._sequence
            self._events.append(record)
            if self.path is not None:
                line = json.dumps(
                    record, sort_keys=True, ensure_ascii=False, default=str
                )
                with self.path.open("a", encoding="utf-8") as handle:
                    handle.write(line + "\n")
        return record

    def absorb(self, records) -> int:
        """Merge foreign event records (a worker's shipped stream).

        Each record keeps its own timestamp and correlation ID but is
        re-sequenced into this log's stream; malformed entries are
        skipped, never raised — telemetry merging must not corrupt the
        parent.  Returns the number of records absorbed.
        """
        absorbed = 0
        for record in records:
            if not isinstance(record, dict) or "event" not in record:
                continue
            copied = dict(record)
            with self._lock:
                self._sequence += 1
                copied["seq"] = self._sequence
                self._events.append(copied)
                if self.path is not None:
                    line = json.dumps(
                        copied, sort_keys=True, ensure_ascii=False, default=str
                    )
                    with self.path.open("a", encoding="utf-8") as handle:
                        handle.write(line + "\n")
            absorbed += 1
        return absorbed

    def logging_handler(self, level: int = logging.INFO) -> EventLogHandler:
        """A :mod:`logging` handler writing into this event log."""
        return EventLogHandler(self, level=level)

    # -- querying ---------------------------------------------------------

    def records(
        self,
        event: str | None = None,
        correlation_id: str | None = None,
    ) -> list[dict]:
        """In-memory events, oldest first, optionally filtered."""
        with self._lock:
            events = list(self._events)
        if event is not None:
            events = [record for record in events if record["event"] == event]
        if correlation_id is not None:
            events = [
                record
                for record in events
                if record["correlation_id"] == correlation_id
            ]
        return events

    def clear(self) -> None:
        with self._lock:
            self._events.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def __repr__(self) -> str:
        where = str(self.path) if self.path else "memory"
        return f"EventLog({len(self)} events, sink={where})"
