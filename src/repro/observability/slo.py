"""Declarative SLOs with rolling multi-window burn-rate evaluation.

Point metrics ("12 jobs failed") cannot answer the operator's question
— *are we failing fast enough to exhaust the error budget before anyone
looks?*  This module implements the standard multi-window burn-rate
construction: each :class:`SLOSpec` declares an objective (e.g.
availability 99.9% → error budget 0.1%); job outcomes land in a
bucketed rolling window; evaluation computes the **burn rate** (error
rate ÷ error budget) over a *fast* window (~5 min, catches cliffs) and
a *slow* window (~1 h, filters blips).  A burn rate of 1.0 spends the
budget exactly at the sustainable pace; 14.4 on both windows — the
classic paging threshold — exhausts a 30-day budget in ~2 days.

States per SLO:

* ``ok`` — both windows under the warning threshold,
* ``warning`` — both windows at/over ``warn_burn`` (default 3.0): the
  budget is burning faster than sustainable; the service's health state
  becomes ``slo-warning``,
* ``critical`` — both windows at/over ``critical_burn`` (default 14.4):
  the service reports itself ``degraded``.

Requiring *both* windows keeps the signal honest: the fast window alone
would page on one bad minute, the slow window alone would page an hour
late.  The clock is injectable so window arithmetic is testable in
virtual time.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections import deque
from collections.abc import Callable

#: Default window spans, seconds (fast catches cliffs, slow filters blips).
DEFAULT_FAST_WINDOW = 300.0
DEFAULT_SLOW_WINDOW = 3600.0

#: Default burn-rate thresholds (multiples of the sustainable pace).
WARN_BURN_RATE = 3.0
CRITICAL_BURN_RATE = 14.4

#: Default latency threshold of the job-latency SLO, seconds.
DEFAULT_LATENCY_THRESHOLD = 30.0


@dataclasses.dataclass(frozen=True)
class SLOSpec:
    """One declarative objective over a good/bad event stream."""

    name: str
    objective: float
    description: str = ""
    #: Only the latency SLO sets this: a job counts "good" when it
    #: finishes within the threshold.
    latency_threshold_seconds: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError(
                f"objective must be in (0, 1), got {self.objective}"
            )

    @property
    def error_budget(self) -> float:
        """The tolerable error fraction (1 - objective)."""
        return 1.0 - self.objective

    def to_dict(self) -> dict:
        doc = {
            "name": self.name,
            "objective": self.objective,
            "error_budget": self.error_budget,
            "description": self.description,
        }
        if self.latency_threshold_seconds is not None:
            doc["latency_threshold_seconds"] = self.latency_threshold_seconds
        return doc


def default_slos(
    latency_threshold_seconds: float = DEFAULT_LATENCY_THRESHOLD,
) -> tuple[SLOSpec, ...]:
    """The assessment service's stock objectives.

    * **availability** — 99.9% of jobs settle without failing,
    * **job_latency** — 99% of successful jobs finish within the
      threshold (the p99 latency objective, expressed as a ratio SLI),
    * **degradation** — 99% of successful jobs produce complete results
      (no detector degraded into the ``degradations`` list).
    """
    return (
        SLOSpec(
            "availability",
            0.999,
            "jobs settle successfully (no failure, no timeout)",
        ),
        SLOSpec(
            "job_latency",
            0.99,
            f"jobs finish within {latency_threshold_seconds:g}s",
            latency_threshold_seconds=latency_threshold_seconds,
        ),
        SLOSpec(
            "degradation",
            0.99,
            "results are complete (no degraded detector modules)",
        ),
    )


class RollingCounter:
    """Good/bad event counts over a bucketed rolling horizon.

    O(1) record, O(buckets) query; bucket granularity bounds the error
    of windowed totals at one ``bucket_seconds``.
    """

    def __init__(
        self,
        horizon_seconds: float,
        bucket_seconds: float = 10.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if bucket_seconds <= 0 or horizon_seconds < bucket_seconds:
            raise ValueError(
                "horizon must be at least one positive bucket"
            )
        self.bucket_seconds = bucket_seconds
        self.horizon_seconds = horizon_seconds
        self.clock = clock
        #: (bucket_index, good, bad) triples, oldest first.
        self._buckets: deque[list] = deque()
        self.total_good = 0
        self.total_bad = 0

    def _bucket_index(self) -> int:
        return int(self.clock() / self.bucket_seconds)

    def _prune(self, current_index: int) -> None:
        horizon_buckets = int(self.horizon_seconds / self.bucket_seconds)
        while self._buckets and self._buckets[0][0] < current_index - horizon_buckets:
            self._buckets.popleft()

    def record(self, good: bool, count: int = 1) -> None:
        index = self._bucket_index()
        self._prune(index)
        if not self._buckets or self._buckets[-1][0] != index:
            self._buckets.append([index, 0, 0])
        bucket = self._buckets[-1]
        if good:
            bucket[1] += count
            self.total_good += count
        else:
            bucket[2] += count
            self.total_bad += count

    def totals(self, window_seconds: float) -> tuple[int, int]:
        """``(good, bad)`` over the trailing window."""
        index = self._bucket_index()
        self._prune(index)
        window_buckets = int(window_seconds / self.bucket_seconds)
        floor = index - window_buckets
        good = bad = 0
        for bucket_index, bucket_good, bucket_bad in self._buckets:
            if bucket_index > floor:
                good += bucket_good
                bad += bucket_bad
        return good, bad


@dataclasses.dataclass(frozen=True)
class SLOStatus:
    """One SLO's evaluated state at a point in time."""

    spec: SLOSpec
    state: str  # "ok" | "warning" | "critical"
    fast: dict
    slow: dict
    total_good: int
    total_bad: int

    @property
    def name(self) -> str:
        return self.spec.name

    def to_dict(self) -> dict:
        return {
            **self.spec.to_dict(),
            "state": self.state,
            "windows": {"fast": dict(self.fast), "slow": dict(self.slow)},
            "totals": {
                "good": self.total_good,
                "bad": self.total_bad,
                "events": self.total_good + self.total_bad,
            },
        }


class SLOMonitor:
    """Rolling good/bad streams per SLO, evaluated to burn rates.

    Thread-safe: the monitor takes its own lock around every record and
    every evaluation.  ``record_job`` is called from the scheduler's
    settle path (under the scheduler lock) while ``evaluate`` runs from
    HTTP handler threads (``GET /slo``, ``/healthz``, ``/metrics``) and
    from ``close()``-time drains — without the internal lock those
    evaluations iterate bucket deques that a concurrent settle is
    appending to or pruning from.
    """

    def __init__(
        self,
        slos: tuple[SLOSpec, ...] | list[SLOSpec] | None = None,
        *,
        fast_window: float = DEFAULT_FAST_WINDOW,
        slow_window: float = DEFAULT_SLOW_WINDOW,
        bucket_seconds: float = 10.0,
        warn_burn: float = WARN_BURN_RATE,
        critical_burn: float = CRITICAL_BURN_RATE,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.slos = tuple(slos) if slos is not None else default_slos()
        if len({spec.name for spec in self.slos}) != len(self.slos):
            raise ValueError("SLO names must be unique")
        # Reentrant: worst_state()/to_dict() call evaluate() under it.
        self._lock = threading.RLock()
        self.fast_window = fast_window
        self.slow_window = slow_window
        self.warn_burn = warn_burn
        self.critical_burn = critical_burn
        horizon = max(fast_window, slow_window)
        self._counters = {
            spec.name: RollingCounter(
                horizon, bucket_seconds=bucket_seconds, clock=clock
            )
            for spec in self.slos
        }

    def spec(self, name: str) -> SLOSpec:
        for candidate in self.slos:
            if candidate.name == name:
                return candidate
        raise KeyError(f"unknown SLO {name!r}")

    # -- recording ---------------------------------------------------------

    def record(self, name: str, good: bool, count: int = 1) -> None:
        """Record ``count`` good/bad events against one SLO's stream."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is not None:
                counter.record(good, count)

    def record_job(
        self,
        *,
        ok: bool,
        duration_seconds: float | None = None,
        degraded: bool = False,
    ) -> None:
        """Record one settled job against every applicable SLO.

        A failed/timed-out job is bad for availability; latency and
        degradation only judge *successful* jobs (a failure should not
        double-dip into every budget).
        """
        with self._lock:
            self.record("availability", ok)
            if not ok:
                return
            latency_spec = next(
                (
                    spec
                    for spec in self.slos
                    if spec.latency_threshold_seconds is not None
                ),
                None,
            )
            if latency_spec is not None and duration_seconds is not None:
                self.record(
                    latency_spec.name,
                    duration_seconds <= latency_spec.latency_threshold_seconds,
                )
            self.record("degradation", not degraded)

    # -- evaluation --------------------------------------------------------

    def _window_doc(
        self, spec: SLOSpec, counter: RollingCounter, window_seconds: float
    ) -> dict:
        good, bad = counter.totals(window_seconds)
        events = good + bad
        error_rate = bad / events if events else 0.0
        return {
            "window_seconds": window_seconds,
            "events": events,
            "bad": bad,
            "error_rate": error_rate,
            "burn_rate": error_rate / spec.error_budget,
        }

    def evaluate(self) -> list[SLOStatus]:
        """Every SLO's burn rates + state, in declaration order."""
        with self._lock:
            return self._evaluate_locked()

    def _evaluate_locked(self) -> list[SLOStatus]:
        statuses = []
        for spec in self.slos:
            counter = self._counters[spec.name]
            fast = self._window_doc(spec, counter, self.fast_window)
            slow = self._window_doc(spec, counter, self.slow_window)
            if (
                fast["burn_rate"] >= self.critical_burn
                and slow["burn_rate"] >= self.critical_burn
            ):
                state = "critical"
            elif (
                fast["burn_rate"] >= self.warn_burn
                and slow["burn_rate"] >= self.warn_burn
            ):
                state = "warning"
            else:
                state = "ok"
            statuses.append(
                SLOStatus(
                    spec=spec,
                    state=state,
                    fast=fast,
                    slow=slow,
                    total_good=counter.total_good,
                    total_bad=counter.total_bad,
                )
            )
        return statuses

    def worst_state(self) -> str:
        order = {"ok": 0, "warning": 1, "critical": 2}
        worst = "ok"
        with self._lock:
            for status in self._evaluate_locked():
                if order[status.state] > order[worst]:
                    worst = status.state
        return worst

    def to_dict(self) -> dict:
        """The full ``GET /slo`` document body."""
        with self._lock:
            return {
                "fast_window_seconds": self.fast_window,
                "slow_window_seconds": self.slow_window,
                "warn_burn_rate": self.warn_burn,
                "critical_burn_rate": self.critical_burn,
                "slos": [
                    status.to_dict() for status in self._evaluate_locked()
                ],
            }

    def __repr__(self) -> str:
        names = ",".join(spec.name for spec in self.slos)
        return f"SLOMonitor([{names}], fast={self.fast_window:g}s, slow={self.slow_window:g}s)"
