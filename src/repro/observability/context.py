"""Cross-process trace propagation and worker telemetry.

The process backend (:mod:`repro.runtime.executor`) runs detectors and
profilers in forked workers where the parent's contextvars-based tracer,
metrics, and event log do not exist.  This module makes observability
survive the boundary without touching the untraced fast path:

* :class:`SpanContext` is the wire form of "where in the trace am I?" —
  trace id, parent span id, correlation id, backend tag.
  :meth:`SpanContext.capture` returns ``None`` when no tracer is active,
  so untraced runs ship a ``None`` and workers skip every telemetry
  allocation (the <5% overhead gate and byte-identical backend
  equivalence are preserved structurally).
* :func:`telemetry_session` is the worker-side half: under an active
  context it activates a fresh process-local
  :class:`~repro.observability.tracing.Tracer` (sharing the parent's
  trace id), binds the correlation scope, collects events, and on exit
  packs spans + metrics deltas + events + a resource sample into a
  :class:`WorkerTelemetry` blob the worker returns beside its result.
* :func:`merge_worker_telemetry` is the parent-side half: it grafts the
  worker's span subtree under the parent's current span (rewriting
  parent/trace ids through the subtree), folds the metrics snapshot into
  the parent's :class:`~repro.runtime.RuntimeMetrics`, absorbs events,
  and republishes the worker's resource sample as ``worker_*`` gauges.
  It is **defensive end to end**: any malformed blob (a crashed worker's
  partial telemetry) is dropped and counted on
  ``worker_telemetry_dropped`` — it can never corrupt the parent trace.
"""

from __future__ import annotations

import dataclasses
import os

from . import tracing
from .events import EventLog, correlation_scope, current_correlation_id
from .export import span_from_dict, span_to_dict
from .resources import publish_worker_resources, sample_resources


@dataclasses.dataclass(frozen=True)
class SpanContext:
    """The serialisable trace position shipped inside task payloads."""

    trace_id: str
    parent_span_id: str | None = None
    correlation_id: str | None = None
    backend: str = "process"

    @classmethod
    def capture(cls, backend: str = "process") -> "SpanContext | None":
        """The calling context's trace position, or ``None`` untraced.

        ``None`` is the contract's fast path: engine code passes it
        through unconditionally and workers allocate nothing for it.
        """
        tracer = tracing.active_tracer()
        if tracer is None:
            return None
        parent = tracing.current_span()
        return cls(
            trace_id=parent.trace_id if parent is not None else tracer.trace_id,
            parent_span_id=parent.span_id if parent is not None else None,
            correlation_id=current_correlation_id(),
            backend=backend,
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "SpanContext":
        try:
            return cls(
                trace_id=str(doc["trace_id"]),
                parent_span_id=doc.get("parent_span_id"),
                correlation_id=doc.get("correlation_id"),
                backend=str(doc.get("backend", "process")),
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed span context: {exc}") from exc


@dataclasses.dataclass
class WorkerTelemetry:
    """Everything a worker observed, packed for the trip home.

    ``spans`` are serialised span-tree documents (the worker's root
    spans), ``metrics`` is a picklable
    :class:`~repro.runtime.metrics.MetricsSnapshot` of the worker's
    private runtime (``None`` when the worker recorded nothing),
    ``events`` are raw event-log records, and ``resources`` is one
    :func:`~repro.observability.resources.sample_resources` document.
    """

    context: SpanContext
    pid: int
    spans: list = dataclasses.field(default_factory=list)
    metrics: object | None = None
    events: list = dataclasses.field(default_factory=list)
    resources: dict = dataclasses.field(default_factory=dict)


class _NoopTelemetrySession:
    """The shared no-cost session of untraced worker invocations."""

    __slots__ = ()
    telemetry = None

    def __enter__(self) -> "_NoopTelemetrySession":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def emit(self, event: str, **fields) -> None:
        pass


NOOP_TELEMETRY_SESSION = _NoopTelemetrySession()


class WorkerTelemetrySession:
    """Worker-side telemetry collection for one task execution.

    Use as a context manager around the task body::

        session = telemetry_session(context, metrics=runtime.metrics)
        with session:
            ... run under tracing.span(...) ...
        return (result, ..., session.telemetry)

    On exit (normal *or* exceptional — a failing detector still ships
    the spans it opened) the collected spans, metrics, events, and a
    resource sample are frozen into ``session.telemetry``.
    """

    def __init__(self, context: SpanContext, metrics=None) -> None:
        self.context = context
        self.metrics = metrics
        self.tracer = tracing.Tracer()
        # The worker's root spans must join the parent's tree: share the
        # trace id so grafting is a pure parent_id rewrite.
        self.tracer.trace_id = context.trace_id
        self.events = EventLog(max_memory_events=256)
        self.telemetry: WorkerTelemetry | None = None
        self._tracer_cm = None
        self._correlation_cm = None
        self._detach_cm = None

    def emit(self, event: str, **fields) -> None:
        """Record a worker-side event for the shipped stream."""
        self.events.emit(event, **fields)

    def __enter__(self) -> "WorkerTelemetrySession":
        # Forked workers inherit the parent's contextvars, including the
        # span that was open at fork time — detach so worker spans root
        # on this session's tracer instead of a stale parent copy.
        self._detach_cm = tracing.detached_span_scope()
        self._detach_cm.__enter__()
        self._tracer_cm = self.tracer.activated()
        self._tracer_cm.__enter__()
        self._correlation_cm = correlation_scope(self.context.correlation_id)
        self._correlation_cm.__enter__()
        return self

    def __exit__(self, *exc_info) -> bool:
        self._correlation_cm.__exit__(*exc_info)
        self._tracer_cm.__exit__(*exc_info)
        self._detach_cm.__exit__(*exc_info)
        metrics_snapshot = None
        if self.metrics is not None and not self.metrics.is_empty():
            metrics_snapshot = self.metrics.snapshot()
        try:
            resources = sample_resources()
        except Exception:  # noqa: BLE001 - telemetry must not fail the task
            resources = {}
        self.telemetry = WorkerTelemetry(
            context=self.context,
            pid=os.getpid(),
            spans=[span_to_dict(root) for root in self.tracer.roots],
            metrics=metrics_snapshot,
            events=self.events.records(),
            resources=resources,
        )
        return False


def telemetry_session(context: SpanContext | None, metrics=None):
    """A worker telemetry session for ``context`` — no-op when ``None``.

    The single branch point that keeps untraced process runs at zero
    telemetry cost: an absent context returns the shared no-op session,
    whose ``telemetry`` stays ``None``.
    """
    if context is None:
        return NOOP_TELEMETRY_SESSION
    return WorkerTelemetrySession(context, metrics=metrics)


def merge_worker_telemetry(
    telemetry, metrics, events: EventLog | None = None
) -> bool:
    """Graft a worker's telemetry into the parent context.

    Returns ``True`` when the worker's span subtree landed under the
    parent's current span (so the caller must not open its own stub
    span for the task), ``False`` when there was nothing to merge or
    the blob was malformed.  Malformed telemetry — a crashed worker's
    torn blob, a foreign object, garbage span documents — is counted on
    ``worker_telemetry_dropped`` and dropped whole: the parent trace is
    never left with a partially-grafted subtree.
    """
    if telemetry is None:
        return False
    try:
        # Decode and fold the side channels BEFORE mutating the parent
        # trace: a torn blob must fail here, leaving the tree untouched.
        grafted = [
            span_from_dict(doc) for doc in (telemetry.spans or ())
        ]
        if telemetry.metrics is not None:
            metrics.merge_snapshot(telemetry.metrics)
        if events is not None and telemetry.events:
            events.absorb(telemetry.events)
        if telemetry.resources:
            publish_worker_resources(metrics, telemetry.resources)
        parent = tracing.current_span()
        merged_spans = False
        if parent is not None and parent.is_recording and grafted:
            for root in grafted:
                root.parent_id = parent.span_id
                for node in root.walk():
                    node.trace_id = parent.trace_id
                parent.add_child(root)
            merged_spans = True
        metrics.increment("worker_telemetry_merged")
        return merged_spans
    except Exception:  # noqa: BLE001 - a bad blob must never hurt the parent
        try:
            metrics.increment("worker_telemetry_dropped")
        except Exception:  # noqa: BLE001 - even counting is best-effort
            pass
        return False
