"""Fixed log-scale histograms with quantile summaries.

Latency distributions under the threaded executor and the service's
worker slots are long-tailed; counters and summed stage timings cannot
answer "what is the p95 detector latency under 4 clients?".
:class:`Histogram` records observations into **fixed log-scale buckets**
(factor-2 bounds from 1 microsecond up, the classic power-of-two latency
ladder), so

* recording is O(1) and lock-cheap — a bisect plus two adds,
* histograms with identical bounds are mergeable and directly exportable
  to Prometheus's cumulative ``_bucket{le=...}`` exposition,
* p50/p95/p99 are estimated by linear interpolation inside the bucket
  that contains the target rank, which is exact enough at factor-2
  resolution for dashboard use.
"""

from __future__ import annotations

import bisect
import dataclasses
import threading

#: Factor-2 bucket upper bounds from 1µs to ~1100s; values above the last
#: bound land in the implicit +Inf bucket.
DEFAULT_BOUNDS: tuple[float, ...] = tuple(
    1e-6 * (2.0**exponent) for exponent in range(31)
)

#: The quantiles every summary reports.
SUMMARY_QUANTILES = (0.5, 0.95, 0.99)


@dataclasses.dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable copy of one histogram, with derived statistics.

    ``counts`` has ``len(bounds) + 1`` entries: one per finite bucket
    plus the +Inf overflow bucket.
    """

    name: str
    labels: tuple[tuple[str, str], ...]
    bounds: tuple[float, ...]
    counts: tuple[int, ...]
    count: int
    sum: float
    min: float
    max: float

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated value at quantile ``q`` (0 < q <= 1).

        Interpolates linearly within the bucket containing the target
        rank; results are clamped to the observed min/max so tiny sample
        counts do not report values outside the data.
        """
        if self.count == 0:
            return 0.0
        target = q * self.count
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if seen + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else 0.0
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.max
                )
                fraction = (target - seen) / bucket_count
                value = lower + (upper - lower) * fraction
                return min(max(value, self.min), self.max)
            seen += bucket_count
        return self.max

    @property
    def p50(self) -> float:
        return self.quantile(0.5)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(upper_bound, cumulative_count)`` pairs,
        ending with ``(inf, count)``."""
        pairs: list[tuple[float, int]] = []
        running = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            running += bucket_count
            pairs.append((bound, running))
        pairs.append((float("inf"), self.count))
        return pairs

    def to_dict(self) -> dict:
        """A JSON rendering: identity, totals, quantiles, non-empty
        buckets (full fixed-bucket vectors are mostly zeros)."""
        return {
            "name": self.name,
            "labels": dict(self.labels),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean,
            "quantiles": {
                f"p{int(q * 100)}": self.quantile(q) for q in SUMMARY_QUANTILES
            },
            "buckets": [
                {"le": bound, "count": bucket_count}
                for bound, bucket_count in zip(
                    (*self.bounds, float("inf")), self.counts
                )
                if bucket_count
            ],
        }


class Histogram:
    """A thread-safe fixed-bucket histogram of one metric series."""

    __slots__ = ("name", "labels", "bounds", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...] = (),
        bounds: tuple[float, ...] = DEFAULT_BOUNDS,
    ) -> None:
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.name = name
        self.labels = labels
        self.bounds = tuple(bounds)
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def merge(self, snapshot: HistogramSnapshot) -> None:
        """Fold a snapshot of another histogram into this one.

        The cross-process aggregation primitive: a worker ships its
        histogram snapshots home inside a ``WorkerTelemetry`` blob and
        the parent merges them bucket-wise.  Only snapshots with
        identical bounds merge — fixed log-scale buckets make that the
        common case by construction.
        """
        if tuple(snapshot.bounds) != self.bounds:
            raise ValueError(
                f"cannot merge histogram {snapshot.name!r}: bucket bounds "
                "differ from this histogram's"
            )
        if len(snapshot.counts) != len(self._counts):
            raise ValueError(
                f"cannot merge histogram {snapshot.name!r}: bucket count "
                f"mismatch ({len(snapshot.counts)} != {len(self._counts)})"
            )
        if snapshot.count == 0:
            return
        with self._lock:
            for index, bucket_count in enumerate(snapshot.counts):
                self._counts[index] += bucket_count
            self._count += snapshot.count
            self._sum += snapshot.sum
            if snapshot.min < self._min:
                self._min = snapshot.min
            if snapshot.max > self._max:
                self._max = snapshot.max

    def snapshot(self) -> HistogramSnapshot:
        with self._lock:
            return HistogramSnapshot(
                name=self.name,
                labels=self.labels,
                bounds=self.bounds,
                counts=tuple(self._counts),
                count=self._count,
                sum=self._sum,
                min=self._min if self._count else 0.0,
                max=self._max if self._count else 0.0,
            )

    def __len__(self) -> int:
        with self._lock:
            return self._count

    def __repr__(self) -> str:
        snapshot = self.snapshot()
        return (
            f"Histogram({self.name!r}, n={snapshot.count}, "
            f"p50={snapshot.p50:.4g}, p95={snapshot.p95:.4g})"
        )
