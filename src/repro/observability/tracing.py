"""Hierarchical tracing for the assessment pipeline.

A *span* is one timed region of the pipeline — ``assess``,
``detector:mapping``, ``profile``, ``service.job:<id>`` — with a parent,
children, and free-form attributes (``cache_hit``, scenario names, …).
Spans form a tree per traced operation; the tree answers "where did this
one run spend its time?" in a way the aggregated
:class:`~repro.runtime.metrics.RuntimeMetrics` cannot.

Propagation is :mod:`contextvars`-based: the active tracer and the
current span live in context variables, so instrumentation points
(:func:`span`) never need a tracer threaded through their signatures,
and the threaded executor's ``contextvars.copy_context()`` carries the
current span onto worker threads — a child span started on a worker
attaches to the span that submitted the work, regardless of which thread
runs it.

Tracing is **disabled by default**: with no tracer activated,
:func:`span` returns a shared no-op handle without allocating, so the
instrumented hot paths stay within the <5% overhead gate enforced by
``benchmarks/bench_observability_overhead.py``.
"""

from __future__ import annotations

import contextvars
import threading
import time
import uuid
from collections.abc import Iterator
from contextlib import contextmanager

_ACTIVE_TRACER: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "repro_active_tracer", default=None
)
_CURRENT_SPAN: contextvars.ContextVar["Span | None"] = contextvars.ContextVar(
    "repro_current_span", default=None
)


class Span:
    """One timed node of a trace tree.

    ``duration_seconds`` is ``None`` while the span is open; children are
    appended under a lock because worker threads attach concurrently.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "started_at",
        "duration_seconds",
        "attributes",
        "children",
        "_start_perf",
        "_lock",
    )

    def __init__(
        self,
        name: str,
        trace_id: str = "",
        parent_id: str | None = None,
        attributes: dict | None = None,
    ) -> None:
        self.name = name
        self.trace_id = trace_id or uuid.uuid4().hex[:16]
        self.span_id = uuid.uuid4().hex[:16]
        self.parent_id = parent_id
        self.started_at = time.time()
        self.duration_seconds: float | None = None
        self.attributes: dict = dict(attributes or {})
        self.children: list[Span] = []
        self._start_perf = time.perf_counter()
        self._lock = threading.Lock()

    # -- recording --------------------------------------------------------

    def set_attribute(self, name: str, value) -> None:
        self.attributes[name] = value

    def add_child(self, child: "Span") -> None:
        with self._lock:
            self.children.append(child)

    def finish(self) -> None:
        if self.duration_seconds is None:
            self.duration_seconds = time.perf_counter() - self._start_perf

    # -- inspection -------------------------------------------------------

    @property
    def is_recording(self) -> bool:
        return True

    @property
    def total_seconds(self) -> float:
        return self.duration_seconds or 0.0

    @property
    def self_seconds(self) -> float:
        """Time spent in this span excluding (finished) children.

        For spans whose children ran concurrently the children's summed
        time can exceed the parent's wall-clock; self time clamps at 0.
        """
        with self._lock:
            child_total = sum(child.total_seconds for child in self.children)
        return max(0.0, self.total_seconds - child_total)

    def walk(self) -> Iterator["Span"]:
        """Depth-first pre-order iteration over the subtree."""
        yield self
        with self._lock:
            children = list(self.children)
        for child in children:
            yield from child.walk()

    def find(self, name: str) -> list["Span"]:
        """Every span in the subtree with exactly this name."""
        return [node for node in self.walk() if node.name == name]

    def __repr__(self) -> str:
        status = (
            f"{self.duration_seconds:.4f}s"
            if self.duration_seconds is not None
            else "open"
        )
        return f"Span({self.name!r}, {status}, {len(self.children)} children)"


class _NoopSpan:
    """The shared do-nothing span handle of the disabled-tracing path."""

    __slots__ = ()
    is_recording = False
    name = ""
    children: tuple = ()
    attributes: dict = {}

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set_attribute(self, name: str, value) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class _SpanHandle:
    """Context manager that opens a real span and wires it into the tree."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._span: Span | None = None
        self._token = None
        parent = _CURRENT_SPAN.get()
        self._span = Span(
            name,
            trace_id=parent.trace_id if parent is not None else tracer.trace_id,
            parent_id=parent.span_id if parent is not None else None,
            attributes=attributes,
        )
        if parent is not None:
            parent.add_child(self._span)

    def __enter__(self) -> Span:
        self._token = _CURRENT_SPAN.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        span = self._span
        span.finish()
        if exc_info and exc_info[0] is not None:
            span.set_attribute("error", f"{exc_info[0].__name__}: {exc_info[1]}")
        _CURRENT_SPAN.reset(self._token)
        if span.parent_id is None:
            self._tracer._record_root(span)
        return False


class Tracer:
    """Produces span trees; activate one to turn instrumentation on.

    ``tracer.activated()`` makes the tracer current for the calling
    context (and, through context copying, for pipeline worker threads);
    completed root spans accumulate in ``tracer.roots``.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.trace_id = uuid.uuid4().hex[:16]
        self.roots: list[Span] = []
        self._lock = threading.Lock()

    def _record_root(self, span: Span) -> None:
        with self._lock:
            self.roots.append(span)

    @property
    def root(self) -> Span | None:
        """The most recently completed root span, if any."""
        with self._lock:
            return self.roots[-1] if self.roots else None

    @contextmanager
    def activated(self) -> Iterator["Tracer"]:
        token = _ACTIVE_TRACER.set(self if self.enabled else None)
        try:
            yield self
        finally:
            _ACTIVE_TRACER.reset(token)

    def __repr__(self) -> str:
        return (
            f"Tracer(enabled={self.enabled}, roots={len(self.roots)}, "
            f"trace_id={self.trace_id!r})"
        )


@contextmanager
def detached_span_scope() -> Iterator[None]:
    """Detach from any inherited current span for the ``with`` block.

    Forked process-pool workers inherit the parent's contextvars as of
    fork time — including a then-open span.  A worker must not attach
    its spans to that stale copy (they would never register as roots of
    its own tracer); telemetry sessions open this scope so worker spans
    start a fresh subtree.
    """
    token = _CURRENT_SPAN.set(None)
    try:
        yield
    finally:
        _CURRENT_SPAN.reset(token)


def span(name: str, **attributes):
    """Open a child span of the current one on the active tracer.

    The instrumentation entry point: cheap when no tracer is active
    (returns a shared no-op handle), a real :class:`Span` otherwise.
    Usable both as ``with span("x"):`` and
    ``with span("x") as sp: sp.set_attribute(...)``.
    """
    tracer = _ACTIVE_TRACER.get()
    if tracer is None:
        return NOOP_SPAN
    return _SpanHandle(tracer, name, attributes)


def current_span() -> Span | None:
    """The innermost open span of the calling context, if tracing is on."""
    return _CURRENT_SPAN.get()


def active_tracer() -> Tracer | None:
    """The tracer activated in the calling context, if any."""
    return _ACTIVE_TRACER.get()


def is_tracing() -> bool:
    return _ACTIVE_TRACER.get() is not None
