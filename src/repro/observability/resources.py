"""Process resource telemetry: RSS, CPU time, GC activity, spool I/O.

The fleet-observability complement to tracing and histograms: spans say
*where* time went, histograms say *how it distributes*, and this module
says *what it cost the machine* — per process, which matters once the
process backend fans assessment work out across workers.  Everything
here is stdlib-only: :func:`os.times` for CPU seconds,
:mod:`resource` (``getrusage``) for peak RSS, :mod:`gc` for collection
counts, and the scenario spool's byte accounting for I/O volume.

Two consumers:

* each worker samples itself once at the end of a telemetry session and
  ships the document home inside its ``WorkerTelemetry`` blob — the
  parent republishes the numbers as ``worker_*`` gauges keyed by
  ``pid``,
* the service's :class:`ResourceSampler` samples the *parent* process on
  demand (every ``/metrics`` / ``/healthz`` scrape) into ``process_*``
  gauges on the shared :class:`~repro.runtime.RuntimeMetrics`.
"""

from __future__ import annotations

import gc
import os

try:  # pragma: no cover - resource is POSIX-only
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX host
    _resource = None

import sys


def _rss_bytes() -> int:
    """Peak resident set size in bytes (0 when unavailable).

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS — normalise
    to bytes so dashboards read one unit.
    """
    if _resource is None:
        return 0
    peak = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":
        return int(peak)
    return int(peak) * 1024


def sample_resources() -> dict:
    """One point-in-time resource document for the calling process.

    Keys are stable and flat (every value numeric except ``pid``-as-int)
    so the document can be shipped across a process boundary and turned
    into labelled gauges verbatim.
    """
    times = os.times()
    counts = gc.get_count()
    collections = [0, 0, 0]
    for generation, stats in enumerate(gc.get_stats()):
        if generation < 3:
            collections[generation] = int(stats.get("collections", 0))
    from ..runtime.spool import spool_stats

    spool = spool_stats()
    return {
        "pid": os.getpid(),
        "rss_bytes": _rss_bytes(),
        "cpu_user_seconds": times.user,
        "cpu_system_seconds": times.system,
        "cpu_seconds": times.user + times.system,
        "gc_gen0_objects": counts[0],
        "gc_gen1_objects": counts[1],
        "gc_gen2_objects": counts[2],
        "gc_gen0_collections": collections[0],
        "gc_gen1_collections": collections[1],
        "gc_gen2_collections": collections[2],
        "spool_reads": spool["reads"],
        "spool_writes": spool["writes"],
        "spool_bytes_read": spool["bytes_read"],
        "spool_bytes_written": spool["bytes_written"],
    }


#: Resource-document keys republished as gauges (``pid`` is a label,
#: never a gauge).
GAUGE_KEYS = (
    "rss_bytes",
    "cpu_user_seconds",
    "cpu_system_seconds",
    "cpu_seconds",
    "gc_gen0_collections",
    "gc_gen1_collections",
    "gc_gen2_collections",
    "spool_reads",
    "spool_writes",
    "spool_bytes_read",
    "spool_bytes_written",
)


def publish_worker_resources(metrics, resources: dict) -> None:
    """Republish a worker's resource document as ``worker_*`` gauges.

    Gauges are keyed by the worker's ``pid`` label so a pool of workers
    shows up as one gauge family with per-process series.
    """
    pid = str(resources.get("pid", ""))
    for key in GAUGE_KEYS:
        value = resources.get(key)
        if isinstance(value, (int, float)):
            metrics.set_gauge(f"worker_{key}", float(value), pid=pid)


class ResourceSampler:
    """Samples the calling process into ``<prefix>_*`` gauges on demand.

    The service calls :meth:`sample` from its ``/metrics``, ``/healthz``
    and ``/slo`` handlers — scrape-driven sampling, no background thread
    to leak.  Returns the raw document so handlers can embed a summary.
    """

    def __init__(self, metrics, *, prefix: str = "process") -> None:
        self.metrics = metrics
        self.prefix = prefix
        self.samples_taken = 0

    def sample(self) -> dict:
        doc = sample_resources()
        for key in GAUGE_KEYS:
            value = doc.get(key)
            if isinstance(value, (int, float)):
                self.metrics.set_gauge(f"{self.prefix}_{key}", float(value))
        self.samples_taken += 1
        return doc

    def summary(self) -> dict:
        """The compact rendering ``/healthz`` embeds."""
        doc = self.sample()
        return {
            "pid": doc["pid"],
            "rss_bytes": doc["rss_bytes"],
            "cpu_seconds": round(doc["cpu_seconds"], 3),
            "gc_collections": (
                doc["gc_gen0_collections"]
                + doc["gc_gen1_collections"]
                + doc["gc_gen2_collections"]
            ),
            "spool_bytes_read": doc["spool_bytes_read"],
            "spool_bytes_written": doc["spool_bytes_written"],
        }

    def __repr__(self) -> str:
        return (
            f"ResourceSampler(prefix={self.prefix!r}, "
            f"samples={self.samples_taken})"
        )
