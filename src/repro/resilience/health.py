"""The service health state machine: healthy / slo-warning /
fleet-degraded / degraded / draining.

``/healthz`` needs more nuance than alive-or-dead: a service whose
circuit breaker is open, whose report store has quarantined entries, or
whose watchdog found stuck workers is *up* but *degraded* — load
balancers should prefer other replicas without killing this one.  A
service whose SLO error budget is burning faster than sustainable (but
not yet critically) is in *slo-warning* — still routable, but operators
should look.  A fleet front end that has lost part of its worker fleet
(but can still serve) is *fleet-degraded* — it sheds its lowest-priority
work and keeps answering.  A service that has begun graceful shutdown is
*draining* — it finishes running jobs but accepts nothing new.

State machine::

    HEALTHY <──> SLO-WARNING <──> FLEET-DEGRADED <──> DEGRADED
       │              │                  │                │
       └──────────────┴────> DRAINING <──┴────────────────┘
                          (terminal: shutdown began)

:class:`HealthMonitor` tracks two named sets: *reasons* (hard
degradation) and *warnings* (soft, advisory) — plus the
:meth:`set_fleet_degraded` flag a fleet supervisor drives from worker
liveness.  The derived state is ``draining`` permanently once
:meth:`start_draining` is called, else ``degraded`` while any reason is
flagged, else ``fleet-degraded`` while the fleet flag is up, else
``slo-warning`` while any warning is flagged, else ``healthy``.  All of
it is part of the snapshot so operators see *why*, not just *what*.
"""

from __future__ import annotations

import enum
import threading


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    SLO_WARNING = "slo-warning"
    FLEET_DEGRADED = "fleet-degraded"
    DEGRADED = "degraded"
    DRAINING = "draining"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class HealthMonitor:
    """A thread-safe reason/warning-set with a derived health state."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._reasons: set[str] = set()
        self._warnings: set[str] = set()
        self._draining = False
        self._fleet_degraded = False

    def flag(self, reason: str) -> None:
        """Mark a degradation reason active (idempotent)."""
        with self._lock:
            self._reasons.add(reason)

    def clear(self, reason: str) -> None:
        """Retire a degradation reason (idempotent)."""
        with self._lock:
            self._reasons.discard(reason)

    def set_reason(self, reason: str, active: bool) -> None:
        if active:
            self.flag(reason)
        else:
            self.clear(reason)

    def warn(self, warning: str) -> None:
        """Mark an advisory warning active (idempotent)."""
        with self._lock:
            self._warnings.add(warning)

    def clear_warning(self, warning: str) -> None:
        """Retire an advisory warning (idempotent)."""
        with self._lock:
            self._warnings.discard(warning)

    def set_warning(self, warning: str, active: bool) -> None:
        if active:
            self.warn(warning)
        else:
            self.clear_warning(warning)

    def set_fleet_degraded(self, active: bool) -> None:
        """Flag partial worker-fleet loss (idempotent both ways).

        A fleet supervisor raises this while live workers < the fleet
        size: the front end is still serving — warm results and
        high-priority work keep flowing — but it is shedding its
        lowest-priority jobs, so load balancers and operators must see
        the difference from both ``healthy`` and hard-``degraded``.
        """
        with self._lock:
            self._fleet_degraded = active

    def start_draining(self) -> None:
        """Enter the terminal draining state (graceful shutdown began)."""
        with self._lock:
            self._draining = True

    def _state_locked(self) -> HealthState:
        if self._draining:
            return HealthState.DRAINING
        if self._reasons:
            return HealthState.DEGRADED
        if self._fleet_degraded:
            return HealthState.FLEET_DEGRADED
        if self._warnings:
            return HealthState.SLO_WARNING
        return HealthState.HEALTHY

    @property
    def state(self) -> HealthState:
        with self._lock:
            return self._state_locked()

    @property
    def reasons(self) -> list[str]:
        with self._lock:
            return sorted(self._reasons)

    @property
    def warnings(self) -> list[str]:
        with self._lock:
            return sorted(self._warnings)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked().value,
                "reasons": sorted(self._reasons),
                "warnings": sorted(self._warnings),
                "fleet_degraded": self._fleet_degraded,
            }

    def __repr__(self) -> str:
        snapshot = self.snapshot()
        reasons = ",".join(snapshot["reasons"]) or "-"
        return f"HealthMonitor({snapshot['state']}, reasons={reasons})"
