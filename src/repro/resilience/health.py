"""The service health state machine: healthy / degraded / draining.

``/healthz`` needs more nuance than alive-or-dead: a service whose
circuit breaker is open, whose report store has quarantined entries, or
whose watchdog found stuck workers is *up* but *degraded* — load
balancers should prefer other replicas without killing this one.  A
service that has begun graceful shutdown is *draining* — it finishes
running jobs but accepts nothing new.

State machine::

    HEALTHY <──────> DEGRADED          (reasons flagged / cleared)
       │                │
       └──> DRAINING <──┘              (terminal: shutdown has begun)

:class:`HealthMonitor` tracks a set of named *reasons*; the state is
``degraded`` while any reason is flagged, and ``draining`` permanently
once :meth:`start_draining` is called.  Reasons are part of the snapshot
so operators see *why* a replica is degraded, not just that it is.
"""

from __future__ import annotations

import enum
import threading


class HealthState(enum.Enum):
    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DRAINING = "draining"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class HealthMonitor:
    """A thread-safe reason-set with a derived three-state health."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._reasons: set[str] = set()
        self._draining = False

    def flag(self, reason: str) -> None:
        """Mark a degradation reason active (idempotent)."""
        with self._lock:
            self._reasons.add(reason)

    def clear(self, reason: str) -> None:
        """Retire a degradation reason (idempotent)."""
        with self._lock:
            self._reasons.discard(reason)

    def set_reason(self, reason: str, active: bool) -> None:
        if active:
            self.flag(reason)
        else:
            self.clear(reason)

    def start_draining(self) -> None:
        """Enter the terminal draining state (graceful shutdown began)."""
        with self._lock:
            self._draining = True

    @property
    def state(self) -> HealthState:
        with self._lock:
            if self._draining:
                return HealthState.DRAINING
            if self._reasons:
                return HealthState.DEGRADED
            return HealthState.HEALTHY

    @property
    def reasons(self) -> list[str]:
        with self._lock:
            return sorted(self._reasons)

    def snapshot(self) -> dict:
        with self._lock:
            state = (
                HealthState.DRAINING
                if self._draining
                else (
                    HealthState.DEGRADED
                    if self._reasons
                    else HealthState.HEALTHY
                )
            )
            return {"state": state.value, "reasons": sorted(self._reasons)}

    def __repr__(self) -> str:
        snapshot = self.snapshot()
        reasons = ",".join(snapshot["reasons"]) or "-"
        return f"HealthMonitor({snapshot['state']}, reasons={reasons})"
