"""A reusable retry/backoff combinator — stdlib only.

Transient failures (connection refused while a service restarts, a torn
spool write, an injected :class:`~repro.resilience.faults.FaultError`)
should cost a bounded delay, not an aborted assessment.  The policy
implements the standard production recipe:

* **exponential backoff** — attempt *n* may wait up to
  ``base_delay * multiplier**n``, capped at ``max_delay``,
* **full jitter** — the actual wait is uniform in ``[0, cap]`` (seeded,
  so chaos tests are reproducible), which decorrelates retry storms,
* **deadline budget** — the combined wait+work time never exceeds
  ``deadline`` seconds; a retry that would overshoot re-raises instead,
* **Retry-After honouring** — when the caught exception carries a
  ``retry_after`` hint (e.g. :class:`~repro.service.BackpressureError`),
  the wait is raised to at least that hint.

Use as a combinator (:func:`call_with_retry`) or decorator
(:func:`retry`).  ``sleep`` and ``clock`` are injectable so tests run in
virtual time.
"""

from __future__ import annotations

import dataclasses
import random
import time
from collections.abc import Callable


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """How often, how long, and on which exceptions to retry."""

    #: Total attempts, including the first (1 = no retries).
    max_attempts: int = 4
    #: First backoff cap in seconds.
    base_delay: float = 0.05
    #: Upper bound of any single backoff.
    max_delay: float = 2.0
    #: Exponential growth factor of the backoff cap.
    multiplier: float = 2.0
    #: Overall time budget in seconds (``None`` = unbounded).
    deadline: float | None = None
    #: Full jitter: wait uniform in ``[0, cap]`` instead of exactly cap.
    jitter: bool = True
    #: Exception classes that trigger a retry; everything else is
    #: re-raised immediately.
    retry_on: tuple[type[BaseException], ...] = (Exception,)
    #: Seed of the jitter RNG (``None`` = nondeterministic).
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )

    def backoff_cap(self, attempt: int) -> float:
        """The backoff ceiling after the ``attempt``-th failure (0-based)."""
        return min(
            self.max_delay, self.base_delay * self.multiplier**attempt
        )

    def delay_for(self, attempt: int, rng: random.Random) -> float:
        cap = self.backoff_cap(attempt)
        return rng.uniform(0.0, cap) if self.jitter else cap


def call_with_retry(
    function: Callable,
    *args,
    policy: RetryPolicy | None = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
    **kwargs,
):
    """Run ``function`` under ``policy``; returns its result or re-raises
    the final exception once attempts/deadline are exhausted.

    ``on_retry(attempt, delay, exc)`` is invoked before each backoff
    sleep — the hook where callers count retries into their metrics.
    """
    policy = policy if policy is not None else RetryPolicy()
    rng = random.Random(policy.seed)
    started = clock()
    failures = 0
    while True:
        try:
            return function(*args, **kwargs)
        except policy.retry_on as exc:
            failures += 1
            if failures >= policy.max_attempts:
                raise
            delay = policy.delay_for(failures - 1, rng)
            hint = getattr(exc, "retry_after", None)
            if hint is not None:
                delay = max(delay, float(hint))
            if (
                policy.deadline is not None
                and clock() - started + delay > policy.deadline
            ):
                raise
            if on_retry is not None:
                on_retry(failures, delay, exc)
            sleep(delay)


def retry(
    policy: RetryPolicy | None = None,
    *,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_retry: Callable[[int, float, BaseException], None] | None = None,
):
    """Decorator form of :func:`call_with_retry`::

        @retry(RetryPolicy(max_attempts=3, retry_on=(OSError,)))
        def flaky_write(path, data): ...
    """

    def decorate(function: Callable) -> Callable:
        def wrapper(*args, **kwargs):
            return call_with_retry(
                function,
                *args,
                policy=policy,
                sleep=sleep,
                clock=clock,
                on_retry=on_retry,
                **kwargs,
            )

        wrapper.__name__ = getattr(function, "__name__", "wrapped")
        wrapper.__doc__ = function.__doc__
        wrapper.__wrapped__ = function
        return wrapper

    return decorate
