"""Resilience: fault injection, graceful degradation, self-healing.

EFES is a *pre-project* estimator run over messy, untrusted scenarios —
precisely the setting where integration tooling historically collapses
on dirty inputs and partial failures (Doan et al., "Toward a System
Building Agenda for Data Integration").  This package is the toolbox the
rest of the stack uses to degrade instead of die:

* :mod:`~repro.resilience.faults` — a deterministic, seeded
  fault-injection framework (:class:`FaultPlan`/:class:`FaultPoint`,
  ``raise``/``delay``/``corrupt`` actions) armed via
  ``$REPRO_FAULT_PLAN`` or programmatically, with named injection sites
  in detectors, the profiler, store I/O, scheduler dispatch, and the
  HTTP handler — every hardening claim below is testable,
* :mod:`~repro.resilience.degradation` — :class:`DegradedResult`
  tombstones for failed detectors/planners, surfaced on
  ``AssessmentOutcome.degradations``, in service result documents, in
  ``/metrics`` (``degraded_total``), and via a distinct CLI exit code,
* :mod:`~repro.resilience.retry` — an exponential-backoff / full-jitter
  / deadline-budget :func:`retry` combinator (stdlib only) adopted by
  :class:`~repro.service.ServiceClient` and spool I/O,
* :mod:`~repro.resilience.breaker` — a closed/open/half-open
  :class:`CircuitBreaker` guarding service job execution,
* :mod:`~repro.resilience.health` — the healthy/degraded/draining
  :class:`HealthMonitor` reported by ``/healthz``.
"""

from .breaker import CircuitBreaker, CircuitOpenError, CircuitState
from .degradation import DegradedResult, format_exception, split_degraded
from .faults import (
    CORRUPTION_MARKER,
    FAULT_ACTIONS,
    FAULT_PLAN_ENV_VAR,
    FaultError,
    FaultPlan,
    FaultPoint,
    active_fault_plan,
    corrupt_text,
    fault_plan_from_env,
    fault_point,
    injected_faults,
    install_fault_plan,
    reset_fault_plan,
)
from .health import HealthMonitor, HealthState
from .retry import RetryPolicy, call_with_retry, retry

__all__ = [
    "CORRUPTION_MARKER",
    "CircuitBreaker",
    "CircuitOpenError",
    "CircuitState",
    "DegradedResult",
    "FAULT_ACTIONS",
    "FAULT_PLAN_ENV_VAR",
    "FaultError",
    "FaultPlan",
    "FaultPoint",
    "HealthMonitor",
    "HealthState",
    "RetryPolicy",
    "active_fault_plan",
    "call_with_retry",
    "corrupt_text",
    "fault_plan_from_env",
    "fault_point",
    "format_exception",
    "injected_faults",
    "install_fault_plan",
    "reset_fault_plan",
    "retry",
    "split_degraded",
]
