"""Partial-failure results: what survives when a pipeline stage dies.

The paper's *Generality* requirement ("an automatic estimation is still
desirable" even for inputs that break formal assumptions) extends to the
runtime itself: one crashing detector should cost its module's report,
not the whole assessment.  A :class:`DegradedResult` is the tombstone
left in a failed stage's place — it names the module, the phase that
failed (``assess`` or ``plan``), the stringified exception, and the time
burnt before the failure — and every outcome surface (CLI tables,
service result documents, ``/metrics`` ``degraded_total``, traces)
carries the list of them so a degraded answer is never mistaken for a
complete one.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class DegradedResult:
    """Record of one module whose detector or planner failed."""

    #: Name of the estimation module that failed.
    module: str
    #: Pipeline phase that failed: ``"assess"`` or ``"plan"``.
    phase: str
    #: ``"ExceptionType: message"`` of the failure.
    error: str
    #: Seconds spent in the stage before it failed.
    elapsed_seconds: float = 0.0
    #: Scenario being processed when the failure happened.
    scenario: str = ""

    def describe(self) -> str:
        return (
            f"{self.module}/{self.phase} degraded after "
            f"{self.elapsed_seconds:.3f}s: {self.error}"
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "DegradedResult":
        return cls(
            module=doc["module"],
            phase=doc["phase"],
            error=doc["error"],
            elapsed_seconds=float(doc.get("elapsed_seconds", 0.0)),
            scenario=doc.get("scenario", ""),
        )


def split_degraded(reports: dict) -> tuple[dict, list[DegradedResult]]:
    """Separate a (possibly mixed) report dict into clean reports and the
    degradation records a non-strict assessment left behind."""
    clean: dict = {}
    degraded: list[DegradedResult] = []
    for name, report in reports.items():
        if isinstance(report, DegradedResult):
            degraded.append(report)
        else:
            clean[name] = report
    return clean, degraded


def format_exception(exc: BaseException) -> str:
    """The canonical ``"TypeName: message"`` rendering used everywhere a
    degradation or job failure is stringified."""
    return f"{type(exc).__name__}: {exc}"
