"""A classic three-state circuit breaker, thread-safe and clock-injectable.

State machine::

              failure_threshold consecutive failures
    CLOSED ────────────────────────────────────────────> OPEN
      ^                                                   │
      │ probe succeeds                 reset_timeout      │
      │                                 elapsed           v
    HALF_OPEN <───────────────────────────────────────────┘
      │
      └── probe fails ──> OPEN (timer restarts)

While **open**, :meth:`CircuitBreaker.allow` raises
:class:`CircuitOpenError` carrying an explicit ``retry_after`` (the
remaining cool-down), which the HTTP API converts into a 503 +
``Retry-After`` — callers experience backpressure, never a pile-up of
doomed work.  **Half-open** admits at most ``half_open_max`` concurrent
probes; one success closes the breaker, one failure re-opens it.

The scheduler guards job execution with one breaker per service and
reports its state through ``/healthz``; the watchdog records stuck
workers as failures, so a wedged runtime trips the breaker without a
single exception ever surfacing.
"""

from __future__ import annotations

import enum
import threading
import time
from collections.abc import Callable, Iterator
from contextlib import contextmanager


class CircuitState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class CircuitOpenError(RuntimeError):
    """The guarded operation was rejected because the circuit is open."""

    def __init__(self, name: str, retry_after: float) -> None:
        super().__init__(
            f"circuit {name!r} is open; retry in ~{retry_after:g}s"
        )
        self.name = name
        self.retry_after = retry_after


class CircuitBreaker:
    """Failure accounting + admission control around one dependency."""

    def __init__(
        self,
        name: str = "service",
        failure_threshold: int = 5,
        reset_timeout: float = 30.0,
        half_open_max: int = 1,
        clock: Callable[[], float] = time.monotonic,
        listener: Callable[[CircuitState, CircuitState], None] | None = None,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self.half_open_max = half_open_max
        self._clock = clock
        self._listener = listener
        self._lock = threading.Lock()
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._half_open_probes = 0
        self._opened_total = 0
        self._rejected_total = 0

    # -- state ------------------------------------------------------------

    @property
    def state(self) -> CircuitState:
        with self._lock:
            return self._effective_state_locked()

    def _effective_state_locked(self) -> CircuitState:
        """OPEN decays to HALF_OPEN once the cool-down has elapsed."""
        if (
            self._state is CircuitState.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._transition_locked(CircuitState.HALF_OPEN)
            self._half_open_probes = 0
        return self._state

    def _transition_locked(self, state: CircuitState) -> None:
        previous, self._state = self._state, state
        if state is CircuitState.OPEN:
            self._opened_at = self._clock()
            self._opened_total += 1
        if previous is not state and self._listener is not None:
            self._listener(previous, state)

    # -- admission --------------------------------------------------------

    def allow(self) -> None:
        """Admit one guarded operation or raise :class:`CircuitOpenError`."""
        with self._lock:
            state = self._effective_state_locked()
            if state is CircuitState.CLOSED:
                return
            if state is CircuitState.HALF_OPEN:
                if self._half_open_probes < self.half_open_max:
                    self._half_open_probes += 1
                    return
                self._rejected_total += 1
                raise CircuitOpenError(self.name, self._retry_after_locked())
            self._rejected_total += 1
            raise CircuitOpenError(self.name, self._retry_after_locked())

    def _retry_after_locked(self) -> float:
        if self._state is CircuitState.HALF_OPEN or self._opened_at is None:
            # Probes in flight: a short, bounded wait is honest.
            return round(max(0.1, self.reset_timeout / 10.0), 1)
        remaining = self.reset_timeout - (self._clock() - self._opened_at)
        return round(max(0.1, remaining), 1)

    # -- outcome accounting -----------------------------------------------

    def record_success(self) -> None:
        with self._lock:
            self._consecutive_failures = 0
            if self._state is not CircuitState.CLOSED:
                self._transition_locked(CircuitState.CLOSED)
                self._half_open_probes = 0
                self._opened_at = None

    def record_failure(self) -> None:
        with self._lock:
            state = self._effective_state_locked()
            if state is CircuitState.HALF_OPEN:
                # The probe failed: straight back to open, timer restarts.
                self._transition_locked(CircuitState.OPEN)
                self._half_open_probes = 0
                return
            self._consecutive_failures += 1
            if (
                state is CircuitState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._transition_locked(CircuitState.OPEN)

    def add_listener(
        self, listener: Callable[[CircuitState, CircuitState], None]
    ) -> None:
        """Chain a transition listener after any already registered."""
        with self._lock:
            existing = self._listener
            if existing is None:
                self._listener = listener
                return

            def chained(previous: CircuitState, state: CircuitState) -> None:
                existing(previous, state)
                listener(previous, state)

            self._listener = chained

    @contextmanager
    def guard(self) -> Iterator[None]:
        """``allow()`` + automatic outcome accounting around a block."""
        self.allow()
        try:
            yield
        except Exception:
            self.record_failure()
            raise
        else:
            self.record_success()

    # -- inspection -------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            state = self._effective_state_locked()
            doc = {
                "name": self.name,
                "state": state.value,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "opened_total": self._opened_total,
                "rejected_total": self._rejected_total,
            }
            if state is CircuitState.OPEN:
                doc["retry_after"] = self._retry_after_locked()
            return doc

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self.state.value}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
