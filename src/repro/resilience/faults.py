"""Deterministic, seeded fault injection for the assessment stack.

Every hardening claim in this repository is testable because the code
declares **named injection sites** — ``detector``, ``profile``,
``store.read``, ``store.write``, ``store.fsync``, ``scheduler.dispatch``,
``http.handler``, ``journal.append``, ``journal.fsync``,
``journal.replay``, ``spool.read``, ``spool.write``,
``process.dispatch``, ``process.worker``, ``deadline.checkpoint`` (fires
only under an active :class:`~repro.runtime.deadline.CancelScope`, so
delay rules stall exactly the code that must notice deadlines) — and a
:class:`FaultPlan` decides, deterministically,
which of them misbehave.  A plan is a list of :class:`FaultPoint` rules;
each rule matches a site (optionally filtered on the site's context,
e.g. ``{"name": "mapping"}``) and fires one of three actions:

* ``raise``  — raise a :class:`FaultError` (an :class:`OSError` subclass,
  so store/client I/O sites fail exactly like a disk or socket would),
* ``delay``  — sleep ``delay_seconds`` before continuing (latency
  injection for timeout/watchdog testing),
* ``corrupt`` — mangle the payload passing through a data site (spool
  writes), producing torn/garbage bytes for the recovery scan to find.

Plans are activated programmatically (:func:`install_fault_plan`, or the
:func:`injected_faults` context manager in tests) or via the
``$REPRO_FAULT_PLAN`` environment variable, whose value is either inline
JSON or a path to a JSON file::

    REPRO_FAULT_PLAN='{"seed": 7, "points": [
        {"site": "detector", "action": "raise",
         "times": 1, "per": "scenario"}]}' efes experiments

The ``times``/``per`` pair bounds firings: ``times`` caps how often a
point fires, and ``per`` scopes that budget to each distinct value of a
context key — ``times: 1, per: "scenario"`` injects exactly one detector
crash per scenario, which is the acceptance scenario of the resilience
ISSUE.  ``probability`` (seeded through the plan) makes a point fire on
a deterministic subset of its matches.

With no plan installed, :func:`fault_point` is one module-global read
and a ``None`` check — the happy path stays within the <5% overhead gate
enforced by ``benchmarks/bench_resilience_overhead.py``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path

#: Environment variable carrying a fault plan (inline JSON or a path).
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

#: The actions a fault point knows how to perform.
FAULT_ACTIONS = ("raise", "delay", "corrupt")

#: Marker spliced into corrupted payloads; recovery tests grep for it.
CORRUPTION_MARKER = "\x00!corrupted-by-fault-plan!\x00"


class FaultError(OSError):
    """The exception an injected ``raise`` action throws.

    Subclasses :class:`OSError` on purpose: faults injected at store and
    client I/O sites then travel the same ``except OSError`` paths a real
    disk or socket failure would, so the retry/quarantine machinery is
    exercised exactly as in production.
    """


@dataclasses.dataclass
class FaultPoint:
    """One injection rule of a :class:`FaultPlan`."""

    #: Site name the rule arms, e.g. ``"detector"`` or ``"store.write"``.
    site: str
    #: ``raise`` | ``delay`` | ``corrupt``.
    action: str = "raise"
    #: Context filter: every listed key must match the site's context
    #: (string comparison), e.g. ``{"name": "mapping"}``.
    match: dict = dataclasses.field(default_factory=dict)
    #: Maximum firings (``None`` = unlimited).
    times: int | None = None
    #: Context key scoping the ``times`` budget, e.g. ``"scenario"``:
    #: the budget then applies per distinct value of that key.
    per: str | None = None
    #: Sleep duration of the ``delay`` action.
    delay_seconds: float = 0.0
    #: Deterministic (plan-seeded) firing probability.
    probability: float = 1.0
    #: Message of the raised :class:`FaultError`.
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if not self.site:
            raise ValueError("fault point needs a non-empty site")

    def matches(self, site: str, context: dict) -> bool:
        if site != self.site:
            return False
        return all(
            str(context.get(key)) == str(value)
            for key, value in self.match.items()
        )

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPoint":
        if not isinstance(doc, dict):
            raise ValueError(f"fault point must be an object, got {doc!r}")
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = set(doc) - known
        if unknown:
            raise ValueError(
                f"unknown fault point field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**doc)


class FaultPlan:
    """A seeded set of :class:`FaultPoint` rules, thread-safe to consult.

    ``plan.trips`` records every fired point (site, action, context) in
    firing order — tests and the CLI use it to prove injection happened.
    """

    def __init__(
        self,
        points: list[FaultPoint] | None = None,
        seed: int = 0,
        name: str = "fault-plan",
    ) -> None:
        self.points = list(points or [])
        self.seed = seed
        self.name = name
        self.trips: list[dict] = []
        self._rng = random.Random(seed)
        self._fired: dict[tuple[int, str | None], int] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self.points)

    def fire(
        self,
        site: str,
        context: dict,
        actions: tuple[str, ...] = FAULT_ACTIONS,
    ) -> FaultPoint | None:
        """The first matching point with budget left, consuming one
        firing; ``None`` when nothing is armed for this call.

        ``actions`` restricts which rule kinds this call-site can carry
        out — control sites (:func:`fault_point`) perform ``raise`` and
        ``delay``, data sites (:func:`corrupt_text`) perform ``corrupt``
        — so a rule never burns budget at a site that cannot enact it.
        """
        if not self.points:
            # An installed-but-empty plan must cost a tuple check, not a
            # lock, per site — the overhead bench gates this path.
            return None
        with self._lock:
            for index, point in enumerate(self.points):
                if point.action not in actions:
                    continue
                if not point.matches(site, context):
                    continue
                scope = (
                    str(context.get(point.per)) if point.per else None
                )
                key = (index, scope)
                if (
                    point.times is not None
                    and self._fired.get(key, 0) >= point.times
                ):
                    continue
                if (
                    point.probability < 1.0
                    and self._rng.random() >= point.probability
                ):
                    continue
                self._fired[key] = self._fired.get(key, 0) + 1
                self.trips.append(
                    {
                        "site": site,
                        "action": point.action,
                        "context": dict(context),
                    }
                )
                return point
        return None

    def trip_count(self, site: str | None = None) -> int:
        with self._lock:
            if site is None:
                return len(self.trips)
            return sum(1 for trip in self.trips if trip["site"] == site)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dict(cls, doc: dict, name: str = "fault-plan") -> "FaultPlan":
        if not isinstance(doc, dict):
            raise ValueError(f"fault plan must be an object, got {doc!r}")
        unknown = set(doc) - {"seed", "points", "name"}
        if unknown:
            raise ValueError(f"unknown fault plan field(s) {sorted(unknown)}")
        points = doc.get("points", [])
        if not isinstance(points, list):
            raise ValueError("fault plan 'points' must be a list")
        return cls(
            points=[FaultPoint.from_dict(point) for point in points],
            seed=int(doc.get("seed", 0)),
            name=str(doc.get("name", name)),
        )

    @classmethod
    def from_json(cls, text: str, name: str = "fault-plan") -> "FaultPlan":
        try:
            doc = json.loads(text)
        except ValueError as exc:
            raise ValueError(f"fault plan is not valid JSON: {exc}") from exc
        return cls.from_dict(doc, name=name)

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        path = Path(path)
        return cls.from_json(
            path.read_text(encoding="utf-8"), name=path.name
        )

    def __repr__(self) -> str:
        return (
            f"FaultPlan({self.name!r}, {len(self.points)} point(s), "
            f"seed={self.seed}, {len(self.trips)} trip(s))"
        )


def fault_plan_from_env(environ: dict | None = None) -> FaultPlan | None:
    """The plan named by ``$REPRO_FAULT_PLAN`` (inline JSON or a file
    path), or ``None`` when the variable is unset/empty.  Malformed
    values raise :class:`ValueError` — a typo must not silently disable
    a chaos run."""
    value = (environ if environ is not None else os.environ).get(
        FAULT_PLAN_ENV_VAR, ""
    ).strip()
    if not value:
        return None
    if value.startswith("{"):
        return FaultPlan.from_json(value, name=FAULT_PLAN_ENV_VAR)
    return FaultPlan.from_file(value)


# ----------------------------------------------------------------------
# Active-plan resolution: one global, env-resolved lazily exactly once.
# ----------------------------------------------------------------------

_PLAN: FaultPlan | None = None
_ENV_RESOLVED = False
_INSTALL_LOCK = threading.Lock()


def install_fault_plan(plan: FaultPlan | None) -> None:
    """Make ``plan`` the process-wide active plan (``None`` disarms all
    sites and suppresses later env resolution)."""
    global _PLAN, _ENV_RESOLVED
    with _INSTALL_LOCK:
        _PLAN = plan
        _ENV_RESOLVED = True


def reset_fault_plan() -> None:
    """Forget any installed plan and re-resolve ``$REPRO_FAULT_PLAN`` on
    the next :func:`fault_point` call (test isolation hook)."""
    global _PLAN, _ENV_RESOLVED
    with _INSTALL_LOCK:
        _PLAN = None
        _ENV_RESOLVED = False


def active_fault_plan() -> FaultPlan | None:
    """The installed plan, resolving the environment variable once."""
    global _PLAN, _ENV_RESOLVED
    if not _ENV_RESOLVED:
        with _INSTALL_LOCK:
            if not _ENV_RESOLVED:
                _PLAN = fault_plan_from_env()
                _ENV_RESOLVED = True
    return _PLAN


@contextmanager
def injected_faults(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Activate ``plan`` for the duration of a ``with`` block (tests)."""
    global _PLAN, _ENV_RESOLVED
    with _INSTALL_LOCK:
        previous_plan, previous_resolved = _PLAN, _ENV_RESOLVED
        _PLAN, _ENV_RESOLVED = plan, True
    try:
        yield plan
    finally:
        with _INSTALL_LOCK:
            _PLAN, _ENV_RESOLVED = previous_plan, previous_resolved


def fault_point(site: str, **context) -> None:
    """Declare a named injection site; no-op unless a plan arms it.

    ``raise`` points throw :class:`FaultError`; ``delay`` points sleep.
    ``corrupt`` points are ignored here — data sites pass their payload
    through :func:`corrupt_text` instead.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_RESOLVED:
            return
        plan = active_fault_plan()
        if plan is None:
            return
    point = plan.fire(site, context, actions=("raise", "delay"))
    if point is None:
        return
    if point.action == "delay":
        time.sleep(point.delay_seconds)
        return
    raise FaultError(
        point.message or f"injected fault at {site} ({plan.name})"
    )


def corrupt_text(site: str, text: str, **context) -> str:
    """Pass a data payload through the plan's ``corrupt`` rules.

    Returns ``text`` untouched unless a matching ``corrupt`` point fires,
    in which case the payload is truncated and spliced with
    :data:`CORRUPTION_MARKER` — guaranteed invalid JSON, so readers and
    recovery scans must cope.
    """
    plan = _PLAN if _ENV_RESOLVED else active_fault_plan()
    if plan is None:
        return text
    point = plan.fire(site, context, actions=("corrupt",))
    if point is None:
        return text
    return text[: max(1, len(text) // 2)] + CORRUPTION_MARKER
