"""The experiment harness of Section 6: Figures 6 and 7, end to end.

For each domain (bibliographic, music) the harness:

1. builds the four scenarios,
2. measures ground-truth effort by running the practitioner simulator on
   each (scenario, quality) cell,
3. produces raw EFES and attribute-counting estimates,
4. calibrates each estimator's single free scale parameter on the *other*
   domain's measurements (cross validation, exactly as in Section 6.2),
5. reports per-cell comparisons plus the relative rmse of both estimators.

Every number is deterministic given the seeds.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
from collections.abc import Callable, Sequence
from pathlib import Path

from .core import (
    AttributeCountingBaseline,
    Efes,
    ResultQuality,
    default_efes,
)
from .core.calibration import (
    ComparisonRow,
    DomainResult,
    EstimateSummary,
    combined_rmse,
    optimal_scale,
    relative_rmse,
)
from .core.tasks import TaskCategory
from .practitioner import PractitionerSimulator
from .resilience import DegradedResult, split_degraded
from .scenarios import bibliographic_scenarios, music_scenarios
from .scenarios.scenario import IntegrationScenario

QUALITIES = (ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY)

MAPPING = TaskCategory.MAPPING.value
STRUCTURE = TaskCategory.CLEANING_STRUCTURE.value
VALUES = TaskCategory.CLEANING_VALUES.value


@dataclasses.dataclass
class Cell:
    """One (scenario, quality) cell with its three raw numbers."""

    scenario: IntegrationScenario
    quality: ResultQuality
    measured_total: float
    measured_breakdown: dict[str, float]
    efes_total: float
    efes_breakdown: dict[str, float]
    counting_attributes: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.scenario.name, self.quality.label)


def _assess_via_scheduler(scheduler, scenario, degradations=None):
    """Phase 1 through the assessment service's scheduler + report store.

    Repeated runs (cross-validation folds, repeated harness invocations
    against a spooled store) are served from the store instead of
    re-running the detectors.  Result documents produced by a non-strict
    service may carry ``degradations``; they are decoded into the
    caller's accumulator so a partially failed remote assessment is
    reported exactly like a local one.
    """
    from .core.serialize import reports_from_dict
    from .service.jobs import JobState

    job = scheduler.submit(scenario, kind="assess")
    job = scheduler.wait(job.id)
    if job.state is not JobState.DONE:
        raise RuntimeError(
            f"assessment job for {scenario.name!r} ended "
            f"{job.state.value}: {job.error}"
        )
    if degradations is not None:
        for doc in job.result.get("degradations", ()):
            degradations.append(DegradedResult.from_dict(doc))
    return reports_from_dict(job.result["reports"])


def evaluate_domain(
    scenarios: Sequence[IntegrationScenario],
    efes: Efes | None = None,
    simulator: PractitionerSimulator | None = None,
    scheduler=None,
    trace_dir: str | Path | None = None,
    strict: bool | None = None,
    degradations: dict[str, list[DegradedResult]] | None = None,
) -> list[Cell]:
    """Measure + raw-estimate every (scenario, quality) cell of a domain.

    ``scheduler`` optionally routes phase-1 assessment through a
    :class:`repro.service.JobScheduler` (and thus its report store); the
    serialisation round-trip is lossless, so the cells are identical.
    ``trace_dir`` enables tracing and writes one span tree per scenario
    to ``<trace_dir>/<scenario>.trace.json``.  With ``strict=False``, a
    failing detector or planner degrades the affected module instead of
    aborting the whole evaluation; the tombstones land in the
    ``degradations`` accumulator keyed by scenario name.
    """
    from .observability import Tracer, tracing

    efes = efes or default_efes()
    simulator = simulator or PractitionerSimulator()
    cells: list[Cell] = []
    for scenario in scenarios:
        tracer = Tracer() if trace_dir is not None else None
        scope = (
            contextlib.nullcontext()
            if tracer is None
            else tracer.activated()
        )
        scenario_degraded: list[DegradedResult] = []
        with scope, tracing.span(f"scenario:{scenario.name}"):
            # Assess once per scenario; both quality cells price the
            # same complexity reports (the detectors are
            # quality-independent).
            if scheduler is not None:
                reports = _assess_via_scheduler(
                    scheduler, scenario, degradations=scenario_degraded
                )
            else:
                reports = efes.assess(scenario, strict=strict)
            reports, assess_degraded = split_degraded(reports)
            scenario_degraded.extend(assess_degraded)
            for quality in QUALITIES:
                result = simulator.integrate(scenario, quality)
                estimate = efes.estimate(
                    scenario,
                    quality,
                    reports=reports,
                    strict=strict,
                    degradations=scenario_degraded,
                )
                cells.append(
                    Cell(
                        scenario=scenario,
                        quality=quality,
                        measured_total=result.total_minutes,
                        measured_breakdown=result.breakdown(),
                        efes_total=estimate.total_minutes,
                        efes_breakdown={
                            category.value: minutes
                            for category, minutes in (
                                estimate.by_category().items()
                            )
                        },
                        counting_attributes=(
                            scenario.total_source_attributes()
                        ),
                    )
                )
        if degradations is not None and scenario_degraded:
            degradations.setdefault(scenario.name, []).extend(
                scenario_degraded
            )
        if tracer is not None and tracer.root is not None:
            _write_trace(trace_dir, scenario.name, tracer.root)
    return cells


def _write_trace(trace_dir: str | Path, name: str, root) -> None:
    """Persist one scenario's span tree as pretty-printed JSON."""
    from .observability import span_to_dict

    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{name}.trace.json"
    with path.open("w", encoding="utf-8") as handle:
        json.dump(span_to_dict(root), handle, indent=2, sort_keys=True)
        handle.write("\n")


def calibrate_efes_scale(training: Sequence[Cell]) -> float:
    """Least-squares scale for EFES on the training cells."""
    return optimal_scale(
        [cell.measured_total for cell in training],
        [cell.efes_total for cell in training],
    )


def calibrate_counting_rate(training: Sequence[Cell]) -> float:
    """Least-squares minutes-per-attribute rate for the baseline."""
    return optimal_scale(
        [cell.measured_total for cell in training],
        [float(cell.counting_attributes) for cell in training],
    )


def _summaries(
    cell: Cell,
    efes_scale: float,
    counting_rate: float,
    baseline: AttributeCountingBaseline,
) -> ComparisonRow:
    efes_total = cell.efes_total * efes_scale
    efes_summary = EstimateSummary(
        estimator="Efes",
        scenario_name=cell.scenario.name,
        quality_label=cell.quality.label,
        total_minutes=efes_total,
        breakdown={
            category: minutes * efes_scale
            for category, minutes in cell.efes_breakdown.items()
        },
    )
    measured_summary = EstimateSummary(
        estimator="Measured",
        scenario_name=cell.scenario.name,
        quality_label=cell.quality.label,
        total_minutes=cell.measured_total,
        breakdown=dict(cell.measured_breakdown),
    )
    counting_total = counting_rate * cell.counting_attributes
    counting_summary = EstimateSummary(
        estimator="Counting",
        scenario_name=cell.scenario.name,
        quality_label=cell.quality.label,
        total_minutes=counting_total,
        breakdown={
            MAPPING: counting_total * baseline.mapping_share,
            "Cleaning": counting_total * (1.0 - baseline.mapping_share),
        },
    )
    return ComparisonRow(
        scenario_name=cell.scenario.name,
        quality_label=cell.quality.label,
        efes=efes_summary,
        measured=measured_summary,
        counting=counting_summary,
    )


def cross_validated_results(
    domains: dict[str, Sequence[Cell]],
    baseline: AttributeCountingBaseline | None = None,
) -> list[DomainResult]:
    """Calibrate each domain's estimators on the union of the *other*
    domains and evaluate on the domain itself (Section 6.2)."""
    baseline = baseline or AttributeCountingBaseline()
    results: list[DomainResult] = []
    for domain, cells in domains.items():
        training = [
            cell
            for other, other_cells in domains.items()
            if other != domain
            for cell in other_cells
        ]
        if not training:
            training = list(cells)  # single-domain fallback: self-calibrate
        efes_scale = calibrate_efes_scale(training)
        counting_rate = calibrate_counting_rate(training)
        rows = tuple(
            _summaries(cell, efes_scale, counting_rate, baseline)
            for cell in cells
        )
        measured = [row.measured.total_minutes for row in rows]
        results.append(
            DomainResult(
                domain=domain,
                rows=rows,
                efes_rmse=relative_rmse(
                    measured, [row.efes.total_minutes for row in rows]
                ),
                counting_rmse=relative_rmse(
                    measured, [row.counting.total_minutes for row in rows]
                ),
            )
        )
    return results


@dataclasses.dataclass
class ExperimentReport:
    """Everything Section 6.2 reports: both domains plus the pooled rmse."""

    bibliographic: DomainResult
    music: DomainResult
    overall_efes_rmse: float
    overall_counting_rmse: float
    #: Per-scenario degradation records from a non-strict run; empty when
    #: every detector and planner succeeded.  A non-empty dict means the
    #: rmse numbers were computed over *partial* module coverage.
    degradations: dict[str, list[DegradedResult]] = dataclasses.field(
        default_factory=dict
    )

    @property
    def is_degraded(self) -> bool:
        return bool(self.degradations)

    @property
    def overall_improvement(self) -> float:
        if self.overall_efes_rmse == 0:
            return float("inf")
        return self.overall_counting_rmse / self.overall_efes_rmse


def run_experiments(
    seed: int = 1,
    efes_factory: Callable[[], Efes] | None = None,
    simulator: PractitionerSimulator | None = None,
    runtime=None,
    scheduler=None,
    trace_dir: str | Path | None = None,
    strict: bool = False,
) -> ExperimentReport:
    """The full Section 6 evaluation (Figures 6 + 7 and the rmse numbers).

    ``runtime`` optionally supplies a :class:`repro.runtime.Runtime` for
    the default framework (parallel backend, shared profile cache); the
    cross-validation folds then re-profile each scenario from cache
    instead of from scratch.  ``scheduler`` additionally routes phase-1
    assessment through a :class:`repro.service.JobScheduler`, so repeated
    harness runs against a spooled report store skip assessment entirely.
    ``trace_dir`` enables per-scenario tracing; one
    ``<scenario>.trace.json`` span tree lands there per scenario.

    By default (``strict=False``) a crashing detector or planner costs
    its module's contribution to the affected scenario, not the whole
    evaluation; the report's ``degradations`` dict names every casualty
    per scenario.  ``strict=True`` restores fail-fast semantics.
    """
    if efes_factory is not None:
        efes = efes_factory()
    else:
        efes = default_efes(runtime=runtime)
    simulator = simulator or PractitionerSimulator()
    degradations: dict[str, list[DegradedResult]] = {}
    domains = {
        "bibliographic": evaluate_domain(
            bibliographic_scenarios(seed), efes, simulator, scheduler,
            trace_dir=trace_dir, strict=strict, degradations=degradations,
        ),
        "music": evaluate_domain(
            music_scenarios(seed), efes, simulator, scheduler,
            trace_dir=trace_dir, strict=strict, degradations=degradations,
        ),
    }
    results = {
        result.domain: result for result in cross_validated_results(domains)
    }
    overall_efes, overall_counting = combined_rmse(list(results.values()))
    return ExperimentReport(
        bibliographic=results["bibliographic"],
        music=results["music"],
        overall_efes_rmse=overall_efes,
        overall_counting_rmse=overall_counting,
        degradations=degradations,
    )
