"""Supervised multi-process worker fleet for the assessment service.

ROADMAP item 2 ("scale out the service") made concrete: N worker
processes, each a full journalled assessment service
(:mod:`repro.fleet.worker`), supervised over a heartbeat control plane
(:mod:`repro.fleet.protocol`, :mod:`repro.fleet.supervisor`) behind one
HTTP front door (:mod:`repro.fleet.frontend`).  Submissions are
consistent-hashed by content key across workers
(:mod:`repro.fleet.hashing`); results land in one shared read-through
:class:`~repro.service.ReportStore` spool, so any worker serves any
warm result.

The robustness contract — a job submitted once is **settled exactly
once**, byte-identical to a serial execution, even while workers are
killed, hung, or partitioned — rests on three mechanisms working
together: per-worker write-ahead journals that are *fenced* (renamed)
after a kill and replayed read-only, idempotency keys riding every
submission end-to-end (client → front end → worker → failover
re-dispatch, via :class:`~repro.service.SubmitEnvelope`), and
content-addressed results that make duplicate execution converge on
the same bytes.  ``tests/sim/`` drives the whole fleet through seeded
chaos schedules asserting exactly that.

CLI: ``efes fleet serve --workers N`` / ``efes fleet status``;
``efes recover --fleet <dir>`` inspects every worker journal offline.
"""

from .frontend import FleetServer, make_fleet_server
from .hashing import HashRing
from .supervisor import (
    FleetShedError,
    FleetSupervisor,
    JobRoute,
    NoWorkersError,
    ProcessWorkerBackend,
    WorkerBackend,
    WorkerRecord,
)
from .worker import FleetWorker, worker_dirs

__all__ = [
    "FleetServer",
    "FleetShedError",
    "FleetSupervisor",
    "FleetWorker",
    "HashRing",
    "JobRoute",
    "NoWorkersError",
    "ProcessWorkerBackend",
    "WorkerBackend",
    "WorkerRecord",
    "make_fleet_server",
    "worker_dirs",
]
