"""The fleet control plane's wire protocol: newline-delimited JSON.

Workers dial the supervisor's control socket once at startup and keep
the connection for their whole life.  Three message types flow worker →
supervisor:

* ``hello`` — the worker announces itself: id, **epoch**, pid, and the
  ephemeral HTTP port it serves jobs on.  The epoch is the fencing
  token: the supervisor assigns it at spawn and bumps it on every
  restart, so a stopped-then-resumed zombie whose epoch has been
  superseded is ignored (and told to die) instead of racing its
  replacement for the journal.
* ``heartbeat`` — periodic liveness + a cheap status document (queue
  depth, running count, health state) and, every few beats, a full
  metrics snapshot (``MetricsSnapshot.to_dict``) the supervisor merges
  worker-labelled into the fleet view.
* ``goodbye`` — a graceful drain announcement, so planned shutdown is
  not mistaken for death.

One JSON object per line keeps framing trivial (no length prefixes to
tear), makes captured streams greppable in CI artifacts, and lets the
chaos harness drop, delay, or duplicate individual messages by line.
"""

from __future__ import annotations

import json
import socket
import time

#: Maximum accepted line length (a metrics snapshot is ~tens of KB; a
#: megabyte of headroom rejects garbage without rejecting telemetry).
MAX_LINE_BYTES = 4 * 1024 * 1024

#: Messages the supervisor understands.
MESSAGE_TYPES = ("hello", "heartbeat", "goodbye")


def hello_message(
    worker_id: str, epoch: int, pid: int, http_port: int
) -> dict:
    return {
        "type": "hello",
        "worker_id": worker_id,
        "epoch": epoch,
        "pid": pid,
        "http_port": http_port,
        "ts": time.time(),
    }


def heartbeat_message(
    worker_id: str,
    epoch: int,
    seq: int,
    *,
    status: dict | None = None,
    telemetry: dict | None = None,
) -> dict:
    doc = {
        "type": "heartbeat",
        "worker_id": worker_id,
        "epoch": epoch,
        "seq": seq,
        "ts": time.time(),
    }
    if status is not None:
        doc["status"] = status
    if telemetry is not None:
        doc["telemetry"] = telemetry
    return doc


def goodbye_message(worker_id: str, epoch: int, reason: str = "drain") -> dict:
    return {
        "type": "goodbye",
        "worker_id": worker_id,
        "epoch": epoch,
        "reason": reason,
        "ts": time.time(),
    }


def send_message(sock: socket.socket, message: dict) -> None:
    """Write one message as a single ``\\n``-terminated JSON line.

    ``sendall`` under a blocking socket: a partial write must not tear
    a frame, and heartbeat cadence is slow enough that blocking briefly
    on a full buffer is preferable to silently dropping liveness.
    """
    line = json.dumps(message, ensure_ascii=False).encode("utf-8")
    sock.sendall(line + b"\n")


class MessageReader:
    """Incremental line-framed JSON decoding over a stream socket.

    Damage containment mirrors the journal's WAL stance: a line that is
    not valid JSON (or is preposterously long) is dropped and counted,
    never allowed to break the connection — the sender's *next* line
    resynchronises the stream.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buffer = b""
        self.malformed = 0

    def read(self) -> dict | None:
        """The next decoded message, or ``None`` once the peer closed.

        Blocks on the underlying socket; callers run one reader thread
        per connection.
        """
        while True:
            newline = self._buffer.find(b"\n")
            if newline >= 0:
                line = self._buffer[:newline]
                self._buffer = self._buffer[newline + 1:]
                message = self._decode(line)
                if message is not None:
                    return message
                continue
            if len(self._buffer) > MAX_LINE_BYTES:
                self._buffer = b""
                self.malformed += 1
            try:
                chunk = self._sock.recv(65536)
            except OSError:
                return None
            if not chunk:
                return None
            self._buffer += chunk

    def _decode(self, line: bytes) -> dict | None:
        if not line.strip():
            return None
        try:
            message = json.loads(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self.malformed += 1
            return None
        if (
            not isinstance(message, dict)
            or message.get("type") not in MESSAGE_TYPES
        ):
            self.malformed += 1
            return None
        return message
