"""The fleet supervisor: spawn, watch, fence, replay, re-dispatch.

One :class:`FleetSupervisor` owns N workers (OS processes by default,
in-process simulated workers in the chaos harness — anything
implementing :class:`WorkerBackend`), a TCP control plane they dial
home to, and the routing table that maps every accepted job to the
worker executing it.

Failover is a strict sequence, because exactly-once settlement depends
on the order:

1. **detect** — a worker misses its liveness deadline (heartbeats
   stopped: crashed, SIGSTOPped, or partitioned) or its process is
   observed dead,
2. **kill** — the backend hard-kills the worker and waits for it; a
   merely-hung worker must be *made* dead before step 3, or it could
   wake up and keep appending to a journal the supervisor is about to
   replay,
3. **fence** — the worker's journal directory is renamed to
   ``journal-fenced-<epoch>``: an atomic, crash-safe tombstone.  A
   restarted successor gets a fresh directory; the fenced one is
   immutable history,
4. **replay** — :class:`~repro.durability.RecoveryManager` replays the
   fenced journal read-only and plans: jobs whose results already sit
   in the **shared** spool settle from the store (the crash hit after
   the result write — re-execution would be waste, not progress); jobs
   settled in the journal are terminal; everything else is re-dispatch,
5. **re-dispatch** — unsettled jobs ride their original
   :class:`~repro.service.SubmitEnvelope` (same priority, same
   **idempotency key**) to the ring-successor survivor.  The key makes
   duplicate settlement structurally impossible: even if the dead
   worker half-ran the job, results are content-addressed, so the
   survivor's execution converges on the same bytes.

While ``live < fleet size`` the supervisor raises the
``fleet-degraded`` health state and the front end sheds
lowest-priority work; dead workers are restarted (epoch + 1) unless
the policy says otherwise, and a zombie presenting a stale epoch is
disconnected instead of re-admitted.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import subprocess
import sys
import threading
import time
from collections import deque
from pathlib import Path

from ..durability import JobJournal, RecoveryManager
from ..observability import EventLog
from ..observability.context import WorkerTelemetry, merge_worker_telemetry
from ..resilience import HealthMonitor
from ..runtime import RuntimeMetrics
from ..runtime.metrics import snapshot_from_dict
from ..service import ReportStore, ServiceClient, SubmitEnvelope
from ..service.client import ServiceError
from .hashing import HashRing
from .protocol import MessageReader
from .worker import DEFAULT_HEARTBEAT_INTERVAL, worker_dirs

#: Default liveness deadline as a multiple of the heartbeat interval:
#: tolerate a few lost beats before declaring death.
LIVENESS_MULTIPLE = 6.0

#: Grace period for a spawning worker to say hello before it is
#: declared dead (process start + imports take real seconds).
DEFAULT_STARTUP_GRACE = 20.0


class FleetShedError(RuntimeError):
    """The degraded fleet is shedding this (low-priority) submission."""

    def __init__(self, priority: int, missing: int, retry_after: float) -> None:
        super().__init__(
            f"fleet is degraded ({missing} worker(s) down); shedding "
            f"priority-{priority} work — retry in ~{retry_after:g}s"
        )
        self.priority = priority
        self.missing = missing
        self.retry_after = retry_after


class NoWorkersError(RuntimeError):
    """No live worker can accept work right now."""

    def __init__(self, retry_after: float = 5.0) -> None:
        super().__init__("no live fleet workers; retry later")
        self.retry_after = retry_after


@dataclasses.dataclass
class WorkerRecord:
    """The supervisor's view of one worker slot."""

    worker_id: str
    epoch: int
    handle: object = None
    pid: int | None = None
    http_port: int | None = None
    state: str = "starting"  # starting | live | dead | draining
    started_at: float = 0.0
    last_seen: float | None = None
    beats: int = 0
    status: dict = dataclasses.field(default_factory=dict)
    telemetry: dict | None = None
    failovers: int = 0
    connection: socket.socket | None = dataclasses.field(
        default=None, repr=False
    )

    @property
    def url(self) -> str | None:
        if self.http_port is None:
            return None
        return f"http://127.0.0.1:{self.http_port}"

    def snapshot(self) -> dict:
        return {
            "worker_id": self.worker_id,
            "epoch": self.epoch,
            "pid": self.pid,
            "http_port": self.http_port,
            "state": self.state,
            "last_seen": self.last_seen,
            "beats": self.beats,
            "failovers": self.failovers,
            "status": dict(self.status),
        }


@dataclasses.dataclass
class JobRoute:
    """One accepted job's place in the fleet.

    ``job_id`` is the id the client holds; ``remote_id`` is the id on
    the currently-owning worker (they start equal and diverge when a
    failover re-dispatches the job to a survivor).  ``settled`` is set
    when the *supervisor* terminated the route — completed from the
    shared store after a failover, or found terminal in a fenced
    journal — and is served without touching any worker.
    """

    job_id: str
    worker_id: str | None
    remote_id: str
    envelope: SubmitEnvelope
    store_key: str
    settled: dict | None = None
    redispatches: int = 0
    parked: bool = False
    #: Supervisor-clock admission time.  ``envelope`` always keeps the
    #: *original* submission; a re-dispatch sends a copy whose timeout
    #: is the budget remaining since this instant — a job that burned
    #: 8s of a 10s budget on a dead worker gets 2s on the survivor,
    #: not a fresh 10s.
    admitted_at: float = 0.0


class WorkerBackend:
    """How the supervisor starts and kills workers.

    The contract :meth:`kill` must honour: when it returns, the worker
    can no longer write to its journal directory.  For OS processes
    that means SIGKILL **and wait** — fencing before the kernel has
    reaped the process would race a final buffered append.
    """

    def spawn(self, worker_id: str, epoch: int, control_port: int):
        raise NotImplementedError

    def kill(self, handle) -> None:
        raise NotImplementedError

    def terminate(self, handle) -> None:
        """Graceful stop (SIGTERM-equivalent); used at fleet shutdown."""
        raise NotImplementedError

    def is_alive(self, handle) -> bool:
        raise NotImplementedError


class ProcessWorkerBackend(WorkerBackend):
    """Real OS worker processes via ``python -m repro.fleet.worker``."""

    def __init__(
        self,
        fleet_dir: str | Path,
        *,
        job_workers: int = 2,
        queue_size: int = 64,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        journal_fsync: str = "batch",
        extra_args: tuple[str, ...] = (),
    ) -> None:
        self.fleet_dir = Path(fleet_dir)
        self.job_workers = job_workers
        self.queue_size = queue_size
        self.heartbeat_interval = heartbeat_interval
        self.journal_fsync = journal_fsync
        self.extra_args = tuple(extra_args)

    def spawn(self, worker_id: str, epoch: int, control_port: int):
        env = dict(os.environ)
        src_root = str(Path(__file__).resolve().parents[2])
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            f"{src_root}{os.pathsep}{existing}" if existing else src_root
        )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.fleet.worker",
                "--id", worker_id,
                "--epoch", str(epoch),
                "--fleet-dir", str(self.fleet_dir),
                "--control-port", str(control_port),
                "--job-workers", str(self.job_workers),
                "--queue-size", str(self.queue_size),
                "--heartbeat-interval", str(self.heartbeat_interval),
                "--journal-fsync", self.journal_fsync,
                *self.extra_args,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def kill(self, handle) -> None:
        if handle is None or handle.poll() is not None:
            return
        handle.kill()
        try:
            handle.wait(timeout=10.0)
        except subprocess.TimeoutExpired:  # pragma: no cover - kernel lag
            pass

    def terminate(self, handle) -> None:
        if handle is None or handle.poll() is not None:
            return
        handle.terminate()
        try:
            handle.wait(timeout=10.0)
        except subprocess.TimeoutExpired:
            self.kill(handle)

    def is_alive(self, handle) -> bool:
        return handle is not None and handle.poll() is None


class FleetSupervisor:
    """N supervised workers + control plane + routing + failover."""

    def __init__(
        self,
        fleet_dir: str | Path,
        workers: int = 2,
        *,
        backend: WorkerBackend | None = None,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        liveness_deadline: float | None = None,
        startup_grace: float = DEFAULT_STARTUP_GRACE,
        restart_dead: bool = True,
        metrics: RuntimeMetrics | None = None,
        event_log: EventLog | None = None,
        clock=time.monotonic,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        self.fleet_dir = Path(fleet_dir)
        self.fleet_dir.mkdir(parents=True, exist_ok=True)
        self.size = workers
        self.backend = backend if backend is not None else (
            ProcessWorkerBackend(
                self.fleet_dir, heartbeat_interval=heartbeat_interval
            )
        )
        self.heartbeat_interval = heartbeat_interval
        self.liveness_deadline = (
            liveness_deadline
            if liveness_deadline is not None
            else heartbeat_interval * LIVENESS_MULTIPLE
        )
        self.startup_grace = startup_grace
        self.restart_dead = restart_dead
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.events = event_log if event_log is not None else EventLog()
        self.health = HealthMonitor()
        self.clock = clock
        #: The fleet's shared read-through result tier: any worker (and
        #: the supervisor itself, at failover time) reads and writes the
        #: same content-addressed spool.
        self.store = ReportStore(
            directory=self.fleet_dir / "spool", metrics=self.metrics
        )
        self.ring = HashRing()
        self._lock = threading.RLock()
        self._records: dict[str, WorkerRecord] = {}
        self._routes: dict[str, JobRoute] = {}
        self._by_idempotency: dict[str, str] = {}
        self._parked: deque[str] = deque()
        self._clients: dict[str, ServiceClient] = {}
        self._listener: socket.socket | None = None
        self.control_port: int | None = None
        self._stop = threading.Event()
        self._threads: list[threading.Thread] = []
        self.failovers_total = 0
        self.redispatched_total = 0
        self.completed_from_store_total = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Bind the control plane and spawn the initial fleet."""
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(self.size * 2 + 4)
        self.control_port = self._listener.getsockname()[1]
        accept = threading.Thread(
            target=self._accept_loop, name="fleet-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        for index in range(self.size):
            self._spawn(f"w{index}", 1)
        monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        monitor.start()
        self._threads.append(monitor)

    def _spawn(self, worker_id: str, epoch: int) -> None:
        record = WorkerRecord(
            worker_id=worker_id,
            epoch=epoch,
            state="starting",
            started_at=self.clock(),
        )
        # Register before spawning: a fast worker's hello must find its
        # record, or it would be rejected as unknown and told to die.
        with self._lock:
            self._records[worker_id] = record
            self.ring.add(worker_id)
        record.handle = self.backend.spawn(
            worker_id, epoch, self.control_port
        )
        self.events.emit(
            "fleet.worker.spawned", worker_id=worker_id, epoch=epoch
        )

    def close(self) -> None:
        """Stop monitoring, drain workers gracefully, close the plane."""
        self._stop.set()
        with self._lock:
            records = list(self._records.values())
        for record in records:
            if record.state in ("live", "starting"):
                self.backend.terminate(record.handle)
                record.state = "draining"
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass

    # -- control plane -----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                connection, _ = self._listener.accept()
            except OSError:
                return
            thread = threading.Thread(
                target=self._serve_connection,
                args=(connection,),
                name="fleet-conn",
                daemon=True,
            )
            thread.start()

    def _serve_connection(self, connection: socket.socket) -> None:
        reader = MessageReader(connection)
        record: WorkerRecord | None = None
        try:
            while True:
                message = reader.read()
                if message is None:
                    return
                kind = message["type"]
                if kind == "hello":
                    record = self._register(message, connection)
                    if record is None:
                        return  # stale epoch: connection closed, zombie dies
                elif record is not None:
                    if message.get("epoch") != record.epoch:
                        continue  # a fenced predecessor's stragglers
                    if kind == "heartbeat":
                        self._heartbeat(record, message)
                    elif kind == "goodbye":
                        with self._lock:
                            record.state = "draining"
                        self.events.emit(
                            "fleet.worker.goodbye",
                            worker_id=record.worker_id,
                            epoch=record.epoch,
                        )
        finally:
            try:
                connection.close()
            except OSError:
                pass

    def _register(
        self, message: dict, connection: socket.socket
    ) -> WorkerRecord | None:
        worker_id = message.get("worker_id", "")
        epoch = int(message.get("epoch", 0))
        with self._lock:
            record = self._records.get(worker_id)
            if record is None or epoch != record.epoch:
                # Unknown worker or a zombie from a fenced epoch:
                # closing the connection orders it to shut down.
                self.events.emit(
                    "fleet.worker.rejected",
                    worker_id=worker_id,
                    epoch=epoch,
                    expected=record.epoch if record else None,
                )
                return None
            record.pid = int(message.get("pid", 0)) or None
            record.http_port = int(message.get("http_port", 0)) or None
            record.state = "live"
            record.last_seen = self.clock()
            record.connection = connection
            self._clients.pop(worker_id, None)
        self.metrics.set_gauge("fleet_worker_up", 1.0, worker=worker_id)
        self.events.emit(
            "fleet.worker.live",
            worker_id=worker_id,
            epoch=epoch,
            pid=record.pid,
            http_port=record.http_port,
        )
        self._refresh_degradation()
        self._drain_parked()
        return record

    def _heartbeat(self, record: WorkerRecord, message: dict) -> None:
        with self._lock:
            record.last_seen = self.clock()
            record.beats += 1
            record.status = message.get("status") or {}
            if message.get("telemetry") is not None:
                record.telemetry = message["telemetry"]
        status = record.status
        self.metrics.set_gauge(
            "fleet_worker_queue_depth",
            float(status.get("queue_depth", 0)),
            worker=record.worker_id,
        )
        self.metrics.set_gauge(
            "fleet_worker_running",
            float(status.get("running", 0)),
            worker=record.worker_id,
        )

    # -- liveness + failover ----------------------------------------------

    def _monitor_loop(self) -> None:
        interval = max(0.01, self.heartbeat_interval / 2.0)
        while not self._stop.wait(interval):
            self._check_liveness()
            self._drain_parked()

    def _check_liveness(self) -> None:
        now = self.clock()
        doomed: list[WorkerRecord] = []
        with self._lock:
            for record in self._records.values():
                if record.state == "live":
                    silent = (
                        record.last_seen is not None
                        and now - record.last_seen > self.liveness_deadline
                    )
                    if silent or not self.backend.is_alive(record.handle):
                        doomed.append(record)
                elif record.state == "starting":
                    if (
                        now - record.started_at > self.startup_grace
                        and not self.backend.is_alive(record.handle)
                    ):
                        doomed.append(record)
        for record in doomed:
            self.failover(record.worker_id, reason="liveness")

    def failover(self, worker_id: str, *, reason: str = "manual") -> dict:
        """Kill, fence, replay, re-dispatch one worker.  Idempotent per
        epoch: a second call for an already-dead epoch is a no-op."""
        with self._lock:
            record = self._records.get(worker_id)
            if record is None or record.state == "dead":
                return {"worker_id": worker_id, "skipped": True}
            record.state = "dead"
            epoch = record.epoch
            record.failovers += 1
            self.failovers_total += 1
        self.metrics.set_gauge("fleet_worker_up", 0.0, worker=worker_id)
        self.metrics.increment("fleet_failovers", reason=reason)
        self.events.emit(
            "fleet.worker.failover",
            worker_id=worker_id,
            epoch=epoch,
            reason=reason,
        )
        # 1. Make death a fact, not a hypothesis.
        self.backend.kill(record.handle)
        with self._lock:
            connection = record.connection
            record.connection = None
        if connection is not None:
            try:
                connection.close()
            except OSError:
                pass
        self._refresh_degradation()
        # 2. Fence the journal, 3. replay it, 4. settle/re-dispatch.
        summary = self._recover_worker_jobs(worker_id, epoch)
        summary.update(
            {"worker_id": worker_id, "epoch": epoch, "reason": reason}
        )
        # 5. Restart at the next epoch (policy-gated).
        if self.restart_dead and not self._stop.is_set():
            self._spawn(worker_id, epoch + 1)
        return summary

    def fence_journal(self, worker_id: str, epoch: int) -> Path | None:
        """Atomically retire the worker's journal directory."""
        journal_dir, _ = worker_dirs(self.fleet_dir, worker_id)
        if not journal_dir.is_dir():
            return None
        fenced = journal_dir.with_name(f"journal-fenced-{epoch}")
        journal_dir.rename(fenced)
        return fenced

    def _recover_worker_jobs(self, worker_id: str, epoch: int) -> dict:
        fenced = self.fence_journal(worker_id, epoch)
        replayed_jobs: dict = {}
        if fenced is not None:
            journal = JobJournal(fenced)
            try:
                manager = RecoveryManager(journal, self.store)
                replayed_jobs = manager.replay().jobs
            finally:
                journal.close()
        with self._lock:
            owned = [
                route
                for route in self._routes.values()
                if route.worker_id == worker_id and route.settled is None
            ]
        settled = redispatched = parked = exhausted = 0
        for route in owned:
            state = replayed_jobs.get(route.remote_id)
            if state is not None and state.is_settled:
                doc = state.settled
                route.settled = {
                    "state": doc.get("state", "failed"),
                    "error": doc.get("error"),
                    "store_key": state.store_key or route.store_key,
                }
                route.worker_id = None
                settled += 1
                continue
            if self.store.contains(route.store_key):
                # The result landed in the shared spool before the
                # settled record could: serve it, never re-execute.
                route.settled = {
                    "state": "done",
                    "store_key": route.store_key,
                    "from_store": True,
                }
                route.worker_id = None
                settled += 1
                self.completed_from_store_total += 1
                self.metrics.increment("fleet_completed_from_store")
                continue
            remaining = self._remaining_budget(route)
            if remaining is not None and remaining <= 0:
                self._fail_exhausted(route)
                exhausted += 1
                continue
            if self._redispatch(route, exclude={worker_id}):
                redispatched += 1
            elif route.settled is not None:
                exhausted += 1
            else:
                parked += 1
        self.events.emit(
            "fleet.failover.recovered",
            worker_id=worker_id,
            epoch=epoch,
            settled=settled,
            redispatched=redispatched,
            parked=parked,
            deadline_exhausted=exhausted,
        )
        return {
            "settled": settled,
            "redispatched": redispatched,
            "parked": parked,
            "deadline_exhausted": exhausted,
            "fenced": str(fenced) if fenced is not None else None,
        }

    def _remaining_budget(self, route: JobRoute) -> float | None:
        """Seconds left of the route's original execution budget.

        ``None`` for unbounded submissions.  Measured from admission on
        the supervisor's clock, so time burned on a dead worker — and
        time spent parked — counts against the budget.
        """
        timeout = route.envelope.timeout
        if timeout is None:
            return None
        return timeout - (self.clock() - route.admitted_at)

    def _fail_exhausted(self, route: JobRoute) -> None:
        """Settle a route whose budget died with its worker(s)."""
        with self._lock:
            route.settled = {
                "state": "failed",
                "error": (
                    f"timed out after {route.envelope.timeout:g}s "
                    "(budget exhausted across failover)"
                ),
            }
            route.worker_id = None
            route.parked = False
        self.metrics.increment("fleet_deadline_exhausted")
        self.events.emit(
            "fleet.job.deadline_exhausted",
            job_id=route.job_id,
            timeout=route.envelope.timeout,
            redispatches=route.redispatches,
        )

    def _redispatch(self, route: JobRoute, exclude: set[str]) -> bool:
        """Send a route's envelope — with its *remaining* budget — to a
        ring survivor."""
        remaining = self._remaining_budget(route)
        if remaining is not None and remaining <= 0:
            self._fail_exhausted(route)
            return False
        target = self._assign(route.store_key, exclude=exclude)
        if target is None:
            with self._lock:
                route.parked = True
                route.worker_id = None
                self._parked.append(route.job_id)
            return False
        client = self._client(target)
        if client is None:
            with self._lock:
                route.parked = True
                route.worker_id = None
                self._parked.append(route.job_id)
            return False
        envelope = route.envelope
        if remaining is not None:
            # The successor receives only what is left of the original
            # budget; the route keeps the pristine envelope so a second
            # failover subtracts from the same anchor.
            envelope = dataclasses.replace(envelope, timeout=remaining)
        try:
            job = client.submit_envelope(envelope)
        except (ServiceError, OSError):
            with self._lock:
                route.parked = True
                route.worker_id = None
                self._parked.append(route.job_id)
            return False
        with self._lock:
            route.worker_id = target
            route.remote_id = job["id"]
            route.parked = False
            route.redispatches += 1
            self.redispatched_total += 1
        self.metrics.increment("fleet_redispatched")
        self.events.emit(
            "fleet.job.redispatched",
            job_id=route.job_id,
            worker_id=target,
            remote_id=job["id"],
            idempotency_key=route.envelope.idempotency_key,
        )
        return True

    def _drain_parked(self) -> None:
        """Retry parked routes once capacity returns."""
        while True:
            with self._lock:
                if not self._parked or not self._live_ids():
                    return
                job_id = self._parked.popleft()
                route = self._routes.get(job_id)
            if route is None or route.settled is not None or not route.parked:
                continue
            if not self._redispatch(route, exclude=set()):
                if route.settled is not None:
                    # Budget ran out while parked: the route failed,
                    # but the next parked job may still have time left.
                    continue
                return  # went straight back to the park queue; stop

    def _refresh_degradation(self) -> None:
        with self._lock:
            live = len(self._live_ids())
        degraded = live < self.size
        self.health.set_fleet_degraded(degraded)
        self.metrics.set_gauge("fleet_workers_live", float(live))
        self.metrics.set_gauge("fleet_workers_total", float(self.size))

    # -- routing -----------------------------------------------------------

    def _live_ids(self) -> set[str]:
        return {
            worker_id
            for worker_id, record in self._records.items()
            if record.state == "live"
        }

    def _assign(self, store_key: str, exclude: set[str]) -> str | None:
        with self._lock:
            dead = {
                worker_id
                for worker_id, record in self._records.items()
                if record.state != "live"
            }
        return self.ring.assign(store_key, exclude=dead | exclude)

    def _client(self, worker_id: str) -> ServiceClient | None:
        with self._lock:
            record = self._records.get(worker_id)
            if record is None or record.url is None:
                return None
            client = self._clients.get(worker_id)
            if client is None:
                client = self._clients[worker_id] = ServiceClient(
                    record.url, timeout=30.0
                )
            return client

    def missing_workers(self) -> int:
        with self._lock:
            return max(0, self.size - len(self._live_ids()))

    def dispatch(self, envelope: SubmitEnvelope, store_key: str) -> JobRoute:
        """Admit one submission into the fleet.

        Warm content short-circuits to the shared store; while degraded,
        work whose priority is below the number of missing workers is
        shed with an explicit retry hint (:class:`FleetShedError`);
        everything else routes to the consistent-hash owner of the
        job's content key.  Repeated idempotency keys return the
        original route — the fleet-level dedup window.
        """
        with self._lock:
            existing_id = self._by_idempotency.get(envelope.idempotency_key)
            if existing_id is not None:
                return self._routes[existing_id]
        if self.store.contains(store_key):
            route = JobRoute(
                job_id=f"fl-{envelope.idempotency_key[:12]}",
                worker_id=None,
                remote_id="",
                envelope=envelope,
                store_key=store_key,
                settled={
                    "state": "done",
                    "store_key": store_key,
                    "from_store": True,
                },
                admitted_at=self.clock(),
            )
            self._remember(route)
            self.metrics.increment("fleet_jobs_from_store")
            return route
        missing = self.missing_workers()
        if missing > 0 and envelope.priority < missing:
            retry_after = self.startup_grace if self.restart_dead else 30.0
            self.metrics.increment("fleet_jobs_shed")
            raise FleetShedError(envelope.priority, missing, retry_after)
        target = self._assign(store_key, exclude=set())
        if target is None:
            raise NoWorkersError()
        client = self._client(target)
        if client is None:
            raise NoWorkersError()
        job = client.submit_envelope(envelope)
        route = JobRoute(
            job_id=job["id"],
            worker_id=target,
            remote_id=job["id"],
            envelope=envelope,
            store_key=store_key,
            admitted_at=self.clock(),
        )
        self._remember(route)
        self.metrics.increment("fleet_jobs_routed")
        self.events.emit(
            "fleet.job.routed",
            job_id=route.job_id,
            worker_id=target,
            idempotency_key=envelope.idempotency_key,
        )
        return route

    def _remember(self, route: JobRoute) -> None:
        with self._lock:
            self._routes[route.job_id] = route
            if route.envelope.idempotency_key:
                self._by_idempotency[route.envelope.idempotency_key] = (
                    route.job_id
                )

    def route(self, job_id: str) -> JobRoute | None:
        with self._lock:
            return self._routes.get(job_id)

    def routes(self) -> list[JobRoute]:
        """Every accepted route (the chaos harness's post-mortem view)."""
        with self._lock:
            return list(self._routes.values())

    def route_for_key(self, idempotency_key: str) -> JobRoute | None:
        with self._lock:
            job_id = self._by_idempotency.get(idempotency_key)
            return self._routes.get(job_id) if job_id is not None else None

    # -- job views (what the front end serves) -----------------------------

    def _settled_doc(self, route: JobRoute) -> dict:
        settled = route.settled or {}
        return {
            "id": route.job_id,
            "kind": route.envelope.kind,
            "scenario": route.envelope.scenario,
            "quality": route.envelope.quality,
            "priority": route.envelope.priority,
            "state": settled.get("state", "done"),
            "error": settled.get("error"),
            "from_store": bool(settled.get("from_store")),
            "idempotency_key": route.envelope.idempotency_key,
            "fleet": {"worker": None, "redispatches": route.redispatches},
        }

    def job_doc(self, job_id: str) -> dict | None:
        """The job's status view, proxied to its owner when live."""
        route = self.route(job_id)
        if route is None:
            return None
        if route.settled is not None:
            return self._settled_doc(route)
        if route.parked or route.worker_id is None:
            return {
                "id": route.job_id,
                "kind": route.envelope.kind,
                "scenario": route.envelope.scenario,
                "state": "queued",
                "fleet": {"worker": None, "parked": True},
            }
        client = self._client(route.worker_id)
        if client is None:
            return {"id": route.job_id, "state": "queued", "fleet": {}}
        try:
            doc = client.status(route.remote_id)
        except (ServiceError, OSError):
            return {
                "id": route.job_id,
                "state": "queued",
                "fleet": {"worker": route.worker_id, "unreachable": True},
            }
        doc["id"] = route.job_id
        doc["fleet"] = {
            "worker": route.worker_id,
            "remote_id": route.remote_id,
            "redispatches": route.redispatches,
        }
        return doc

    def result_doc(self, job_id: str) -> tuple[int, dict] | None:
        """``(http_status, body)`` for ``GET /jobs/<id>/result``."""
        route = self.route(job_id)
        if route is None:
            return None
        if route.settled is not None:
            state = route.settled.get("state", "done")
            if state == "done":
                result = self.store.get(
                    route.settled.get("store_key") or route.store_key
                )
                if result is None:
                    return 500, {
                        "job": self._settled_doc(route),
                        "error": "settled result missing from the shared "
                        "store",
                    }
                return 200, {
                    "job": self._settled_doc(route),
                    "result": result,
                }
            if state == "cancelled":
                return 410, {
                    "job": self._settled_doc(route),
                    "error": "cancelled",
                }
            return 500, {
                "job": self._settled_doc(route),
                "error": route.settled.get("error") or "job failed",
            }
        if route.parked or route.worker_id is None:
            return 202, {"job": self.job_doc(job_id)}
        client = self._client(route.worker_id)
        if client is None:
            return 202, {"job": self.job_doc(job_id)}
        try:
            result = client.result(route.remote_id, wait=False)
        except TimeoutError:
            return 202, {"job": self.job_doc(job_id)}
        except ServiceError as exc:
            if exc.status in (410, 500):
                return exc.status, {
                    "job": self.job_doc(job_id),
                    "error": str(exc),
                }
            return 202, {"job": self.job_doc(job_id)}
        except OSError:
            return 202, {"job": self.job_doc(job_id)}
        return 200, {"job": self.job_doc(job_id), "result": result}

    def cancel(self, job_id: str) -> dict | None:
        route = self.route(job_id)
        if route is None:
            return None
        if route.settled is not None:
            return self._settled_doc(route)
        if route.worker_id is not None:
            client = self._client(route.worker_id)
            if client is not None:
                try:
                    doc = client.cancel(route.remote_id)
                    doc["id"] = route.job_id
                    return doc
                except (ServiceError, OSError):
                    pass
        route.settled = {"state": "cancelled"}
        route.parked = False
        return self._settled_doc(route)

    # -- fleet views -------------------------------------------------------

    def merged_metrics(self) -> RuntimeMetrics:
        """A fresh metrics instance folding every worker's latest
        telemetry blob (worker-labelled, via ``merge_worker_telemetry``)
        over the supervisor's own counters."""
        merged = RuntimeMetrics()
        merged.merge_snapshot(self.metrics.snapshot())
        with self._lock:
            blobs = [
                (record.worker_id, record.telemetry)
                for record in self._records.values()
                if record.telemetry is not None
            ]
        for worker_id, blob in blobs:
            try:
                snapshot = snapshot_from_dict(blob.get("metrics") or {})
            except (AttributeError, KeyError, TypeError, ValueError):
                merged.increment("worker_telemetry_dropped")
                continue
            telemetry = WorkerTelemetry(
                context=None,
                pid=int(blob.get("pid") or 0),
                spans=[],
                metrics=snapshot,
                events=[],
            )
            merge_worker_telemetry(telemetry, merged)
            merged.set_gauge(
                "fleet_worker_jobs_submitted",
                float(snapshot.counter("jobs_submitted")),
                worker=worker_id,
            )
        return merged

    def status(self) -> dict:
        """The ``efes fleet status`` / ``GET /fleet/status`` document."""
        with self._lock:
            workers = [
                record.snapshot() for record in self._records.values()
            ]
            routes = len(self._routes)
            parked = sum(
                1 for route in self._routes.values() if route.parked
            )
            settled = sum(
                1
                for route in self._routes.values()
                if route.settled is not None
            )
        live = sum(1 for worker in workers if worker["state"] == "live")
        return {
            "fleet_dir": str(self.fleet_dir),
            "size": self.size,
            "live": live,
            "degraded": live < self.size,
            "health": self.health.snapshot(),
            "control_port": self.control_port,
            "workers": sorted(workers, key=lambda w: w["worker_id"]),
            "jobs": {
                "routed": routes,
                "parked": parked,
                "supervisor_settled": settled,
                "redispatched": self.redispatched_total,
                "completed_from_store": self.completed_from_store_total,
            },
            "failovers": self.failovers_total,
        }
