"""Consistent hashing of job content keys onto fleet workers.

The fleet front end routes every submission by its report-store content
address (``job_key`` — the sha1 over scenario fingerprint, kind, and
quality), so repeated submissions of the same work land on the same
worker and hit that worker's warm caches.  A plain ``hash(key) % N``
would reshuffle almost every key when a worker dies; a **consistent
hash ring** with virtual nodes moves only ~1/N of the keyspace when the
fleet shrinks or grows by one worker, and spreads each worker's share
evenly around the ring.

The ring is deterministic — md5 over ``worker_id:replica`` — so the
supervisor, the chaos harness, and the serial oracle all compute the
same placement for the same fleet membership.
"""

from __future__ import annotations

import bisect
import hashlib
from collections.abc import Iterable

#: Virtual nodes per worker: enough to keep the share spread within a
#: few percent for small fleets without making ring rebuilds costly.
DEFAULT_REPLICAS = 64


def _ring_hash(value: str) -> int:
    return int.from_bytes(
        hashlib.md5(value.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """A consistent-hash ring over named workers."""

    def __init__(
        self,
        workers: Iterable[str] = (),
        *,
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be positive, got {replicas}")
        self.replicas = replicas
        self._workers: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for worker in workers:
            self.add(worker)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    @property
    def workers(self) -> list[str]:
        return sorted(self._workers)

    def add(self, worker: str) -> None:
        """Add a worker (idempotent); only ~1/N of keys move to it."""
        if worker in self._workers:
            return
        self._workers.add(worker)
        for replica in range(self.replicas):
            point = (_ring_hash(f"{worker}:{replica}"), worker)
            bisect.insort(self._points, point)

    def remove(self, worker: str) -> None:
        """Remove a worker (idempotent); its keys fall to ring successors."""
        if worker not in self._workers:
            return
        self._workers.discard(worker)
        self._points = [
            point for point in self._points if point[1] != worker
        ]

    def assign(self, key: str, exclude: set[str] | None = None) -> str | None:
        """The worker owning ``key``: the first ring point at or after
        the key's hash, skipping ``exclude``d (dead/draining) workers.

        Walking the ring instead of rehashing keeps the failover
        placement deterministic: every key of a dead worker falls to
        that key's ring successor, not to an arbitrary survivor.
        Returns ``None`` when no eligible worker remains.
        """
        exclude = exclude or set()
        if not self._points or not (self._workers - exclude):
            return None
        position = bisect.bisect_left(
            self._points, (_ring_hash(key), "")
        )
        for offset in range(len(self._points)):
            _, worker = self._points[
                (position + offset) % len(self._points)
            ]
            if worker not in exclude:
                return worker
        return None
