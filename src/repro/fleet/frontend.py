"""The fleet's HTTP front door: one address, N workers behind it.

Mirrors the single-service API (clients built for ``efes serve`` work
unchanged) and adds the fleet resources::

    POST   /jobs             route by content key to the owning worker
                             (shared-store hits answered directly;
                             degraded fleets shed low-priority work
                             with 503 + Retry-After)
    GET    /jobs/<id>        proxied status (+ ``fleet`` placement doc)
    GET    /jobs/<id>/result proxied / store-served result
    DELETE /jobs/<id>        proxied cancel
    GET    /healthz          fleet health: per-worker liveness, epochs,
                             the ``fleet-degraded`` state
    GET    /metrics          merged worker-labelled metrics (JSON or
                             Prometheus text)
    GET    /fleet/status     the supervisor's full status document

The front end holds no job state of its own — the supervisor's routing
table is the source of truth — so a front-end restart loses nothing a
client cannot re-derive with its idempotency key.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
import uuid
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..observability import prometheus_text
from ..scenarios import (
    UnknownScenarioError,
    resolve_scenario,
    scenario_catalogue,
)
from ..service import SubmitEnvelope
from ..service.client import ServiceError
from ..service.store import job_key
from .supervisor import FleetShedError, FleetSupervisor, NoWorkersError


class FleetServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`FleetSupervisor`."""

    daemon_threads = True

    def __init__(self, address, supervisor: FleetSupervisor) -> None:
        super().__init__(address, FleetHandler)
        self.supervisor = supervisor
        self._scenario_cache: dict[tuple[str, int], object] = {}
        self._scenario_lock = threading.Lock()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def resolve_scenario(self, name: str, seed: int):
        with self._scenario_lock:
            cached = self._scenario_cache.get((name, seed))
        if cached is not None:
            return cached
        # Warm the whole catalogue for this seed on the first miss (one
        # build amortised over every name), mirroring the single-service
        # server's cache behaviour.
        catalogue = scenario_catalogue(seed)
        with self._scenario_lock:
            for entry_name, entry in catalogue.items():
                self._scenario_cache.setdefault((entry_name, seed), entry)
        if name in catalogue:
            return catalogue[name]
        scenario = resolve_scenario(name, seed)
        with self._scenario_lock:
            self._scenario_cache[(name, seed)] = scenario
        return scenario


class FleetHandler(BaseHTTPRequestHandler):
    server_version = "repro-fleet/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def supervisor(self) -> FleetSupervisor:
        return self.server.supervisor

    # -- plumbing ---------------------------------------------------------

    def _send_json(self, status: int, doc: dict, headers: dict | None = None):
        body = json.dumps(doc, ensure_ascii=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        raw = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _segments(self) -> list[str]:
        path = self.path.split("?", 1)[0]
        return [segment for segment in path.split("/") if segment]

    def _query(self) -> dict[str, str]:
        parts = self.path.split("?", 1)
        if len(parts) < 2:
            return {}
        return {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(parts[1]).items()
        }

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        segments = self._segments()
        if segments == ["healthz"]:
            self._get_healthz()
            return
        if segments == ["metrics"]:
            self._get_metrics()
            return
        if segments == ["fleet", "status"]:
            self._send_json(200, self.supervisor.status())
            return
        if len(segments) == 2 and segments[0] == "jobs":
            doc = self.supervisor.job_doc(segments[1])
            if doc is None:
                self._send_json(404, {"error": f"unknown job {segments[1]!r}"})
            else:
                self._send_json(200, {"job": doc})
            return
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "result"
        ):
            answer = self.supervisor.result_doc(segments[1])
            if answer is None:
                self._send_json(404, {"error": f"unknown job {segments[1]!r}"})
            else:
                self._send_json(answer[0], answer[1])
            return
        self._send_json(404, {"error": f"no such resource: {self.path}"})

    def _get_healthz(self) -> None:
        status = self.supervisor.status()
        health = status["health"]
        self._send_json(
            200,
            {
                "status": "ok" if not status["degraded"] else "degraded",
                "health": health,
                "fleet": {
                    "size": status["size"],
                    "live": status["live"],
                    "degraded": status["degraded"],
                    "failovers": status["failovers"],
                },
                "workers": [
                    {
                        "worker_id": worker["worker_id"],
                        "state": worker["state"],
                        "epoch": worker["epoch"],
                        "beats": worker["beats"],
                        "last_seen": worker["last_seen"],
                    }
                    for worker in status["workers"]
                ],
            },
        )

    def _get_metrics(self) -> None:
        merged = self.supervisor.merged_metrics()
        snapshot = merged.snapshot()
        status = self.supervisor.status()
        accept = self.headers.get("Accept", "")
        wants_text = (
            "text/plain" in accept
            or self._query().get("format") == "prometheus"
        )
        if wants_text:
            gauges = {
                "fleet_size": float(status["size"]),
                "fleet_live": float(status["live"]),
                "fleet_failovers_total": float(status["failovers"]),
            }
            self._send_text(
                200,
                prometheus_text(snapshot, extra_gauges=gauges),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        self._send_json(200, {**snapshot.to_dict(), "fleet": status["jobs"]})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self._segments() != ["jobs"]:
            self._send_json(404, {"error": f"no such resource: {self.path}"})
            return
        try:
            body = self._read_body()
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        name = body.get("scenario")
        if not name:
            self._send_json(400, {"error": "missing required field 'scenario'"})
            return
        try:
            seed = int(body.get("seed", 1))
            scenario = self.server.resolve_scenario(str(name), seed)
            kind = str(body.get("kind", "estimate"))
            # Normalise exactly like the workers' scheduler does, or the
            # front end and the worker would compute different content
            # keys for the same job.
            quality = (
                "low_effort"
                if body.get("quality") in ("low", "low_effort")
                else "high_quality"
            )
            timeout = body.get("timeout")
            if timeout is None:
                # Same contract as the worker HTTP API: the client's
                # X-Deadline-Ms header is the execution budget unless
                # the body names a timeout explicitly.
                deadline_ms = self.headers.get("X-Deadline-Ms")
                if deadline_ms is not None:
                    timeout = float(deadline_ms) / 1000.0
            envelope = SubmitEnvelope(
                scenario=str(name),
                kind=kind,
                quality=quality if kind == "estimate" else None,
                priority=int(body.get("priority", 0)),
                timeout=timeout,
                seed=seed,
                correlation_id=(
                    body.get("correlation_id")
                    or self.headers.get("X-Correlation-ID")
                ),
                idempotency_key=(
                    body.get("idempotency_key")
                    or self.headers.get("Idempotency-Key")
                    or uuid.uuid4().hex
                ),
            )
            store_key = job_key(
                scenario,
                kind,
                envelope.quality if kind == "estimate" else None,
            )
            route = self.supervisor.dispatch(envelope, store_key)
        except UnknownScenarioError as exc:
            self._send_json(404, {"error": str(exc)})
        except FleetShedError as exc:
            # Shed = backpressure: the body carries ``retry_after`` so
            # clients classify it exactly like queue saturation.
            self._send_json(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
        except NoWorkersError as exc:
            self._send_json(
                503,
                {"error": str(exc)},
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
        except (ServiceError, OSError) as exc:
            self._send_json(503, {"error": f"fleet dispatch failed: {exc}"})
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
        else:
            doc = self.supervisor.job_doc(route.job_id) or {
                "id": route.job_id,
                "state": "queued",
            }
            self._send_json(202, {"job": doc})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        segments = self._segments()
        if len(segments) != 2 or segments[0] != "jobs":
            self._send_json(404, {"error": f"no such resource: {self.path}"})
            return
        doc = self.supervisor.cancel(segments[1])
        if doc is None:
            self._send_json(404, {"error": f"unknown job {segments[1]!r}"})
            return
        self._send_json(200, {"job": doc})


def make_fleet_server(
    supervisor: FleetSupervisor,
    host: str = "127.0.0.1",
    port: int = 0,
) -> FleetServer:
    """Bind a fleet front end; ``port=0`` picks an ephemeral port."""
    return FleetServer((host, port), supervisor)
