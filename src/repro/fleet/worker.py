"""One fleet worker process: a full assessment service + a heartbeat.

``python -m repro.fleet.worker --id w0 --epoch 1 --fleet-dir D
--control-port P`` builds the same stack ``efes serve`` runs — a
:class:`~repro.service.JobScheduler` over its **own**
:class:`~repro.durability.JobJournal` segment directory
(``<fleet-dir>/workers/<id>/journal``) and the fleet's **shared**
read-through :class:`~repro.service.ReportStore` spool
(``<fleet-dir>/spool``) — serves it on an ephemeral HTTP port, then
dials the supervisor's control socket and announces itself.

The journal split is the exactly-once foundation: each worker owns its
write-ahead log exclusively, so the supervisor can fence a dead
worker's journal (rename — atomic, and the kill preceding it guarantees
no straggling append) and replay it read-only without coordinating with
anything.  The shared spool makes results fleet-global: any worker
serves any warm result, and a re-dispatched job whose first execution
already spooled its document settles from the store instead of running
twice.

Lifecycle: heartbeats carry queue/health status every beat and a full
metrics snapshot every few beats; SIGTERM (or the control connection
closing — the supervisor's "you are fenced, die") drains gracefully.
``--drop-heartbeats-after N`` is the chaos hook: the worker keeps
serving but goes silent on the control plane, exercising the
supervisor's liveness deadline against a *live* worker.
"""

from __future__ import annotations

import argparse
import os
import signal
import socket
import sys
import threading
from pathlib import Path

from ..durability import FlushPolicy, JobJournal
from ..runtime import BACKEND_ENV_VAR, Runtime
from ..service import JobScheduler, ReportStore, make_server
from .protocol import (
    MessageReader,
    goodbye_message,
    heartbeat_message,
    hello_message,
    send_message,
)

#: Default heartbeat cadence (seconds); the supervisor's liveness
#: deadline defaults to several multiples of this.
DEFAULT_HEARTBEAT_INTERVAL = 0.5

#: A full metrics snapshot rides every Nth heartbeat (status rides all).
TELEMETRY_EVERY = 4


def worker_dirs(fleet_dir: str | Path, worker_id: str) -> tuple[Path, Path]:
    """``(journal_dir, shared_spool_dir)`` for one worker of a fleet."""
    root = Path(fleet_dir)
    return root / "workers" / worker_id / "journal", root / "spool"


class FleetWorker:
    """The in-process half of a worker: stack + control-plane client."""

    def __init__(
        self,
        worker_id: str,
        epoch: int,
        fleet_dir: str | Path,
        control_port: int,
        *,
        control_host: str = "127.0.0.1",
        job_workers: int = 2,
        queue_size: int = 64,
        heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
        telemetry_every: int = TELEMETRY_EVERY,
        drop_heartbeats_after: int | None = None,
        journal_fsync: str = "batch",
    ) -> None:
        self.worker_id = worker_id
        self.epoch = epoch
        self.fleet_dir = Path(fleet_dir)
        self.control_host = control_host
        self.control_port = control_port
        self.heartbeat_interval = heartbeat_interval
        self.telemetry_every = max(1, telemetry_every)
        self.drop_heartbeats_after = drop_heartbeats_after
        journal_dir, spool_dir = worker_dirs(self.fleet_dir, worker_id)
        self.runtime = Runtime(
            backend=os.environ.get(BACKEND_ENV_VAR, "serial")
        )
        self.store = ReportStore(
            directory=spool_dir, metrics=self.runtime.metrics
        )
        self.journal = JobJournal(
            journal_dir,
            flush=FlushPolicy.parse(journal_fsync),
            metrics=self.runtime.metrics,
        )
        self.scheduler = JobScheduler(
            runtime=self.runtime,
            store=self.store,
            workers=job_workers,
            max_queue=queue_size,
            journal=self.journal,
        )
        self.server = make_server(self.scheduler, host="127.0.0.1", port=0)
        self.http_port = self.server.server_address[1]
        self._stop = threading.Event()
        self._sock: socket.socket | None = None
        self._beats = 0

    # -- control plane -----------------------------------------------------

    def connect(self) -> None:
        self._sock = socket.create_connection(
            (self.control_host, self.control_port), timeout=10.0
        )
        send_message(
            self._sock,
            hello_message(
                self.worker_id, self.epoch, os.getpid(), self.http_port
            ),
        )
        # The supervisor closing this connection is an order to die:
        # either it is gone (orphaned workers must not linger) or this
        # epoch was fenced and a successor owns the journal name.
        watcher = threading.Thread(
            target=self._watch_control, name="fleet-control-watch", daemon=True
        )
        watcher.start()

    def _watch_control(self) -> None:
        reader = MessageReader(self._sock)
        while reader.read() is not None:
            pass  # the supervisor sends nothing today; EOF is the signal
        self._stop.set()

    def _status(self) -> dict:
        stats = self.scheduler.stats()
        return {
            "state": self.scheduler.health.state.value,
            "queue_depth": stats["queue_depth"],
            "running": stats["running"],
            "completed_jobs": stats["completed_jobs"],
            "open": stats["open"],
        }

    def _telemetry(self) -> dict:
        return {
            "pid": os.getpid(),
            "metrics": self.runtime.metrics.snapshot().to_dict(),
        }

    def heartbeat_loop(self) -> None:
        """Send heartbeats until stopped; silent after the drop point."""
        while not self._stop.wait(self.heartbeat_interval):
            self._beats += 1
            if (
                self.drop_heartbeats_after is not None
                and self._beats > self.drop_heartbeats_after
            ):
                continue  # chaos: alive but mute on the control plane
            telemetry = (
                self._telemetry()
                if self._beats % self.telemetry_every == 0
                else None
            )
            try:
                send_message(
                    self._sock,
                    heartbeat_message(
                        self.worker_id,
                        self.epoch,
                        self._beats,
                        status=self._status(),
                        telemetry=telemetry,
                    ),
                )
            except OSError:
                self._stop.set()  # control plane gone: shut down

    # -- lifecycle ---------------------------------------------------------

    def serve(self) -> int:
        """Run until SIGTERM / control-plane EOF; drain; exit 0."""
        http_thread = threading.Thread(
            target=self.server.serve_forever,
            name="fleet-worker-http",
            daemon=True,
        )
        http_thread.start()
        self.connect()
        self.heartbeat_loop()
        return self.shutdown()

    def stop(self) -> None:
        self._stop.set()

    def shutdown(self) -> int:
        if self._sock is not None:
            try:
                send_message(
                    self._sock,
                    goodbye_message(self.worker_id, self.epoch),
                )
                self._sock.close()
            except OSError:
                pass
        self.server.shutdown()
        self.server.server_close()
        self.scheduler.close(wait=True, timeout=5.0)
        self.runtime.close()
        return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.fleet.worker")
    parser.add_argument("--id", dest="worker_id", required=True)
    parser.add_argument("--epoch", type=int, required=True)
    parser.add_argument("--fleet-dir", required=True)
    parser.add_argument("--control-port", type=int, required=True)
    parser.add_argument("--control-host", default="127.0.0.1")
    parser.add_argument("--job-workers", type=int, default=2)
    parser.add_argument("--queue-size", type=int, default=64)
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=DEFAULT_HEARTBEAT_INTERVAL,
    )
    parser.add_argument(
        "--drop-heartbeats-after",
        type=int,
        default=None,
        help="chaos hook: go silent on the control plane after N beats "
        "while continuing to serve jobs",
    )
    parser.add_argument("--journal-fsync", default="batch")
    args = parser.parse_args(argv)
    worker = FleetWorker(
        args.worker_id,
        args.epoch,
        args.fleet_dir,
        args.control_port,
        control_host=args.control_host,
        job_workers=args.job_workers,
        queue_size=args.queue_size,
        heartbeat_interval=args.heartbeat_interval,
        drop_heartbeats_after=args.drop_heartbeats_after,
        journal_fsync=args.journal_fsync,
    )
    signal.signal(signal.SIGTERM, lambda signum, frame: worker.stop())
    print(
        f"fleet worker {args.worker_id} epoch {args.epoch} "
        f"pid {os.getpid()} serving on 127.0.0.1:{worker.http_port}",
        flush=True,
    )
    return worker.serve()


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
