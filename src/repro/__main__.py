"""``python -m repro`` — the CLI without the console-script install."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
