"""Effort-calculation functions and execution settings (Sections 3.4, 6.1).

"Once the list of tasks has been determined, the effort for their
execution is computed.  For this purpose, the user specifies in advance
for each task type an effort-calculation function that can incorporate
task parameters."  :func:`default_execution_settings` reproduces Table 9
verbatim; :class:`ExecutionSettings` makes every function replaceable,
which is how the framework models tool availability, practitioner
expertise, and error criticality (Examples 3.6, 3.8).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Callable, Mapping

from .quality import ResultQuality
from .tasks import Task, TaskCategory, TaskType

EffortFunction = Callable[[Task], float]


def constant(minutes: float) -> EffortFunction:
    """A fixed cost independent of the task parameters (one SQL script)."""

    def function(task: Task) -> float:
        return minutes

    function.__name__ = f"constant_{minutes}"
    return function


def per_unit(minutes_per_unit: float, parameter: str) -> EffortFunction:
    """``minutes_per_unit · task.parameters[parameter]``."""

    def function(task: Task) -> float:
        return minutes_per_unit * task.parameter(parameter)

    function.__name__ = f"per_{parameter}_{minutes_per_unit}"
    return function


def linear(
    base: float = 0.0, **coefficients: float
) -> EffortFunction:
    """``base + Σ coefficient · parameter`` over the given parameters."""

    def function(task: Task) -> float:
        total = base
        for parameter, coefficient in coefficients.items():
            total += coefficient * task.parameter(parameter)
        return total

    function.__name__ = "linear"
    return function


def threshold_per_unit(
    parameter: str,
    threshold: float,
    below: float,
    per_unit_above: float,
) -> EffortFunction:
    """Table 9's Convert-values shape: a flat cost below a distinct-count
    threshold (one conversion script covers everything), per-unit above."""

    def function(task: Task) -> float:
        count = task.parameter(parameter)
        if count < threshold:
            return below
        return per_unit_above * count

    function.__name__ = f"threshold_{parameter}"
    return function


class ExecutionSettings:
    """The execution-settings half of the effort estimation (Section 3.4).

    Maps every task type to an effort-calculation function.  ``scale`` is a
    global multiplier used by cross-domain calibration (Section 6.2); the
    remaining knobs (``tooling``) let callers swap individual functions,
    e.g. replacing manual SQL mapping with a mapping tool (Example 3.8).
    """

    def __init__(
        self,
        functions: Mapping[TaskType, EffortFunction],
        scale: float = 1.0,
        name: str = "custom",
    ) -> None:
        self._functions = dict(functions)
        self.scale = scale
        self.name = name

    def function_for(self, task_type: TaskType) -> EffortFunction:
        try:
            return self._functions[task_type]
        except KeyError:
            raise KeyError(
                f"no effort-calculation function configured for task type "
                f"{task_type!r}"
            ) from None

    def effort_of(self, task: Task) -> float:
        """The estimated minutes for one task."""
        return self.scale * self.function_for(task.type)(task)

    def with_function(
        self, task_type: TaskType, function: EffortFunction
    ) -> "ExecutionSettings":
        functions = dict(self._functions)
        functions[task_type] = function
        return ExecutionSettings(functions, scale=self.scale, name=self.name)

    def with_scale(self, scale: float) -> "ExecutionSettings":
        return ExecutionSettings(self._functions, scale=scale, name=self.name)

    @property
    def task_types(self) -> tuple[TaskType, ...]:
        return tuple(self._functions)


def default_execution_settings() -> ExecutionSettings:
    """Table 9 — the effort-calculation functions of the experiments.

    The setting models a practitioner who writes SQL by hand in a basic
    admin tool and has not seen the data before (Section 6.1).  Merge
    values is not priced in Table 9 (an omission of the paper); Table 5
    implies a flat scripted cost of 15 minutes, which is used here.
    """
    functions: dict[TaskType, EffortFunction] = {
        TaskType.AGGREGATE_VALUES: per_unit(3.0, "repetitions"),
        # Converting is scripted per distinct *representation* (text
        # pattern) to handle, not per distinct value: that is the only
        # reading under which Table 9's function reproduces the 15-minute
        # Convert-values totals of Tables 5 and 8 (see EXPERIMENTS.md).
        TaskType.CONVERT_VALUES: threshold_per_unit(
            "representations", threshold=120, below=15.0, per_unit_above=0.25
        ),
        TaskType.GENERALIZE_VALUES: per_unit(0.5, "distinct_values"),
        TaskType.REFINE_VALUES: per_unit(0.5, "values"),
        TaskType.DROP_VALUES: constant(10.0),
        TaskType.ADD_VALUES: per_unit(2.0, "values"),
        TaskType.CREATE_ENCLOSING_TUPLES: constant(10.0),
        TaskType.DROP_DETACHED_VALUES: constant(0.0),
        TaskType.REJECT_TUPLES: constant(5.0),
        TaskType.KEEP_ANY_VALUE: constant(5.0),
        TaskType.ADD_TUPLES: constant(5.0),
        TaskType.AGGREGATE_TUPLES: constant(5.0),
        TaskType.DELETE_DANGLING_VALUES: constant(5.0),
        TaskType.ADD_REFERENCED_VALUES: constant(5.0),
        TaskType.DELETE_DANGLING_TUPLES: constant(5.0),
        TaskType.UNLINK_ALL_BUT_ONE_TUPLE: constant(5.0),
        TaskType.SET_VALUES_TO_NULL: constant(5.0),
        TaskType.MERGE_VALUES: constant(15.0),
        TaskType.ADD_MISSING_VALUES: per_unit(2.0, "values"),
        TaskType.WRITE_MAPPING: linear(
            foreign_keys=3.0, primary_keys=3.0, attributes=1.0, tables=3.0
        ),
    }
    return ExecutionSettings(functions, name="manual-sql")


def tool_assisted_settings() -> ExecutionSettings:
    """Execution settings with a second-generation mapping tool [18].

    Example 3.8: "if a tool can generate this mapping automatically based
    on the correspondences, then a constant value, such as effort = 2 mins,
    can reflect this circumstance."
    """
    return default_execution_settings().with_function(
        TaskType.WRITE_MAPPING, constant(2.0)
    )


@dataclasses.dataclass(frozen=True)
class TaskEffort:
    """One task with its estimated effort in minutes."""

    task: Task
    minutes: float


@dataclasses.dataclass
class EffortEstimate:
    """A full effort estimate: per-task efforts plus breakdown totals.

    This is the deliverable of the second EFES phase — "instead of just
    delivering a final effort value, our effort estimate is broken down
    according to its underlying tasks" (Section 3.4).
    """

    scenario_name: str
    quality: ResultQuality
    entries: list[TaskEffort]

    @property
    def total_minutes(self) -> float:
        return sum(entry.minutes for entry in self.entries)

    def by_category(self) -> dict[TaskCategory, float]:
        totals = {category: 0.0 for category in TaskCategory}
        for entry in self.entries:
            totals[entry.task.category] += entry.minutes
        return totals

    def by_task_type(self) -> dict[TaskType, float]:
        totals: dict[TaskType, float] = {}
        for entry in self.entries:
            totals[entry.task.type] = (
                totals.get(entry.task.type, 0.0) + entry.minutes
            )
        return totals

    def mapping_minutes(self) -> float:
        return self.by_category()[TaskCategory.MAPPING]

    def cleaning_minutes(self) -> float:
        categories = self.by_category()
        return (
            categories[TaskCategory.CLEANING_STRUCTURE]
            + categories[TaskCategory.CLEANING_VALUES]
        )


def price_tasks(
    scenario_name: str,
    quality: ResultQuality,
    tasks: list[Task],
    settings: ExecutionSettings,
) -> EffortEstimate:
    """Apply the effort-calculation functions to a planned task list."""
    entries = [TaskEffort(task, settings.effort_of(task)) for task in tasks]
    return EffortEstimate(scenario_name, quality, entries)
