"""The EFES framework (Section 3): modules, assessment, estimation.

EFES "handles different kinds of integration challenges by accepting a
dedicated estimation module to cope with each of them independently".  A
module couples a *data complexity detector* with a *task planner*
(Figure 3); the framework runs all detectors (phase 1, complexity
assessment), all planners (phase 2 input), and prices the resulting tasks
with the execution settings' effort-calculation functions (phase 2, effort
estimation).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

import time

from ..observability import Span, Tracer, tracing
from ..resilience import DegradedResult, format_exception, split_degraded
from ..runtime import Runtime, RuntimeMetrics, get_runtime
from ..runtime.deadline import checkpoint as deadline_checkpoint
from ..scenarios.scenario import IntegrationScenario
from .effort import (
    EffortEstimate,
    ExecutionSettings,
    default_execution_settings,
    price_tasks,
)
from .quality import ResultQuality
from .reports import ComplexityReport
from .tasks import Task


class EstimationModule:
    """One estimation module = complexity detector + task planner."""

    #: Stable module identifier (used as report key and task provenance).
    name: str = "module"

    def assess(self, scenario: IntegrationScenario) -> ComplexityReport:
        """Phase 1: extract complexity indicators into a report."""
        raise NotImplementedError

    def plan(
        self,
        scenario: IntegrationScenario,
        report: ComplexityReport,
        quality: ResultQuality,
    ) -> list[Task]:
        """Phase 2 input: derive tasks that overcome the reported issues."""
        raise NotImplementedError


class TaskAdjustment:
    """A user revision of the proposed task list (Section 6.1).

    "If a data complexity aspect was properly recognized but we preferred
    a different integration task, we have adapted the proposed tasks" —
    e.g. swapping *Add missing values* for *Reject tuples* when the
    missing FreeDB disc IDs cannot possibly be provided.  An adjustment is
    a callable mapping the proposed task list to the revised one.
    """

    def __call__(self, tasks: list[Task]) -> list[Task]:  # pragma: no cover
        raise NotImplementedError


@dataclasses.dataclass
class AssessmentOutcome:
    """Everything one full pipeline run produces, kept together.

    The assessment service stores/ships this as one document: the phase-1
    reports plus the phase-2 estimate (whose entries carry the planned
    task list).  ``quality`` is the estimate's expected result quality.
    """

    scenario_name: str
    quality: ResultQuality
    reports: dict[str, ComplexityReport]
    estimate: EffortEstimate
    #: Root span of the traced run (``Efes.run(..., trace=True)``), else
    #: ``None``; serialisable via :func:`repro.core.serialize.span_to_dict`.
    trace: Span | None = None
    #: Modules whose detector or planner failed during a non-strict run;
    #: empty on a fully successful pipeline.  A non-empty list means
    #: ``reports``/``estimate`` are *partial* — usable, but missing the
    #: named modules' contributions.
    degradations: list[DegradedResult] = dataclasses.field(
        default_factory=list
    )

    @property
    def tasks(self) -> list[Task]:
        return [entry.task for entry in self.estimate.entries]

    @property
    def is_degraded(self) -> bool:
        return bool(self.degradations)


class Efes:
    """The effort estimation framework.

    Assemble with any set of modules; the three shipped ones are in
    :func:`repro.core.default_modules`.
    """

    def __init__(
        self,
        modules: Sequence[EstimationModule],
        settings: ExecutionSettings | None = None,
        runtime: Runtime | None = None,
        strict: bool | None = None,
    ) -> None:
        names = [module.name for module in modules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate module names: {names}")
        self.modules = list(modules)
        self.settings = settings or default_execution_settings()
        #: Optional dedicated runtime; ``None`` resolves to the active
        #: process runtime at call time (see :mod:`repro.runtime`).
        self.runtime = runtime
        #: Failure policy: ``True`` = fail-fast everywhere, ``False`` =
        #: degrade everywhere, ``None`` (default) = fail-fast for the
        #: fine-grained entry points (``assess``/``plan``/``estimate``,
        #: the historical contract) but graceful degradation for the
        #: deliverable-producing :meth:`run`.
        self.strict = strict

    def _resolve_runtime(self) -> Runtime:
        return self.runtime if self.runtime is not None else get_runtime()

    def _strictness(self, override: bool | None, default: bool) -> bool:
        if override is not None:
            return override
        if self.strict is not None:
            return self.strict
        return default

    @property
    def metrics(self) -> RuntimeMetrics:
        """The instrumentation of the runtime this framework executes on."""
        return self._resolve_runtime().metrics

    # ------------------------------------------------------------------
    # Phase 1: complexity assessment
    # ------------------------------------------------------------------

    def assess(
        self, scenario: IntegrationScenario, strict: bool | None = None
    ) -> dict[str, ComplexityReport]:
        """Run every module's detector; returns reports keyed by module.

        Detectors run concurrently on the runtime's executor; the report
        dict is ordered by module declaration order regardless of task
        completion order.  In strict mode (the default here) a failing
        detector's exception propagates; with ``strict=False`` the failed
        module's slot holds a :class:`~repro.resilience.DegradedResult`
        instead and the other reports survive.
        """
        on_error = (
            "raise" if self._strictness(strict, default=True) else "degrade"
        )
        return self._resolve_runtime().run_detectors(
            self.modules, scenario, on_error=on_error
        )

    # ------------------------------------------------------------------
    # Phase 2: effort estimation
    # ------------------------------------------------------------------

    def plan(
        self,
        scenario: IntegrationScenario,
        quality: ResultQuality,
        reports: dict[str, ComplexityReport] | None = None,
        strict: bool | None = None,
        degradations: list[DegradedResult] | None = None,
    ) -> list[Task]:
        """Run every module's planner on its report; concatenated tasks.

        In strict mode (default) a missing report raises ``KeyError`` and
        a failing planner propagates.  With ``strict=False`` degraded or
        missing modules are skipped and a planner failure becomes a
        :class:`~repro.resilience.DegradedResult` — appended to the
        ``degradations`` accumulator when the caller provides one, along
        with any assess-phase tombstones found in ``reports``.
        """
        strict_mode = self._strictness(strict, default=True)
        runtime = self._resolve_runtime()
        if reports is None:
            reports = self.assess(scenario, strict=strict_mode)
        tasks: list[Task] = []
        with runtime.activated(), tracing.span("plan"), \
                runtime.metrics.time_stage("plan"):
            for module in self.modules:
                report = (
                    reports[module.name]
                    if strict_mode
                    else reports.get(module.name)
                )
                if isinstance(report, DegradedResult):
                    # The detector already failed; its tombstone belongs
                    # to the caller's degradation record.
                    if degradations is not None:
                        degradations.append(report)
                    continue
                if report is None:
                    continue  # non-strict: module absent, nothing to plan
                with tracing.span(f"planner:{module.name}") as span:
                    started = time.perf_counter()
                    try:
                        # Past a deadline this raises per planner, so each
                        # unrun module tombstones (non-strict) and the
                        # surviving tasks still get priced — the partial
                        # estimate a timed-out job settles with.
                        deadline_checkpoint("planner", module=module.name)
                        planned = module.plan(scenario, report, quality)
                    except Exception as exc:  # noqa: BLE001 - degradation
                        if strict_mode:
                            raise
                        error = format_exception(exc)
                        span.set_attribute("error", error)
                        runtime.metrics.increment("degraded_total")
                        runtime.metrics.increment("planners_degraded")
                        if degradations is not None:
                            degradations.append(
                                DegradedResult(
                                    module=module.name,
                                    phase="plan",
                                    error=error,
                                    elapsed_seconds=(
                                        time.perf_counter() - started
                                    ),
                                    scenario=scenario.name,
                                )
                            )
                        continue
                tasks.extend(planned)
        return tasks

    def estimate(
        self,
        scenario: IntegrationScenario,
        quality: ResultQuality,
        adjustments: Iterable[TaskAdjustment] = (),
        reports: dict[str, ComplexityReport] | None = None,
        strict: bool | None = None,
        degradations: list[DegradedResult] | None = None,
    ) -> EffortEstimate:
        """The full pipeline: assess → plan → (adjust) → price.

        Callers that already hold complexity reports (e.g. when pricing
        several qualities of the same scenario) pass them via ``reports``
        and the assessment phase is skipped entirely — the detectors run
        exactly once per scenario, not once per estimate.  ``strict`` and
        ``degradations`` flow through to :meth:`plan`; a degraded
        estimate prices only the surviving modules' tasks.
        """
        runtime = self._resolve_runtime()
        runtime.metrics.increment("estimates")
        with tracing.span("estimate", scenario=scenario.name):
            tasks = self.plan(
                scenario,
                quality,
                reports=reports,
                strict=strict,
                degradations=degradations,
            )
            for adjustment in adjustments:
                tasks = adjustment(tasks)
            with tracing.span("price"), runtime.metrics.time_stage("price"):
                return price_tasks(
                    scenario.name, quality, tasks, self.settings
                )

    def run(
        self,
        scenario: IntegrationScenario,
        quality: ResultQuality,
        adjustments: Iterable[TaskAdjustment] = (),
        trace: bool = False,
        strict: bool | None = None,
    ) -> AssessmentOutcome:
        """Both phases as one deliverable: reports + tasks + estimate.

        This is the unit of work the assessment service executes and
        stores; :func:`repro.core.serialize` round-trips every part.
        With ``trace=True`` the whole run executes under a fresh
        :class:`~repro.observability.Tracer` and the outcome carries the
        completed root span (``run:<scenario>``) — detectors, profiling,
        planning, and pricing appear as its descendants.

        Unless ``strict`` resolves to ``True``, a failing detector or
        planner no longer aborts the run: the failed module is skipped,
        recorded on ``outcome.degradations``, counted on the runtime's
        ``degraded_total``, and annotated on its span — the returned
        outcome covers every module that survived.

        Scenarios loaded leniently from disk may carry ``phase="load"``
        tombstones (``scenario.load_degradations``, see
        :func:`repro.scenarios.io.load_scenario`): malformed relation
        CSVs that loaded empty.  Those merge into the outcome's
        ``degradations`` too — and under strict mode the first one is
        upgraded back to a :class:`~repro.scenarios.io.ScenarioFormatError`.
        """
        strict_mode = self._strictness(strict, default=False)
        load_degraded = list(getattr(scenario, "load_degradations", ()) or ())
        if load_degraded and strict_mode:
            from ..scenarios.io import ScenarioFormatError

            raise ScenarioFormatError(load_degraded[0].error)

        def execute() -> AssessmentOutcome:
            degradations: list[DegradedResult] = list(load_degraded)
            if load_degraded:
                runtime = self._resolve_runtime()
                runtime.metrics.increment(
                    "degraded_total", len(load_degraded)
                )
                runtime.metrics.increment(
                    "loads_degraded", len(load_degraded)
                )
            reports = self.assess(scenario, strict=strict_mode)
            clean_reports, assess_degraded = split_degraded(reports)
            degradations.extend(assess_degraded)
            estimate = self.estimate(
                scenario,
                quality,
                adjustments=adjustments,
                reports=clean_reports,
                strict=strict_mode,
                degradations=degradations,
            )
            return AssessmentOutcome(
                scenario.name,
                quality,
                clean_reports,
                estimate,
                degradations=degradations,
            )

        if not trace:
            return execute()
        tracer = Tracer()
        with tracer.activated(), tracing.span(
            f"run:{scenario.name}", quality=quality.value
        ) as root_span:
            outcome = execute()
            if outcome.degradations:
                root_span.set_attribute(
                    "degraded", len(outcome.degradations)
                )
        outcome.trace = tracer.root
        return outcome

    def with_settings(self, settings: ExecutionSettings) -> "Efes":
        return Efes(
            self.modules, settings, runtime=self.runtime, strict=self.strict
        )

    def with_runtime(self, runtime: Runtime | None) -> "Efes":
        """The same framework bound to a different execution runtime."""
        return Efes(
            self.modules, self.settings, runtime=runtime, strict=self.strict
        )
