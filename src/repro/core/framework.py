"""The EFES framework (Section 3): modules, assessment, estimation.

EFES "handles different kinds of integration challenges by accepting a
dedicated estimation module to cope with each of them independently".  A
module couples a *data complexity detector* with a *task planner*
(Figure 3); the framework runs all detectors (phase 1, complexity
assessment), all planners (phase 2 input), and prices the resulting tasks
with the execution settings' effort-calculation functions (phase 2, effort
estimation).
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Sequence

from ..observability import Span, Tracer, tracing
from ..runtime import Runtime, RuntimeMetrics, get_runtime
from ..scenarios.scenario import IntegrationScenario
from .effort import (
    EffortEstimate,
    ExecutionSettings,
    default_execution_settings,
    price_tasks,
)
from .quality import ResultQuality
from .reports import ComplexityReport
from .tasks import Task


class EstimationModule:
    """One estimation module = complexity detector + task planner."""

    #: Stable module identifier (used as report key and task provenance).
    name: str = "module"

    def assess(self, scenario: IntegrationScenario) -> ComplexityReport:
        """Phase 1: extract complexity indicators into a report."""
        raise NotImplementedError

    def plan(
        self,
        scenario: IntegrationScenario,
        report: ComplexityReport,
        quality: ResultQuality,
    ) -> list[Task]:
        """Phase 2 input: derive tasks that overcome the reported issues."""
        raise NotImplementedError


class TaskAdjustment:
    """A user revision of the proposed task list (Section 6.1).

    "If a data complexity aspect was properly recognized but we preferred
    a different integration task, we have adapted the proposed tasks" —
    e.g. swapping *Add missing values* for *Reject tuples* when the
    missing FreeDB disc IDs cannot possibly be provided.  An adjustment is
    a callable mapping the proposed task list to the revised one.
    """

    def __call__(self, tasks: list[Task]) -> list[Task]:  # pragma: no cover
        raise NotImplementedError


@dataclasses.dataclass
class AssessmentOutcome:
    """Everything one full pipeline run produces, kept together.

    The assessment service stores/ships this as one document: the phase-1
    reports plus the phase-2 estimate (whose entries carry the planned
    task list).  ``quality`` is the estimate's expected result quality.
    """

    scenario_name: str
    quality: ResultQuality
    reports: dict[str, ComplexityReport]
    estimate: EffortEstimate
    #: Root span of the traced run (``Efes.run(..., trace=True)``), else
    #: ``None``; serialisable via :func:`repro.core.serialize.span_to_dict`.
    trace: Span | None = None

    @property
    def tasks(self) -> list[Task]:
        return [entry.task for entry in self.estimate.entries]


class Efes:
    """The effort estimation framework.

    Assemble with any set of modules; the three shipped ones are in
    :func:`repro.core.default_modules`.
    """

    def __init__(
        self,
        modules: Sequence[EstimationModule],
        settings: ExecutionSettings | None = None,
        runtime: Runtime | None = None,
    ) -> None:
        names = [module.name for module in modules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate module names: {names}")
        self.modules = list(modules)
        self.settings = settings or default_execution_settings()
        #: Optional dedicated runtime; ``None`` resolves to the active
        #: process runtime at call time (see :mod:`repro.runtime`).
        self.runtime = runtime

    def _resolve_runtime(self) -> Runtime:
        return self.runtime if self.runtime is not None else get_runtime()

    @property
    def metrics(self) -> RuntimeMetrics:
        """The instrumentation of the runtime this framework executes on."""
        return self._resolve_runtime().metrics

    # ------------------------------------------------------------------
    # Phase 1: complexity assessment
    # ------------------------------------------------------------------

    def assess(
        self, scenario: IntegrationScenario
    ) -> dict[str, ComplexityReport]:
        """Run every module's detector; returns reports keyed by module.

        Detectors run concurrently on the runtime's executor; the report
        dict is ordered by module declaration order regardless of task
        completion order.
        """
        return self._resolve_runtime().run_detectors(self.modules, scenario)

    # ------------------------------------------------------------------
    # Phase 2: effort estimation
    # ------------------------------------------------------------------

    def plan(
        self,
        scenario: IntegrationScenario,
        quality: ResultQuality,
        reports: dict[str, ComplexityReport] | None = None,
    ) -> list[Task]:
        """Run every module's planner on its report; concatenated tasks."""
        runtime = self._resolve_runtime()
        if reports is None:
            reports = self.assess(scenario)
        tasks: list[Task] = []
        with runtime.activated(), tracing.span("plan"), \
                runtime.metrics.time_stage("plan"):
            for module in self.modules:
                report = reports[module.name]
                with tracing.span(f"planner:{module.name}"):
                    planned = module.plan(scenario, report, quality)
                tasks.extend(planned)
        return tasks

    def estimate(
        self,
        scenario: IntegrationScenario,
        quality: ResultQuality,
        adjustments: Iterable[TaskAdjustment] = (),
        reports: dict[str, ComplexityReport] | None = None,
    ) -> EffortEstimate:
        """The full pipeline: assess → plan → (adjust) → price.

        Callers that already hold complexity reports (e.g. when pricing
        several qualities of the same scenario) pass them via ``reports``
        and the assessment phase is skipped entirely — the detectors run
        exactly once per scenario, not once per estimate.
        """
        runtime = self._resolve_runtime()
        runtime.metrics.increment("estimates")
        with tracing.span("estimate", scenario=scenario.name):
            tasks = self.plan(scenario, quality, reports=reports)
            for adjustment in adjustments:
                tasks = adjustment(tasks)
            with tracing.span("price"), runtime.metrics.time_stage("price"):
                return price_tasks(
                    scenario.name, quality, tasks, self.settings
                )

    def run(
        self,
        scenario: IntegrationScenario,
        quality: ResultQuality,
        adjustments: Iterable[TaskAdjustment] = (),
        trace: bool = False,
    ) -> AssessmentOutcome:
        """Both phases as one deliverable: reports + tasks + estimate.

        This is the unit of work the assessment service executes and
        stores; :func:`repro.core.serialize` round-trips every part.
        With ``trace=True`` the whole run executes under a fresh
        :class:`~repro.observability.Tracer` and the outcome carries the
        completed root span (``run:<scenario>``) — detectors, profiling,
        planning, and pricing appear as its descendants.
        """
        if not trace:
            reports = self.assess(scenario)
            estimate = self.estimate(
                scenario, quality, adjustments=adjustments, reports=reports
            )
            return AssessmentOutcome(scenario.name, quality, reports, estimate)
        tracer = Tracer()
        with tracer.activated(), tracing.span(
            f"run:{scenario.name}", quality=quality.value
        ):
            reports = self.assess(scenario)
            estimate = self.estimate(
                scenario, quality, adjustments=adjustments, reports=reports
            )
        return AssessmentOutcome(
            scenario.name, quality, reports, estimate, trace=tracer.root
        )

    def with_settings(self, settings: ExecutionSettings) -> "Efes":
        return Efes(self.modules, settings, runtime=self.runtime)

    def with_runtime(self, runtime: Runtime | None) -> "Efes":
        """The same framework bound to a different execution runtime."""
        return Efes(self.modules, self.settings, runtime=runtime)
