"""The EFES framework (Section 3): modules, assessment, estimation.

EFES "handles different kinds of integration challenges by accepting a
dedicated estimation module to cope with each of them independently".  A
module couples a *data complexity detector* with a *task planner*
(Figure 3); the framework runs all detectors (phase 1, complexity
assessment), all planners (phase 2 input), and prices the resulting tasks
with the execution settings' effort-calculation functions (phase 2, effort
estimation).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..scenarios.scenario import IntegrationScenario
from .effort import (
    EffortEstimate,
    ExecutionSettings,
    default_execution_settings,
    price_tasks,
)
from .quality import ResultQuality
from .reports import ComplexityReport
from .tasks import Task


class EstimationModule:
    """One estimation module = complexity detector + task planner."""

    #: Stable module identifier (used as report key and task provenance).
    name: str = "module"

    def assess(self, scenario: IntegrationScenario) -> ComplexityReport:
        """Phase 1: extract complexity indicators into a report."""
        raise NotImplementedError

    def plan(
        self,
        scenario: IntegrationScenario,
        report: ComplexityReport,
        quality: ResultQuality,
    ) -> list[Task]:
        """Phase 2 input: derive tasks that overcome the reported issues."""
        raise NotImplementedError


class TaskAdjustment:
    """A user revision of the proposed task list (Section 6.1).

    "If a data complexity aspect was properly recognized but we preferred
    a different integration task, we have adapted the proposed tasks" —
    e.g. swapping *Add missing values* for *Reject tuples* when the
    missing FreeDB disc IDs cannot possibly be provided.  An adjustment is
    a callable mapping the proposed task list to the revised one.
    """

    def __call__(self, tasks: list[Task]) -> list[Task]:  # pragma: no cover
        raise NotImplementedError


class Efes:
    """The effort estimation framework.

    Assemble with any set of modules; the three shipped ones are in
    :func:`repro.core.default_modules`.
    """

    def __init__(
        self,
        modules: Sequence[EstimationModule],
        settings: ExecutionSettings | None = None,
    ) -> None:
        names = [module.name for module in modules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate module names: {names}")
        self.modules = list(modules)
        self.settings = settings or default_execution_settings()

    # ------------------------------------------------------------------
    # Phase 1: complexity assessment
    # ------------------------------------------------------------------

    def assess(
        self, scenario: IntegrationScenario
    ) -> dict[str, ComplexityReport]:
        """Run every module's detector; returns reports keyed by module."""
        return {
            module.name: module.assess(scenario) for module in self.modules
        }

    # ------------------------------------------------------------------
    # Phase 2: effort estimation
    # ------------------------------------------------------------------

    def plan(
        self,
        scenario: IntegrationScenario,
        quality: ResultQuality,
        reports: dict[str, ComplexityReport] | None = None,
    ) -> list[Task]:
        """Run every module's planner on its report; concatenated tasks."""
        if reports is None:
            reports = self.assess(scenario)
        tasks: list[Task] = []
        for module in self.modules:
            report = reports[module.name]
            tasks.extend(module.plan(scenario, report, quality))
        return tasks

    def estimate(
        self,
        scenario: IntegrationScenario,
        quality: ResultQuality,
        adjustments: Iterable[TaskAdjustment] = (),
    ) -> EffortEstimate:
        """The full pipeline: assess → plan → (adjust) → price."""
        tasks = self.plan(scenario, quality)
        for adjustment in adjustments:
            tasks = adjustment(tasks)
        return price_tasks(scenario.name, quality, tasks, self.settings)

    def with_settings(self, settings: ExecutionSettings) -> "Efes":
        return Efes(self.modules, settings)
