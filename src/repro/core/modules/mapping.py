"""The mapping estimation module (Section 3.3, Table 2; Example 3.8).

"For each table in the target schema and each source database that
provides data for that table, some connection has to be established to
fetch the source data and write it into the target table.  [...] every
connection can be described in terms of certain metrics, such as the
number of source tables to be queried, the number of attributes that must
be copied, and whether new IDs for a primary key need to be generated."

Source-table counting walks the source FK graph: the relations that carry
attribute correspondences for the target table, the relations on the
(shortest) FK paths connecting them — e.g. the ``artist_lists`` link table
of the running example, which carries no correspondence but must still be
queried — plus one lookup per target foreign key whose referenced target
table is also being populated (the mapping query must resolve the new ids
of the referenced tuples).
"""

from __future__ import annotations

import itertools
from collections import deque

from ...matching.correspondence import CorrespondenceSet
from ...relational.database import Database
from ...relational.schema import Schema
from ...scenarios.scenario import IntegrationScenario
from ..framework import EstimationModule
from ..quality import ResultQuality
from ..reports import MappingComplexityReport, MappingConnection
from ..tasks import Task, TaskType


def _fk_adjacency(schema: Schema) -> dict[str, set[str]]:
    """Undirected relation-level adjacency induced by foreign keys."""
    adjacency: dict[str, set[str]] = {
        relation.name: set() for relation in schema.relations
    }
    for fk in schema.foreign_keys():
        adjacency[fk.relation].add(fk.referenced)
        adjacency[fk.referenced].add(fk.relation)
    return adjacency


def _shortest_relation_path(
    adjacency: dict[str, set[str]], start: str, goal: str
) -> list[str] | None:
    """BFS shortest path (inclusive of endpoints) in the FK graph."""
    if start == goal:
        return [start]
    queue = deque([[start]])
    visited = {start}
    while queue:
        path = queue.popleft()
        for successor in sorted(adjacency.get(path[-1], ())):
            if successor in visited:
                continue
            extended = path + [successor]
            if successor == goal:
                return extended
            visited.add(successor)
            queue.append(extended)
    return None


def join_closure(schema: Schema, relations: set[str]) -> set[str]:
    """The relations needed to join all of ``relations`` together: the
    union of pairwise shortest FK paths (a light-weight Steiner tree)."""
    if not relations:
        return set()
    adjacency = _fk_adjacency(schema)
    closure = set(relations)
    for left, right in itertools.combinations(sorted(relations), 2):
        path = _shortest_relation_path(adjacency, left, right)
        if path:
            closure.update(path)
    return closure


def _count_traversed_fks(schema: Schema, closure: set[str]) -> int:
    """Foreign keys with both ends inside the closure — the join conditions."""
    return sum(
        1
        for fk in schema.foreign_keys()
        if fk.relation in closure and fk.referenced in closure
    )


class MappingModule(EstimationModule):
    """Detector + planner for the mapping-creation activity."""

    name = "mapping"

    def assess(self, scenario: IntegrationScenario) -> MappingComplexityReport:
        connections: list[MappingConnection] = []
        for source, correspondences in scenario.pairs():
            connections.extend(
                self._connections_for(scenario, source, correspondences)
            )
        return MappingComplexityReport(connections)

    def _connections_for(
        self,
        scenario: IntegrationScenario,
        source: Database,
        correspondences: CorrespondenceSet,
    ) -> list[MappingConnection]:
        target_schema = scenario.target.schema
        connections: list[MappingConnection] = []
        populated_targets = set(correspondences.target_relations())
        for target_table in correspondences.target_relations():
            mapped_attributes = correspondences.mapped_target_attributes(
                target_table
            )
            source_relations = {
                c.source_relation
                for attribute in mapped_attributes
                for c in correspondences.sources_of_attribute(
                    target_table, attribute
                )
            }
            source_relations.update(
                correspondences.sources_of_relation(target_table)
            )
            if not source_relations:
                continue

            # Each target FK into another populated target table needs a
            # reference-resolution lookup in the mapping query; the join
            # must also reach the source relation(s) that feed the
            # referenced target table's identity.
            lookups = 0
            resolution_relations: set[str] = set()
            resolved_fk_attributes: set[str] = set()
            for fk in target_schema.foreign_keys_of(target_table):
                if fk.referenced in populated_targets:
                    lookups += 1
                    resolved_fk_attributes.update(fk.attributes)
                    resolution_relations.update(
                        correspondences.identity_sources_of_relation(
                            fk.referenced
                        )
                    )

            closure = join_closure(
                source.schema, source_relations | resolution_relations
            )
            foreign_keys = _count_traversed_fks(source.schema, closure)

            # FK attributes are resolved (via the lookup), not copied.
            copied_attributes = [
                attribute
                for attribute in mapped_attributes
                if attribute not in resolved_fk_attributes
            ]

            primary_key = target_schema.primary_key_of(target_table)
            needs_primary_key = primary_key is not None and any(
                attribute not in mapped_attributes
                for attribute in primary_key.attributes
            )
            connections.append(
                MappingConnection(
                    target_table=target_table,
                    source_database=source.name,
                    source_tables=len(closure) + lookups,
                    attributes=len(copied_attributes),
                    needs_primary_key=needs_primary_key,
                    foreign_keys=foreign_keys + lookups,
                )
            )
        return connections

    def plan(
        self,
        scenario: IntegrationScenario,
        report: MappingComplexityReport,
        quality: ResultQuality,
    ) -> list[Task]:
        """One *Write mapping* task per connection.

        The mapping has to be written regardless of the expected result
        quality; quality only affects the cleaning planners.
        """
        tasks: list[Task] = []
        for connection in report.connections:
            tasks.append(
                Task(
                    type=TaskType.WRITE_MAPPING,
                    quality=quality,
                    subject=(
                        f"{connection.source_database} -> "
                        f"{connection.target_table}"
                    ),
                    parameters={
                        "tables": connection.source_tables,
                        "attributes": connection.attributes,
                        "primary_keys": 1.0 if connection.needs_primary_key else 0.0,
                        "foreign_keys": connection.foreign_keys,
                    },
                    module=self.name,
                )
            )
        return tasks
