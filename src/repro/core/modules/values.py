"""The value-heterogeneities estimation module (Section 5).

The *value fit detector* aggregates source and target columns into
statistics and compares them with the decision model of Algorithm 1; the
*value transformation planner* maps detected heterogeneities to cleaning
tasks via Table 7.  Unlike structure repairs, "those tasks do not have
interdependencies", so planning is a straight catalogue lookup.
"""

from __future__ import annotations

import dataclasses

from ...matching.correspondence import Correspondence, CorrespondenceSet
from ...profiling.profiler import ColumnProfile, profile_column
from ...relational.database import Database
from ...scenarios.scenario import IntegrationScenario
from ..framework import EstimationModule
from ..quality import ResultQuality
from ..reports import ValueComplexityReport, ValueHeterogeneityFinding
from ..tasks import VALUE_TASK_CATALOGUE, Task, TaskType, ValueHeterogeneity

#: "we found 0.9 to be a good threshold to separate seamlessly integrating
#: attribute pairs from those that had notably different characteristics."
DEFAULT_FIT_THRESHOLD = 0.9

#: Rule 1: the source is "substantially" emptier than the target when its
#: filled fraction is below this ratio of the target's.
FEWER_VALUES_RATIO = 0.6

#: Rule 2: tolerated fraction of uncastable source values before the
#: representations count as critically different.
INCOMPATIBLE_TOLERANCE = 0.02


@dataclasses.dataclass(frozen=True)
class FitBreakdown:
    """The per-statistic importance/fit pairs behind an overall fit value.

    Exposed for the Granularity requirement: users see *which* statistic
    caused a low fit (e.g. the text pattern of ``duration``).
    """

    overall: float
    components: tuple[tuple[str, float, float], ...]  # (name, importance, fit)

    def component(self, name: str) -> tuple[float, float]:
        for stat_name, importance, fit in self.components:
            if stat_name == name:
                return importance, fit
        raise KeyError(name)


def weighted_fit(
    source: ColumnProfile, target: ColumnProfile
) -> FitBreakdown:
    """f = Σ i(S_t(τ)) · f(S_s(τ), S_t(τ)) with normalised importances."""
    components: list[tuple[str, float, float]] = []
    total_importance = 0.0
    weighted = 0.0
    for name, target_statistic in target.statistics.items():
        source_statistic = source.statistics.get(name)
        if source_statistic is None:
            continue
        importance = target_statistic.importance()
        fit = target_statistic.fit(source_statistic)
        components.append((name, importance, fit))
        total_importance += importance
        weighted += importance * fit
    overall = weighted / total_importance if total_importance > 0 else 1.0
    return FitBreakdown(overall, tuple(components))


class ValueFitDetector:
    """Phase-1 half of the value module (Algorithm 1)."""

    def __init__(self, fit_threshold: float = DEFAULT_FIT_THRESHOLD) -> None:
        self.fit_threshold = fit_threshold

    def detect(
        self,
        source: Database,
        target: Database,
        correspondences: CorrespondenceSet,
    ) -> list[ValueHeterogeneityFinding]:
        findings: list[ValueHeterogeneityFinding] = []
        populated = set(correspondences.target_relations())
        resolved_fk_attributes = {
            (fk.relation, attribute)
            for fk in target.schema.foreign_keys()
            if fk.referenced in populated
            for attribute in fk.attributes
        }
        for correspondence in correspondences.attribute_correspondences():
            key = (
                correspondence.target_relation,
                correspondence.target_attribute,
            )
            if key in resolved_fk_attributes:
                # FK values are re-generated during reference resolution in
                # the mapping, so their representations never meet.
                continue
            findings.extend(
                self._inspect_pair(source, target, correspondence)
            )
        return findings

    def _inspect_pair(
        self,
        source: Database,
        target: Database,
        correspondence: Correspondence,
    ) -> list[ValueHeterogeneityFinding]:
        target_attribute = target.schema.attribute(
            correspondence.target_relation, correspondence.target_attribute
        )
        # Both sides are profiled against the *target* datatype so the
        # statistics live in the same value space (Section 5.1).
        source_profile = profile_column(
            source,
            correspondence.source_relation,
            correspondence.source_attribute,
            datatype=target_attribute.datatype,
        )
        target_profile = profile_column(
            target,
            correspondence.target_relation,
            correspondence.target_attribute,
            datatype=target_attribute.datatype,
        )
        findings: list[ValueHeterogeneityFinding] = []
        source_values = source_profile.row_count
        distinct = source_profile.distinct_count

        pattern_statistic = source_profile.statistics.get("text_pattern")
        representations = (
            float(len(pattern_statistic.distribution))
            if pattern_statistic is not None
            else 1.0
        )

        def emit(
            heterogeneity: ValueHeterogeneity, **extra: float
        ) -> None:
            parameters = {
                "values": float(source_values),
                "distinct_values": float(distinct),
                "representations": representations,
            }
            parameters.update(extra)
            findings.append(
                ValueHeterogeneityFinding(
                    source_database=source.name,
                    source_attribute=correspondence.source,
                    target_attribute=correspondence.target,
                    heterogeneity=heterogeneity,
                    parameters=parameters,
                )
            )

        # Rule 1: substantiallyFewerSourceValues — compares *presence* of
        # values (nulls); castability is rule 2's concern.
        source_fill = source_profile.fill_status.non_null_fraction
        target_fill = target_profile.fill_status.non_null_fraction
        if target_fill > 0 and source_fill < FEWER_VALUES_RATIO * target_fill:
            missing = round((target_fill - source_fill) * source_values)
            emit(ValueHeterogeneity.TOO_FEW_ELEMENTS, values=float(missing))

        # Rule 2: hasIncompatibleValues
        if (
            source_profile.fill_status.incompatible_fraction
            > INCOMPATIBLE_TOLERANCE
        ):
            emit(
                ValueHeterogeneity.DIFFERENT_REPRESENTATIONS_CRITICAL,
                incompatible=float(source_profile.fill_status.uncastable),
            )
            return findings  # critical difference dominates the domain rules

        # Rules 3-5: domain granularity and domain-specific differences
        source_restricted = source_profile.is_domain_restricted
        target_restricted = target_profile.is_domain_restricted
        if source_restricted and not target_restricted:
            emit(ValueHeterogeneity.TOO_COARSE_GRAINED)
        elif not source_restricted and target_restricted:
            emit(ValueHeterogeneity.TOO_FINE_GRAINED)
        else:
            breakdown = weighted_fit(source_profile, target_profile)
            if (
                target_profile.row_count > 0
                and source_profile.row_count > 0
                and breakdown.overall < self.fit_threshold
            ):
                emit(
                    ValueHeterogeneity.DIFFERENT_REPRESENTATIONS,
                    fit=breakdown.overall,
                )
        return findings


class ValueTransformationPlanner:
    """Phase-2 half of the value module: Table 7 catalogue lookups."""

    def plan(
        self,
        findings: list[ValueHeterogeneityFinding],
        quality: ResultQuality,
    ) -> list[Task]:
        tasks: list[Task] = []
        for finding in findings:
            task_type = VALUE_TASK_CATALOGUE[finding.heterogeneity][quality]
            if task_type is None:
                continue  # heterogeneity is simply ignored at this quality
            tasks.append(
                Task(
                    type=task_type,
                    quality=quality,
                    subject=(
                        f"{finding.source_attribute} -> "
                        f"{finding.target_attribute}"
                    ),
                    parameters=dict(finding.parameters),
                    module="values",
                )
            )
        return tasks


class ValueModule(EstimationModule):
    """The pluggable value-heterogeneities module."""

    name = "values"

    def __init__(self, fit_threshold: float = DEFAULT_FIT_THRESHOLD) -> None:
        self.detector = ValueFitDetector(fit_threshold=fit_threshold)
        self.planner = ValueTransformationPlanner()

    def assess(self, scenario: IntegrationScenario) -> ValueComplexityReport:
        findings: list[ValueHeterogeneityFinding] = []
        for source, correspondences in scenario.pairs():
            findings.extend(
                self.detector.detect(source, scenario.target, correspondences)
            )
        return ValueComplexityReport(findings)

    def plan(
        self,
        scenario: IntegrationScenario,
        report: ValueComplexityReport,
        quality: ResultQuality,
    ) -> list[Task]:
        return self.planner.plan(report.findings, quality)


def make_drop_instead_of_add(subject_fragment: str):
    """A :class:`~repro.core.framework.TaskAdjustment` like the FreeDB-id
    revision of Section 6.1: replace *Add values*/*Add missing values* on a
    matching subject with *Reject tuples*."""

    def adjust(tasks: list[Task]) -> list[Task]:
        revised: list[Task] = []
        for task in tasks:
            if (
                task.type in (TaskType.ADD_VALUES, TaskType.ADD_MISSING_VALUES)
                and subject_fragment in task.subject
            ):
                revised.append(
                    Task(
                        type=TaskType.REJECT_TUPLES,
                        quality=task.quality,
                        subject=task.subject,
                        parameters=dict(task.parameters),
                        module=task.module,
                    )
                )
            else:
                revised.append(task)
        return revised

    return adjust
