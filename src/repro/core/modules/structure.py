"""The structural-conflicts estimation module (Section 4).

The *structure conflict detector* converts source and target into CSGs,
matches every atomic target relationship to the most concise composite
source relationship (Section 4.1), compares prescribed vs inferred
cardinalities, and counts actually conflicting source elements (Table 3).

The *structure repair planner* (Section 4.2) chooses cleaning tasks from
Table 4 and simulates them on a virtual CSG instance (Fig. 5): every
relationship carries an *actual* cardinality describing the conceptually
integrated source data; applying a task narrows the violated cardinality
but may widen others (side effects), which spawns follow-up tasks; the
loop runs until the virtual instance is valid, ordering causing tasks
before fixing tasks and detecting infinite cleaning loops.
"""

from __future__ import annotations

import dataclasses

from ...csg.cardinality import Cardinality, Interval
from ...csg.convert import database_to_csg, schema_to_csg
from ...csg.graph import Csg, Relationship, RelationshipKind
from ...csg.instance import CsgInstance
from ...csg.paths import (
    DEFAULT_MAX_PATH_LENGTH,
    infer_path_cardinality,
    match_endpoints,
)
from ...matching.correspondence import CorrespondenceSet
from ...relational.database import Database
from ...scenarios.scenario import IntegrationScenario
from ..framework import EstimationModule
from ..quality import ResultQuality
from ..reports import StructureComplexityReport, StructureViolation
from ..tasks import (
    STRUCTURE_TASK_CATALOGUE,
    StructuralConflict,
    Task,
    TaskType,
)


class InfiniteCleaningLoopError(RuntimeError):
    """The repair simulation does not converge (contradicting repairs).

    "In most cases, these cycles are a consequence of contradicting repair
    tasks.  EFES proposes only consistent repair strategies." — raising is
    the consistent reaction; the message names the oscillating tasks.
    """


def _cross_product(image_sets: list[set]) -> list[tuple]:
    """All value combinations across the per-attribute image sets."""
    combos: list[tuple] = [()]
    for images in image_sets:
        combos = [
            combo + (value,)
            for combo in combos
            for value in sorted(images, key=str)
        ]
    return combos


def _node_mapping(
    correspondences: CorrespondenceSet,
) -> dict[str, list[str]]:
    """Target CSG node name → candidate source CSG node names."""
    mapping: dict[str, list[str]] = {}
    for c in correspondences.attribute_correspondences():
        mapping.setdefault(c.target, []).append(c.source)
    for target_relation in correspondences.target_relations():
        sources = correspondences.identity_sources_of_relation(target_relation)
        if sources:
            mapping[target_relation] = list(sources)
    return mapping


@dataclasses.dataclass
class MatchedTargetRelationship:
    """A target relationship together with its matched source counterpart."""

    relationship: Relationship
    path: tuple[Relationship, ...]
    inferred: Cardinality


class StructureConflictDetector:
    """Phase-1 half of the structure module."""

    def __init__(
        self,
        max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
        use_conciseness: bool = True,
    ) -> None:
        self.max_path_length = max_path_length
        self.use_conciseness = use_conciseness

    def detect(
        self,
        source: Database,
        target: Database,
        correspondences: CorrespondenceSet,
    ) -> list[StructureViolation]:
        source_graph, source_instance = database_to_csg(source)
        target_graph = schema_to_csg(target.schema)
        mapping = _node_mapping(correspondences)
        violations: list[StructureViolation] = []
        for relationship in self._target_relationships(target_graph):
            start_names = mapping.get(relationship.start.name)
            end_names = mapping.get(relationship.end.name)
            if not start_names or not end_names:
                continue  # unmapped endpoints are out of scope (Section 4.1)
            matched = match_endpoints(
                source_graph,
                start_names,
                end_names,
                max_length=self.max_path_length,
                use_conciseness=self.use_conciseness,
            )
            if matched is None:
                continue
            if matched.cardinality.is_subset(relationship.cardinality):
                continue  # source is at least as concise: no conflict
            violations.extend(
                self._count(
                    source.name, relationship, matched.path,
                    matched.cardinality, source_instance,
                )
            )
        violations.extend(
            self._detect_composite_uniques(
                source, target, correspondences, source_graph,
                source_instance, mapping,
            )
        )
        violations.extend(
            self._detect_functional_dependencies(
                source, target, source_graph, source_instance, mapping
            )
        )
        return violations

    def _detect_functional_dependencies(
        self,
        source: Database,
        target: Database,
        source_graph: Csg,
        source_instance: CsgInstance,
        mapping: dict[str, list[str]],
    ) -> list[StructureViolation]:
        """FDs as complex-relationship cardinalities (§4.1 extension).

        An FD ``det → dep`` prescribes κ(ρ_det→dep) ⊆ 0..1 on the composed
        relationship from determinant values through tuples to dependent
        values.  The detector matches that relationship into the source
        (determinant node → dependent node) and counts determinant values
        with several dependent values.
        """
        from ...relational.constraints import FunctionalDependencyConstraint

        violations: list[StructureViolation] = []
        fds = sorted(
            (
                constraint
                for constraint in target.schema.constraints
                if isinstance(constraint, FunctionalDependencyConstraint)
            ),
            key=lambda c: (c.relation, c.determinant, c.dependent),
        )
        prescribed = Cardinality.of(0, 1)
        for fd in fds:
            det_names = mapping.get(f"{fd.relation}.{fd.determinant}")
            dep_names = mapping.get(f"{fd.relation}.{fd.dependent}")
            if not det_names or not dep_names:
                continue
            matched = match_endpoints(
                source_graph,
                det_names,
                dep_names,
                max_length=self.max_path_length,
                use_conciseness=self.use_conciseness,
            )
            if matched is None:
                continue
            if matched.cardinality.is_subset(prescribed):
                continue
            count = source_instance.count_violations(matched.path, prescribed)
            if not count:
                continue
            label = f"{fd.determinant}->{fd.dependent}"
            violations.append(
                StructureViolation(
                    source_database=source.name,
                    target_relationship=(
                        f"{fd.relation}.{fd.determinant}->"
                        f"{fd.relation}.{fd.dependent}"
                    ),
                    conflict=StructuralConflict.FD_VIOLATED,
                    prescribed=str(prescribed),
                    inferred=str(matched.cardinality),
                    violation_count=count,
                    scope=len(source_instance.image_counts(matched.path)),
                    target_relation=fd.relation,
                    target_attribute=label,
                )
            )
        return violations

    def _detect_composite_uniques(
        self,
        source: Database,
        target: Database,
        correspondences: CorrespondenceSet,
        source_graph: Csg,
        source_instance: CsgInstance,
        mapping: dict[str, list[str]],
    ) -> list[StructureViolation]:
        """N-ary uniqueness via the join operator (Section 4.1, Lemma 3).

        A composite UNIQUE over (a, b) prescribes κ(ρ_a→T ⋈ ρ_b→T) ⊆ 1 on
        the value-combination side: each (a, b) combination may enclose at
        most one tuple.  The inferred source-side cardinality is the join
        of the matched per-attribute relationships; the violation count is
        the number of combinations shared by several source entities.
        """
        from ...relational.constraints import PrimaryKey, Unique

        violations: list[StructureViolation] = []
        composites = [
            constraint
            for constraint in target.schema.constraints
            if isinstance(constraint, (Unique, PrimaryKey))
            and len(constraint.attributes) >= 2
        ]
        for constraint in sorted(
            composites, key=lambda c: (c.relation, c.attributes)
        ):
            table_sources = mapping.get(constraint.relation)
            if not table_sources:
                continue
            matched_paths = []
            for attribute in constraint.attributes:
                end_names = mapping.get(f"{constraint.relation}.{attribute}")
                if not end_names:
                    matched_paths = []
                    break
                matched = match_endpoints(
                    source_graph,
                    table_sources,
                    end_names,
                    max_length=self.max_path_length,
                    use_conciseness=self.use_conciseness,
                )
                if matched is None:
                    matched_paths = []
                    break
                matched_paths.append(matched)
            if not matched_paths:
                continue  # some key component is unmapped: out of scope

            # Inferred cardinality of the joined backward relationship via
            # Lemma 3 (join of the per-attribute inverse cardinalities).
            inverse_cardinalities = [
                infer_path_cardinality(
                    tuple(rel.inverse for rel in reversed(matched.path))
                )
                for matched in matched_paths
            ]
            inferred = inverse_cardinalities[0]
            for cardinality in inverse_cardinalities[1:]:
                inferred = inferred.join(cardinality)
            prescribed = Cardinality.of(1)
            if inferred.is_subset(prescribed):
                continue  # e.g. all key components unique on the source

            # Count combinations shared by multiple source entities.
            image_sets = [
                source_instance.image_sets(matched.path)
                for matched in matched_paths
            ]
            seen: dict[tuple, int] = {}
            elements = image_sets[0].keys()
            for element in elements:
                images = [images_of.get(element, set()) for images_of in image_sets]
                if not all(images):
                    continue  # incomplete keys are exempt, like SQL
                combos = {
                    combo
                    for combo in _cross_product(images)
                }
                for combo in combos:
                    seen[combo] = seen.get(combo, 0) + 1
            duplicate_extras = sum(
                count - 1 for count in seen.values() if count > 1
            )
            if not duplicate_extras:
                continue
            attribute_label = "(" + ", ".join(constraint.attributes) + ")"
            violations.append(
                StructureViolation(
                    source_database=source.name,
                    target_relationship=(
                        f"{constraint.relation}.{attribute_label}"
                        f"->{constraint.relation}"
                    ),
                    conflict=StructuralConflict.UNIQUE_VIOLATED,
                    prescribed=str(prescribed),
                    inferred=str(inferred),
                    violation_count=duplicate_extras,
                    scope=len(seen),
                    target_relation=constraint.relation,
                    target_attribute=attribute_label,
                )
            )
        return violations

    def _target_relationships(self, target_graph: Csg):
        """Atomic target relationships in deterministic report order.

        Both directions of attribute relationships plus the forward
        direction of FK equality relationships (the referencing side is
        the constrained one).
        """
        ordered = []
        for relationship in target_graph.relationships:
            if relationship.kind is RelationshipKind.ATTRIBUTE:
                ordered.append(relationship)
            elif relationship.cardinality == Cardinality.of(1):
                # equality: only the referencing side prescribes 1
                ordered.append(relationship)
        ordered.sort(key=lambda rel: rel.label)
        return ordered

    def _count(
        self,
        source_name: str,
        relationship: Relationship,
        path: tuple[Relationship, ...],
        inferred: Cardinality,
        instance: CsgInstance,
    ) -> list[StructureViolation]:
        """Split violating elements into too-few vs too-many and classify."""
        prescribed = relationship.cardinality
        counts = instance.image_counts(path)
        minimum = prescribed.min if prescribed.min is not None else 0
        below = sum(1 for count in counts.values() if count < minimum)
        above = sum(
            1
            for count in counts.values()
            if count >= minimum and not prescribed.contains(count)
        )
        scope = len(counts)
        label = f"{relationship.start.name}->{relationship.end.name}"
        results: list[StructureViolation] = []

        if relationship.kind is RelationshipKind.EQUALITY:
            # The referencing attribute owns an FK violation.
            owner_relation = relationship.start.relation or ""
            owner_attribute = relationship.start.attribute or ""
        elif relationship.start.is_table:
            owner_relation = relationship.start.relation or ""
            owner_attribute = relationship.end.attribute or ""
        else:
            owner_relation = relationship.end.relation or ""
            owner_attribute = relationship.start.attribute or ""

        def emit(conflict: StructuralConflict, count: int) -> None:
            results.append(
                StructureViolation(
                    source_database=source_name,
                    target_relationship=label,
                    conflict=conflict,
                    prescribed=str(prescribed),
                    inferred=str(inferred),
                    violation_count=count,
                    scope=scope,
                    target_relation=owner_relation,
                    target_attribute=owner_attribute,
                )
            )

        if relationship.kind is RelationshipKind.EQUALITY:
            if below or above:
                emit(StructuralConflict.FK_VIOLATED, below + above)
            return results
        if relationship.start.is_table:  # forward: tuple → value
            if below:
                emit(StructuralConflict.NOT_NULL_VIOLATED, below)
            if above:
                emit(StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES, above)
        else:  # backward: value → tuple
            if below:
                emit(StructuralConflict.VALUE_WITHOUT_ENCLOSING_TUPLE, below)
            if above:
                emit(StructuralConflict.UNIQUE_VIOLATED, above)
        return results


# ----------------------------------------------------------------------
# Virtual CSG simulation (Fig. 5)
# ----------------------------------------------------------------------


@dataclasses.dataclass
class VirtualRelationship:
    """One target relationship in the virtual CSG instance.

    ``actual`` describes the conceptually integrated data; ``below`` /
    ``above`` count the elements with too few / too many links.  The
    instance is valid when every relationship's actual ⊆ prescribed
    (equivalently: no below/above counts remain).
    """

    relation: str
    attribute: str
    direction: str  # "forward" (tuple→value), "backward", "equality"
    prescribed: Cardinality
    actual: Cardinality
    below: int = 0
    above: int = 0
    scope: int = 0

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.relation, self.attribute, self.direction)

    @property
    def is_violated(self) -> bool:
        return self.below > 0 or self.above > 0

    def widen_low(self, count: int) -> None:
        """New elements with too few links appeared (side effect)."""
        self.below += count
        if not self.actual.is_empty:
            self.actual = Cardinality(
                [Interval(0, self.actual.max if self.actual.is_bounded else None)]
            )

    def narrow_to_prescribed(self) -> None:
        self.below = 0
        self.above = 0
        intersected = self.actual.intersection(self.prescribed)
        self.actual = intersected if not intersected.is_empty else self.prescribed


_CONFLICT_OF = {
    ("forward", "below"): StructuralConflict.NOT_NULL_VIOLATED,
    ("forward", "above"): StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES,
    ("backward", "below"): StructuralConflict.VALUE_WITHOUT_ENCLOSING_TUPLE,
    ("backward", "above"): StructuralConflict.UNIQUE_VIOLATED,
    ("equality", "below"): StructuralConflict.FK_VIOLATED,
    ("equality", "above"): StructuralConflict.FK_VIOLATED,
    ("fd", "below"): StructuralConflict.FD_VIOLATED,
    ("fd", "above"): StructuralConflict.FD_VIOLATED,
}


class StructureRepairPlanner:
    """Phase-2 half of the structure module: plan ordered cleaning tasks."""

    def __init__(self, max_steps_factor: int = 10) -> None:
        self.max_steps_factor = max_steps_factor

    # -- state construction ---------------------------------------------

    def _build_states(
        self,
        scenario: IntegrationScenario,
        correspondences: CorrespondenceSet,
        violations: list[StructureViolation],
    ) -> dict[tuple[str, str, str], VirtualRelationship]:
        target_schema = scenario.target.schema
        states: dict[tuple[str, str, str], VirtualRelationship] = {}
        for target_table in correspondences.target_relations():
            if not target_schema.has_relation(target_table):
                continue
            for attribute in correspondences.mapped_target_attributes(
                target_table
            ):
                forward = (
                    Cardinality.of(1)
                    if target_schema.is_not_null(target_table, attribute)
                    else Cardinality.of(0, 1)
                )
                backward = (
                    Cardinality.of(1)
                    if target_schema.is_unique(target_table, attribute)
                    else Cardinality.of(1, None)
                )
                for direction, prescribed in (
                    ("forward", forward),
                    ("backward", backward),
                ):
                    state = VirtualRelationship(
                        relation=target_table,
                        attribute=attribute,
                        direction=direction,
                        prescribed=prescribed,
                        actual=prescribed,
                    )
                    states[state.key] = state
            for fk in target_schema.foreign_keys_of(target_table):
                for attribute in fk.attributes:
                    state = VirtualRelationship(
                        relation=target_table,
                        attribute=attribute,
                        direction="equality",
                        prescribed=Cardinality.of(1),
                        actual=Cardinality.of(1),
                    )
                    states[state.key] = state

        # Functional dependencies: one "fd" state per target FD whose
        # determinant and dependent are both mapped.
        from ...relational.constraints import FunctionalDependencyConstraint

        for constraint in target_schema.constraints:
            if not isinstance(constraint, FunctionalDependencyConstraint):
                continue
            mapped = correspondences.mapped_target_attributes(
                constraint.relation
            )
            if (
                constraint.determinant not in mapped
                or constraint.dependent not in mapped
            ):
                continue
            state = VirtualRelationship(
                relation=constraint.relation,
                attribute=f"{constraint.determinant}->{constraint.dependent}",
                direction="fd",
                prescribed=Cardinality.of(0, 1),
                actual=Cardinality.of(0, 1),
            )
            states[state.key] = state

        # Composite key constraints (n-ary uniqueness, Lemma 3): one
        # backward state per composite whose components are all mapped.
        from ...relational.constraints import PrimaryKey, Unique

        for constraint in target_schema.constraints:
            if not isinstance(constraint, (Unique, PrimaryKey)):
                continue
            if len(constraint.attributes) < 2:
                continue
            mapped = correspondences.mapped_target_attributes(
                constraint.relation
            )
            if not set(constraint.attributes) <= set(mapped):
                continue
            label = "(" + ", ".join(constraint.attributes) + ")"
            state = VirtualRelationship(
                relation=constraint.relation,
                attribute=label,
                direction="backward",
                prescribed=Cardinality.of(1),
                actual=Cardinality.of(1),
            )
            states[state.key] = state

        # Seed below/above and actual cardinalities from detector findings.
        for violation in violations:
            direction = _direction_of(violation.conflict)
            key = (violation.target_relation, violation.target_attribute, direction)
            state = states.get(key)
            if state is None:
                continue
            state.scope = max(state.scope, violation.scope)
            state.actual = Cardinality.parse(violation.inferred)
            if violation.conflict in (
                StructuralConflict.NOT_NULL_VIOLATED,
                StructuralConflict.VALUE_WITHOUT_ENCLOSING_TUPLE,
                StructuralConflict.FK_VIOLATED,
            ):
                state.below += violation.violation_count
            else:
                state.above += violation.violation_count
        return states

    # -- main loop --------------------------------------------------------

    def plan(
        self,
        scenario: IntegrationScenario,
        correspondences: CorrespondenceSet,
        violations: list[StructureViolation],
        quality: ResultQuality,
    ) -> list[Task]:
        states = self._build_states(scenario, correspondences, violations)
        tasks: list[Task] = []
        applied: set[tuple[tuple[str, str, str], str, TaskType]] = set()
        budget = self.max_steps_factor * (len(violations) + len(states)) + 20
        steps = 0
        while True:
            violated = sorted(
                (state for state in states.values() if state.is_violated),
                key=lambda state: state.key,
            )
            if not violated:
                break
            steps += 1
            if steps > budget:
                raise InfiniteCleaningLoopError(
                    "repair simulation exceeded its step budget; the last "
                    f"pending violations were: "
                    f"{[state.key for state in violated[:5]]}"
                )
            state = violated[0]
            side = "below" if state.below > 0 else "above"
            conflict = _CONFLICT_OF[(state.direction, side)]
            task_type = STRUCTURE_TASK_CATALOGUE[conflict][quality]
            signature = (state.key, side, task_type)
            if signature in applied:
                raise InfiniteCleaningLoopError(
                    f"contradicting repair tasks: {task_type} on "
                    f"{state.relation}.{state.attribute} ({side}) is needed "
                    "again after having been applied — the cleaning tasks "
                    "form a cycle"
                )
            applied.add(signature)
            tasks.append(self._make_task(state, side, task_type, quality))
            self._apply(states, state, side, task_type)
        return tasks

    # -- task construction ------------------------------------------------

    def _make_task(
        self,
        state: VirtualRelationship,
        side: str,
        task_type: TaskType,
        quality: ResultQuality,
    ) -> Task:
        count = state.below if side == "below" else state.above
        subject = (
            state.relation
            if task_type is TaskType.ADD_TUPLES
            else f"{state.relation}.{state.attribute}"
        )
        return Task(
            type=task_type,
            quality=quality,
            subject=subject,
            parameters={
                "repetitions": count,
                "values": count,
                "scope": state.scope,
            },
            module="structure",
        )

    # -- effect simulation --------------------------------------------------

    def _apply(
        self,
        states: dict[tuple[str, str, str], VirtualRelationship],
        state: VirtualRelationship,
        side: str,
        task_type: TaskType,
    ) -> None:
        """Mutate the virtual CSG instance per the applied task's effects."""
        count = state.below if side == "below" else state.above
        state.narrow_to_prescribed()

        def sibling_forwards(exclude_attribute: str):
            for other in states.values():
                if (
                    other.relation == state.relation
                    and other.direction == "forward"
                    and other.attribute != exclude_attribute
                ):
                    yield other

        if task_type in (TaskType.ADD_TUPLES, TaskType.CREATE_ENCLOSING_TUPLES):
            # New tuples only carry the detached value: every *other*
            # mandatory attribute of the relation starts out empty (Fig. 5b).
            for other in sibling_forwards(state.attribute):
                if other.prescribed.min and other.prescribed.min > 0:
                    other.widen_low(count)
        elif task_type is TaskType.SET_VALUES_TO_NULL:
            # Nulling duplicated/conflicting values removes them from
            # their tuples; for an FD repair the nulls land in the
            # dependent attribute.
            attribute = state.attribute
            if state.direction == "fd" and "->" in attribute:
                attribute = attribute.split("->", 1)[1]
            forward = states.get((state.relation, attribute, "forward"))
            if forward is not None and forward.prescribed.min:
                forward.widen_low(count)
        elif task_type is TaskType.AGGREGATE_TUPLES:
            # Merged tuples may carry conflicting values in other attributes.
            for other in sibling_forwards(state.attribute):
                if other.prescribed.is_bounded and other.prescribed.max == 1:
                    other.above += count
                    if not other.actual.is_empty:
                        other.actual = Cardinality(
                            [Interval(other.actual.min or 0, None)]
                        )
        elif task_type is TaskType.DELETE_DANGLING_VALUES:
            # Deleting the dangling FK values leaves NULLs behind.
            forward = states.get((state.relation, state.attribute, "forward"))
            if forward is not None and forward.prescribed.min:
                forward.widen_low(count)
        elif task_type is TaskType.ADD_REFERENCED_VALUES:
            # The referenced relation gains skeleton tuples; its other
            # mandatory attributes are initially empty.  (The referenced
            # relation is unknown here without the FK edge; modelled as a
            # no-op side effect beyond fixing the equality relationship.)
            pass
        # REJECT_TUPLES, ADD_MISSING_VALUES, KEEP_ANY_VALUE, MERGE_VALUES,
        # DROP_DETACHED_VALUES, DELETE_DANGLING_TUPLES and
        # UNLINK_ALL_BUT_ONE_TUPLE repair their relationship without
        # breaking others.


def _direction_of(conflict: StructuralConflict) -> str:
    if conflict in (
        StructuralConflict.NOT_NULL_VIOLATED,
        StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES,
    ):
        return "forward"
    if conflict is StructuralConflict.FK_VIOLATED:
        return "equality"
    if conflict is StructuralConflict.FD_VIOLATED:
        return "fd"
    return "backward"


class StructureModule(EstimationModule):
    """The pluggable structure module: detector + repair planner."""

    name = "structure"

    def __init__(
        self,
        max_path_length: int = DEFAULT_MAX_PATH_LENGTH,
        use_conciseness: bool = True,
    ) -> None:
        self.detector = StructureConflictDetector(
            max_path_length=max_path_length,
            use_conciseness=use_conciseness,
        )
        self.planner = StructureRepairPlanner()

    def assess(self, scenario: IntegrationScenario) -> StructureComplexityReport:
        violations: list[StructureViolation] = []
        for source, correspondences in scenario.pairs():
            violations.extend(
                self.detector.detect(source, scenario.target, correspondences)
            )
        return StructureComplexityReport(violations)

    def plan(
        self,
        scenario: IntegrationScenario,
        report: StructureComplexityReport,
        quality: ResultQuality,
    ) -> list[Task]:
        tasks: list[Task] = []
        for source, correspondences in scenario.pairs():
            source_violations = [
                violation
                for violation in report.violations
                if violation.source_database == source.name
            ]
            tasks.extend(
                self.planner.plan(
                    scenario, correspondences, source_violations, quality
                )
            )
        return tasks
