"""The three estimation modules shipped with EFES (Section 3.2)."""

from .mapping import MappingModule, join_closure
from .structure import (
    InfiniteCleaningLoopError,
    StructureConflictDetector,
    StructureModule,
    StructureRepairPlanner,
    VirtualRelationship,
)
from .values import (
    DEFAULT_FIT_THRESHOLD,
    FitBreakdown,
    ValueFitDetector,
    ValueModule,
    ValueTransformationPlanner,
    make_drop_instead_of_add,
    weighted_fit,
)

__all__ = [
    "DEFAULT_FIT_THRESHOLD",
    "FitBreakdown",
    "InfiniteCleaningLoopError",
    "MappingModule",
    "StructureConflictDetector",
    "StructureModule",
    "StructureRepairPlanner",
    "ValueFitDetector",
    "ValueModule",
    "ValueTransformationPlanner",
    "VirtualRelationship",
    "join_closure",
    "make_drop_instead_of_add",
    "weighted_fit",
]
