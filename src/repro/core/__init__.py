"""EFES — the Effort Estimation framework (Section 3).

The public entry points:

* :func:`default_efes` — the framework with the paper's three modules and
  Table 9 execution settings,
* :class:`Efes` — assemble your own module set (extensibility),
* :class:`AttributeCountingBaseline` — the comparison baseline [14],
* :mod:`~repro.core.calibration` — the rmse metric and cross-domain
  calibration of Section 6.2.
"""

from .baseline import (
    HARDEN_TASKS,
    HOURS_PER_ATTRIBUTE,
    MAPPING_SHARE,
    AttributeCountingBaseline,
    BaselineEstimate,
)
from .calibration import (
    ComparisonRow,
    DomainResult,
    EstimateSummary,
    combined_rmse,
    optimal_scale,
    relative_rmse,
)
from .effort import (
    EffortEstimate,
    ExecutionSettings,
    TaskEffort,
    constant,
    default_execution_settings,
    linear,
    per_unit,
    price_tasks,
    threshold_per_unit,
    tool_assisted_settings,
)
from .framework import (
    AssessmentOutcome,
    Efes,
    EstimationModule,
    TaskAdjustment,
)
from .modules import (
    InfiniteCleaningLoopError,
    MappingModule,
    StructureModule,
    ValueModule,
    make_drop_instead_of_add,
)
from .quality import ResultQuality
from .reports import (
    REPORT_TYPES,
    ComplexityReport,
    MappingComplexityReport,
    MappingConnection,
    StructureComplexityReport,
    StructureViolation,
    ValueComplexityReport,
    ValueHeterogeneityFinding,
)
from .serialize import (
    SerializationError,
    estimate_from_dict,
    estimate_to_dict,
    report_from_dict,
    report_to_dict,
    reports_from_dict,
    reports_to_dict,
    task_from_dict,
    task_to_dict,
    tasks_from_dicts,
    tasks_to_dicts,
)
from .tasks import (
    STRUCTURE_TASK_CATALOGUE,
    VALUE_TASK_CATALOGUE,
    StructuralConflict,
    Task,
    TaskCategory,
    TaskType,
    ValueHeterogeneity,
)


def default_modules() -> list[EstimationModule]:
    """The paper's three estimation modules, in report order."""
    return [MappingModule(), StructureModule(), ValueModule()]


def default_efes(
    settings: ExecutionSettings | None = None,
    runtime=None,
    strict: bool | None = None,
) -> Efes:
    """EFES with the shipped modules and (by default) Table 9 settings.

    ``runtime`` optionally binds a dedicated :class:`repro.runtime.Runtime`
    (executor backend + profile cache + metrics); by default the
    process-wide runtime is used.  ``strict`` fixes the framework's
    failure policy: ``True`` fails fast everywhere, ``False`` degrades
    everywhere, ``None`` keeps the per-method defaults (fail-fast for
    ``assess``/``plan``/``estimate``, graceful for ``run``).
    """
    return Efes(default_modules(), settings, runtime=runtime, strict=strict)


__all__ = [
    "AssessmentOutcome",
    "AttributeCountingBaseline",
    "BaselineEstimate",
    "ComparisonRow",
    "ComplexityReport",
    "DomainResult",
    "Efes",
    "EffortEstimate",
    "EstimateSummary",
    "EstimationModule",
    "ExecutionSettings",
    "HARDEN_TASKS",
    "HOURS_PER_ATTRIBUTE",
    "InfiniteCleaningLoopError",
    "MAPPING_SHARE",
    "MappingComplexityReport",
    "MappingConnection",
    "MappingModule",
    "REPORT_TYPES",
    "ResultQuality",
    "STRUCTURE_TASK_CATALOGUE",
    "SerializationError",
    "StructuralConflict",
    "StructureComplexityReport",
    "StructureModule",
    "StructureViolation",
    "Task",
    "TaskAdjustment",
    "TaskCategory",
    "TaskEffort",
    "TaskType",
    "VALUE_TASK_CATALOGUE",
    "ValueComplexityReport",
    "ValueHeterogeneity",
    "ValueHeterogeneityFinding",
    "ValueModule",
    "combined_rmse",
    "constant",
    "default_efes",
    "default_execution_settings",
    "default_modules",
    "estimate_from_dict",
    "estimate_to_dict",
    "linear",
    "make_drop_instead_of_add",
    "optimal_scale",
    "per_unit",
    "price_tasks",
    "relative_rmse",
    "report_from_dict",
    "report_to_dict",
    "reports_from_dict",
    "reports_to_dict",
    "task_from_dict",
    "task_to_dict",
    "tasks_from_dicts",
    "tasks_to_dicts",
    "threshold_per_unit",
    "tool_assisted_settings",
]
