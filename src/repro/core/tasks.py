"""The task model: typed integration/cleaning tasks (Sections 3.4, 4.2, 5.2).

"Each estimation module has to provide a task planner that consumes its
data complexity report and outputs tasks to overcome the reported issues.
Each of these tasks is of a certain type, is expected to deliver a certain
result quality, and comprises an arbitrary set of parameters."

The task-type catalogue merges Table 4 (structural conflicts), Table 7
(value heterogeneities) and Table 9 (every task the effort functions
price, including the mapping task).
"""

from __future__ import annotations

import dataclasses
import enum
from collections.abc import Mapping

from .quality import ResultQuality


class TaskCategory(enum.Enum):
    """The effort breakdown categories of Figures 6 and 7."""

    MAPPING = "Mapping"
    CLEANING_STRUCTURE = "Cleaning (Structure)"
    CLEANING_VALUES = "Cleaning (Values)"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class TaskType(enum.Enum):
    """All task types known to the shipped modules (Tables 4, 7, 9)."""

    # Mapping module
    WRITE_MAPPING = "Write mapping"

    # Structure repair (Table 4 + the extra tasks priced in Table 9)
    REJECT_TUPLES = "Reject tuples"
    ADD_MISSING_VALUES = "Add missing values"
    SET_VALUES_TO_NULL = "Set values to null"
    AGGREGATE_TUPLES = "Aggregate tuples"
    KEEP_ANY_VALUE = "Keep any value"
    MERGE_VALUES = "Merge values"
    DROP_DETACHED_VALUES = "Delete detached values"
    CREATE_ENCLOSING_TUPLES = "Create enclosing tuples"
    ADD_TUPLES = "Add tuples"
    DELETE_DANGLING_VALUES = "Delete dangling values"
    ADD_REFERENCED_VALUES = "Add referenced values"
    DELETE_DANGLING_TUPLES = "Delete dangling tuples"
    UNLINK_ALL_BUT_ONE_TUPLE = "Unlink all but one tuple"

    # Value transformation (Table 7)
    ADD_VALUES = "Add values"
    DROP_VALUES = "Drop values"
    CONVERT_VALUES = "Convert values"
    GENERALIZE_VALUES = "Generalize values"
    REFINE_VALUES = "Refine values"
    AGGREGATE_VALUES = "Aggregate values"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_CATEGORY_BY_TYPE: dict[TaskType, TaskCategory] = {
    TaskType.WRITE_MAPPING: TaskCategory.MAPPING,
    TaskType.REJECT_TUPLES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.ADD_MISSING_VALUES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.SET_VALUES_TO_NULL: TaskCategory.CLEANING_STRUCTURE,
    TaskType.AGGREGATE_TUPLES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.KEEP_ANY_VALUE: TaskCategory.CLEANING_STRUCTURE,
    TaskType.MERGE_VALUES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.DROP_DETACHED_VALUES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.CREATE_ENCLOSING_TUPLES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.ADD_TUPLES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.DELETE_DANGLING_VALUES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.ADD_REFERENCED_VALUES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.DELETE_DANGLING_TUPLES: TaskCategory.CLEANING_STRUCTURE,
    TaskType.UNLINK_ALL_BUT_ONE_TUPLE: TaskCategory.CLEANING_STRUCTURE,
    TaskType.ADD_VALUES: TaskCategory.CLEANING_VALUES,
    TaskType.DROP_VALUES: TaskCategory.CLEANING_VALUES,
    TaskType.CONVERT_VALUES: TaskCategory.CLEANING_VALUES,
    TaskType.GENERALIZE_VALUES: TaskCategory.CLEANING_VALUES,
    TaskType.REFINE_VALUES: TaskCategory.CLEANING_VALUES,
    TaskType.AGGREGATE_VALUES: TaskCategory.CLEANING_VALUES,
}


@dataclasses.dataclass(frozen=True)
class Task:
    """One planned integration/cleaning task.

    ``subject`` names the affected schema element (e.g. ``records.title``);
    ``parameters`` carries the effort-function inputs such as
    ``repetitions``, ``values``, ``distinct_values``, ``tables``,
    ``attributes``, ``primary_keys``, ``foreign_keys``.
    """

    type: TaskType
    quality: ResultQuality
    subject: str
    parameters: Mapping[str, float] = dataclasses.field(default_factory=dict)
    module: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", dict(self.parameters))

    @property
    def category(self) -> TaskCategory:
        return _CATEGORY_BY_TYPE[self.type]

    def parameter(self, name: str, default: float = 0.0) -> float:
        return float(self.parameters.get(name, default))

    @property
    def repetitions(self) -> float:
        return self.parameter("repetitions", 1.0)

    def describe(self) -> str:
        subject = f" ({self.subject})" if self.subject else ""
        return f"{self.type}{subject}"


# ----------------------------------------------------------------------
# Catalogues (Tables 4 and 7)
# ----------------------------------------------------------------------


class StructuralConflict(enum.Enum):
    """The structural conflict classes of Table 4.

    ``FD_VIOLATED`` extends the paper's Table 4: functional dependencies
    are expressible in CSGs through composed relationships ("prescribing
    cardinalities not only to atomic but also to complex relationships
    further allows to express [...] functional dependencies", §4.1); the
    corresponding cleaning tasks follow the Table 4 pattern.
    """

    NOT_NULL_VIOLATED = "Not null violated"
    UNIQUE_VIOLATED = "Unique violated"
    MULTIPLE_ATTRIBUTE_VALUES = "Multiple attribute values"
    VALUE_WITHOUT_ENCLOSING_TUPLE = "Value w/o enclosing tuple"
    FK_VIOLATED = "FK violated"
    FD_VIOLATED = "FD violated"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Table 4 — "Structural conflicts and their corresponding cleaning tasks".
STRUCTURE_TASK_CATALOGUE: dict[
    StructuralConflict, dict[ResultQuality, TaskType]
] = {
    StructuralConflict.NOT_NULL_VIOLATED: {
        ResultQuality.LOW_EFFORT: TaskType.REJECT_TUPLES,
        ResultQuality.HIGH_QUALITY: TaskType.ADD_MISSING_VALUES,
    },
    StructuralConflict.UNIQUE_VIOLATED: {
        ResultQuality.LOW_EFFORT: TaskType.SET_VALUES_TO_NULL,
        ResultQuality.HIGH_QUALITY: TaskType.AGGREGATE_TUPLES,
    },
    StructuralConflict.MULTIPLE_ATTRIBUTE_VALUES: {
        ResultQuality.LOW_EFFORT: TaskType.KEEP_ANY_VALUE,
        ResultQuality.HIGH_QUALITY: TaskType.MERGE_VALUES,
    },
    StructuralConflict.VALUE_WITHOUT_ENCLOSING_TUPLE: {
        ResultQuality.LOW_EFFORT: TaskType.DROP_DETACHED_VALUES,
        ResultQuality.HIGH_QUALITY: TaskType.ADD_TUPLES,
    },
    StructuralConflict.FK_VIOLATED: {
        ResultQuality.LOW_EFFORT: TaskType.DELETE_DANGLING_VALUES,
        ResultQuality.HIGH_QUALITY: TaskType.ADD_REFERENCED_VALUES,
    },
    StructuralConflict.FD_VIOLATED: {
        ResultQuality.LOW_EFFORT: TaskType.SET_VALUES_TO_NULL,
        ResultQuality.HIGH_QUALITY: TaskType.AGGREGATE_VALUES,
    },
}


class ValueHeterogeneity(enum.Enum):
    """The value heterogeneity classes of Algorithm 1 / Table 7."""

    TOO_FEW_ELEMENTS = "Too few elements"
    DIFFERENT_REPRESENTATIONS_CRITICAL = "Different representations (critical)"
    DIFFERENT_REPRESENTATIONS = "Different representations"
    TOO_FINE_GRAINED = "Too fine-grained source values"
    TOO_COARSE_GRAINED = "Too coarse-grained source values"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Table 7 — "Value heterogeneities and corresponding cleaning tasks".
#: ``None`` means the heterogeneity is simply ignored at that quality
#: level ("for a low-effort integration result, value heterogeneities can
#: in most cases be simply ignored").
VALUE_TASK_CATALOGUE: dict[
    ValueHeterogeneity, dict[ResultQuality, TaskType | None]
] = {
    ValueHeterogeneity.TOO_FEW_ELEMENTS: {
        ResultQuality.LOW_EFFORT: None,
        ResultQuality.HIGH_QUALITY: TaskType.ADD_VALUES,
    },
    ValueHeterogeneity.DIFFERENT_REPRESENTATIONS_CRITICAL: {
        ResultQuality.LOW_EFFORT: TaskType.DROP_VALUES,
        ResultQuality.HIGH_QUALITY: TaskType.CONVERT_VALUES,
    },
    ValueHeterogeneity.DIFFERENT_REPRESENTATIONS: {
        ResultQuality.LOW_EFFORT: None,
        ResultQuality.HIGH_QUALITY: TaskType.CONVERT_VALUES,
    },
    # "Too specific → Generalize values; Too general → Refine values".
    ValueHeterogeneity.TOO_FINE_GRAINED: {
        ResultQuality.LOW_EFFORT: None,
        ResultQuality.HIGH_QUALITY: TaskType.GENERALIZE_VALUES,
    },
    ValueHeterogeneity.TOO_COARSE_GRAINED: {
        ResultQuality.LOW_EFFORT: None,
        ResultQuality.HIGH_QUALITY: TaskType.REFINE_VALUES,
    },
}
