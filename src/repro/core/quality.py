"""Expected result quality (Section 3.4).

"We defined two instances of expected quality, namely low effort (removal
of tuples) and high quality (updates)."  The task planners branch on this
to choose between alternative cleaning tasks (Example 3.5).
"""

from __future__ import annotations

import enum


class ResultQuality(enum.Enum):
    """The expected quality of the integration result."""

    LOW_EFFORT = "low_effort"
    HIGH_QUALITY = "high_quality"

    @property
    def label(self) -> str:
        return "low eff." if self is ResultQuality.LOW_EFFORT else "high qual."

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value
