"""Data complexity reports (Section 3.3).

"The goal of this first phase is to compute data complexity reports for
the integration scenario. [...] There is no formal definition for such a
report; rather, it can be tailored to the specific, needed complexity
indicators."  Each shipped module defines its own report shape below; all
of them render as plain tables for the granularity requirement.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Mapping

from .tasks import StructuralConflict, ValueHeterogeneity


class ComplexityReport:
    """Base class of all module reports — only for isinstance dispatch."""

    module: str = ""

    def is_empty(self) -> bool:
        raise NotImplementedError


# ----------------------------------------------------------------------
# Mapping module (Table 2)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class MappingConnection:
    """One target table × source database connection (Section 3.3).

    "every connection can be described in terms of certain metrics, such
    as the number of source tables to be queried, the number of attributes
    that must be copied, and whether new IDs for a primary key need to be
    generated."  ``foreign_keys`` counts the source FKs the connection
    traverses (the join conditions of the mapping query).
    """

    target_table: str
    source_database: str
    source_tables: int
    attributes: int
    needs_primary_key: bool
    foreign_keys: int = 0

    def as_row(self) -> tuple[str, int, int, str]:
        return (
            self.target_table,
            self.source_tables,
            self.attributes,
            "yes" if self.needs_primary_key else "no",
        )


@dataclasses.dataclass
class MappingComplexityReport(ComplexityReport):
    """Table 2 — the mapping complexity report."""

    connections: list[MappingConnection]
    module: str = "mapping"

    def is_empty(self) -> bool:
        return not self.connections

    def total_tables(self) -> int:
        return sum(connection.source_tables for connection in self.connections)

    def total_attributes(self) -> int:
        return sum(connection.attributes for connection in self.connections)

    def total_primary_keys(self) -> int:
        return sum(
            1 for connection in self.connections if connection.needs_primary_key
        )

    def total_foreign_keys(self) -> int:
        return sum(connection.foreign_keys for connection in self.connections)


# ----------------------------------------------------------------------
# Structure module (Table 3)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StructureViolation:
    """One structural conflict, with the violation count in the source data.

    ``constraint`` is the prescribed target cardinality in the paper's
    notation (e.g. ``κ(ρ_records→artist) = 1``); ``conflict`` classifies it
    per Table 4; ``violation_count`` counts actually conflicting source
    elements; ``scope`` tells how many elements feed the constraint at all
    (used by planners for per-tuple task parameters).
    """

    source_database: str
    target_relationship: str
    conflict: StructuralConflict
    prescribed: str
    inferred: str
    violation_count: int
    scope: int
    target_relation: str = ""
    target_attribute: str = ""

    def describe(self) -> str:
        return (
            f"κ({self.target_relationship}) = {self.prescribed}, "
            f"source offers {self.inferred}: "
            f"{self.violation_count} violating element(s)"
        )


@dataclasses.dataclass
class StructureComplexityReport(ComplexityReport):
    """Table 3 — the complexity report of the structure conflict detector."""

    violations: list[StructureViolation]
    module: str = "structure"

    def is_empty(self) -> bool:
        return not any(v.violation_count for v in self.violations)

    def total_violations(self) -> int:
        return sum(violation.violation_count for violation in self.violations)

    def by_conflict(self) -> dict[StructuralConflict, int]:
        totals: dict[StructuralConflict, int] = {}
        for violation in self.violations:
            totals[violation.conflict] = (
                totals.get(violation.conflict, 0) + violation.violation_count
            )
        return totals


# ----------------------------------------------------------------------
# Value module (Table 6)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ValueHeterogeneityFinding:
    """One detected value heterogeneity with its additional parameters.

    Table 6's "additional parameters" are carried in ``parameters``
    (``values``, ``distinct_values``, plus per-rule details such as the
    overall fit value).
    """

    source_database: str
    source_attribute: str
    target_attribute: str
    heterogeneity: ValueHeterogeneity
    parameters: Mapping[str, float]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parameters", dict(self.parameters))

    def describe(self) -> str:
        return (
            f"{self.heterogeneity} ({self.source_attribute} -> "
            f"{self.target_attribute})"
        )


@dataclasses.dataclass
class ValueComplexityReport(ComplexityReport):
    """Table 6 — the complexity report of the value fit detector."""

    findings: list[ValueHeterogeneityFinding]
    module: str = "values"

    def is_empty(self) -> bool:
        return not self.findings

    def by_heterogeneity(self) -> dict[ValueHeterogeneity, int]:
        totals: dict[ValueHeterogeneity, int] = {}
        for finding in self.findings:
            totals[finding.heterogeneity] = (
                totals.get(finding.heterogeneity, 0) + 1
            )
        return totals


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

#: Report-kind registry used by :mod:`repro.core.serialize` to dispatch
#: deserialisation.  Keys are stable kind identifiers (for the shipped
#: modules they coincide with the module names); custom report classes
#: register through :func:`repro.core.serialize.register_report_codec`.
REPORT_TYPES: dict[str, type[ComplexityReport]] = {
    "mapping": MappingComplexityReport,
    "structure": StructureComplexityReport,
    "values": ValueComplexityReport,
}
