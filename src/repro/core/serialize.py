"""JSON (de)serialisation for the EFES deliverables.

Scenarios have had an on-disk format since the beginning
(:mod:`repro.scenarios.io`); the *outputs* of the pipeline — complexity
reports, planned task lists, and effort estimates — historically lived
only in memory.  The assessment service (:mod:`repro.service`) stores and
ships them over HTTP, so every shipped shape gets a lossless dict codec
here: ``X_to_dict(x)`` produces plain JSON-compatible data and
``X_from_dict(doc)`` restores an object that compares equal to the
original.

Report dispatch is open: custom report classes register themselves in
:data:`repro.core.reports.REPORT_TYPES` together with a codec pair via
:func:`register_report_codec`.
"""

from __future__ import annotations

import json
import zlib
from collections.abc import Callable, Mapping

from ..observability import Span
from ..observability import span_from_dict as _span_from_dict
from ..observability import span_to_dict as _span_to_dict
from .effort import EffortEstimate, TaskEffort
from .quality import ResultQuality
from .reports import (
    REPORT_TYPES,
    ComplexityReport,
    MappingComplexityReport,
    MappingConnection,
    StructureComplexityReport,
    StructureViolation,
    ValueComplexityReport,
    ValueHeterogeneityFinding,
)
from .tasks import StructuralConflict, Task, TaskType, ValueHeterogeneity


class SerializationError(ValueError):
    """A document or object cannot be (de)serialised."""


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------


def task_to_dict(task: Task) -> dict:
    return {
        "type": task.type.value,
        "quality": task.quality.value,
        "subject": task.subject,
        "parameters": dict(task.parameters),
        "module": task.module,
    }


def task_from_dict(doc: Mapping) -> Task:
    try:
        return Task(
            type=TaskType(doc["type"]),
            quality=ResultQuality(doc["quality"]),
            subject=doc["subject"],
            parameters=dict(doc.get("parameters", {})),
            module=doc.get("module", ""),
        )
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"malformed task document: {exc}") from exc


def tasks_to_dicts(tasks: list[Task]) -> list[dict]:
    return [task_to_dict(task) for task in tasks]


def tasks_from_dicts(docs: list[Mapping]) -> list[Task]:
    return [task_from_dict(doc) for doc in docs]


# ----------------------------------------------------------------------
# Complexity reports
# ----------------------------------------------------------------------


def _connection_to_dict(connection: MappingConnection) -> dict:
    return {
        "target_table": connection.target_table,
        "source_database": connection.source_database,
        "source_tables": connection.source_tables,
        "attributes": connection.attributes,
        "needs_primary_key": connection.needs_primary_key,
        "foreign_keys": connection.foreign_keys,
    }


def _connection_from_dict(doc: Mapping) -> MappingConnection:
    return MappingConnection(
        target_table=doc["target_table"],
        source_database=doc["source_database"],
        source_tables=doc["source_tables"],
        attributes=doc["attributes"],
        needs_primary_key=doc["needs_primary_key"],
        foreign_keys=doc.get("foreign_keys", 0),
    )


def _violation_to_dict(violation: StructureViolation) -> dict:
    return {
        "source_database": violation.source_database,
        "target_relationship": violation.target_relationship,
        "conflict": violation.conflict.value,
        "prescribed": violation.prescribed,
        "inferred": violation.inferred,
        "violation_count": violation.violation_count,
        "scope": violation.scope,
        "target_relation": violation.target_relation,
        "target_attribute": violation.target_attribute,
    }


def _violation_from_dict(doc: Mapping) -> StructureViolation:
    return StructureViolation(
        source_database=doc["source_database"],
        target_relationship=doc["target_relationship"],
        conflict=StructuralConflict(doc["conflict"]),
        prescribed=doc["prescribed"],
        inferred=doc["inferred"],
        violation_count=doc["violation_count"],
        scope=doc["scope"],
        target_relation=doc.get("target_relation", ""),
        target_attribute=doc.get("target_attribute", ""),
    )


def _finding_to_dict(finding: ValueHeterogeneityFinding) -> dict:
    return {
        "source_database": finding.source_database,
        "source_attribute": finding.source_attribute,
        "target_attribute": finding.target_attribute,
        "heterogeneity": finding.heterogeneity.value,
        "parameters": dict(finding.parameters),
    }


def _finding_from_dict(doc: Mapping) -> ValueHeterogeneityFinding:
    return ValueHeterogeneityFinding(
        source_database=doc["source_database"],
        source_attribute=doc["source_attribute"],
        target_attribute=doc["target_attribute"],
        heterogeneity=ValueHeterogeneity(doc["heterogeneity"]),
        parameters=dict(doc.get("parameters", {})),
    )


def _mapping_report_to_dict(report: MappingComplexityReport) -> dict:
    return {"connections": [_connection_to_dict(c) for c in report.connections]}


def _mapping_report_from_dict(doc: Mapping) -> MappingComplexityReport:
    return MappingComplexityReport(
        connections=[_connection_from_dict(c) for c in doc["connections"]]
    )


def _structure_report_to_dict(report: StructureComplexityReport) -> dict:
    return {"violations": [_violation_to_dict(v) for v in report.violations]}


def _structure_report_from_dict(doc: Mapping) -> StructureComplexityReport:
    return StructureComplexityReport(
        violations=[_violation_from_dict(v) for v in doc["violations"]]
    )


def _value_report_to_dict(report: ValueComplexityReport) -> dict:
    return {"findings": [_finding_to_dict(f) for f in report.findings]}


def _value_report_from_dict(doc: Mapping) -> ValueComplexityReport:
    return ValueComplexityReport(
        findings=[_finding_from_dict(f) for f in doc["findings"]]
    )


#: kind -> (encode body, decode body); the "kind" is the registry key of
#: :data:`repro.core.reports.REPORT_TYPES`.
_REPORT_CODECS: dict[
    str,
    tuple[Callable[[ComplexityReport], dict], Callable[[Mapping], ComplexityReport]],
] = {
    "mapping": (_mapping_report_to_dict, _mapping_report_from_dict),
    "structure": (_structure_report_to_dict, _structure_report_from_dict),
    "values": (_value_report_to_dict, _value_report_from_dict),
}


def register_report_codec(
    kind: str,
    report_type: type,
    encode: Callable[[ComplexityReport], dict],
    decode: Callable[[Mapping], ComplexityReport],
) -> None:
    """Register a custom report class for (de)serialisation dispatch."""
    REPORT_TYPES[kind] = report_type
    _REPORT_CODECS[kind] = (encode, decode)


def _kind_of(report: ComplexityReport) -> str:
    for kind, report_type in REPORT_TYPES.items():
        if type(report) is report_type:
            return kind
    raise SerializationError(
        f"unserialisable report type: {type(report).__name__} "
        "(register it with repro.core.serialize.register_report_codec)"
    )


def report_to_dict(report: ComplexityReport) -> dict:
    kind = _kind_of(report)
    encode, _ = _REPORT_CODECS[kind]
    return {"kind": kind, "module": report.module, **encode(report)}


def report_from_dict(doc: Mapping) -> ComplexityReport:
    kind = doc.get("kind")
    if kind not in _REPORT_CODECS:
        raise SerializationError(f"unknown report kind: {kind!r}")
    _, decode = _REPORT_CODECS[kind]
    report = decode(doc)
    if "module" in doc:
        report.module = doc["module"]
    return report


def reports_to_dict(reports: Mapping[str, ComplexityReport]) -> dict:
    """Encode a phase-1 result (module name -> report) preserving order."""
    return {name: report_to_dict(report) for name, report in reports.items()}


def reports_from_dict(doc: Mapping) -> dict[str, ComplexityReport]:
    return {name: report_from_dict(body) for name, body in doc.items()}


# ----------------------------------------------------------------------
# Effort estimates
# ----------------------------------------------------------------------


def estimate_to_dict(estimate: EffortEstimate) -> dict:
    return {
        "scenario_name": estimate.scenario_name,
        "quality": estimate.quality.value,
        "entries": [
            {"task": task_to_dict(entry.task), "minutes": entry.minutes}
            for entry in estimate.entries
        ],
        # Redundant with the entries, but convenient for API consumers
        # that only want the headline number; ignored on decode.
        "total_minutes": estimate.total_minutes,
    }


def estimate_from_dict(doc: Mapping) -> EffortEstimate:
    try:
        return EffortEstimate(
            scenario_name=doc["scenario_name"],
            quality=ResultQuality(doc["quality"]),
            entries=[
                TaskEffort(task_from_dict(entry["task"]), entry["minutes"])
                for entry in doc["entries"]
            ],
        )
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"malformed estimate document: {exc}") from exc


# ----------------------------------------------------------------------
# Trace spans
# ----------------------------------------------------------------------


def span_to_dict(span: Span) -> dict:
    """Encode a trace span tree (``Efes.run(trace=True)``, service job
    traces) as plain JSON-compatible data."""
    return _span_to_dict(span)


def span_from_dict(doc: Mapping) -> Span:
    """Restore a span tree; the inverse of :func:`span_to_dict`."""
    try:
        return _span_from_dict(dict(doc))
    except ValueError as exc:
        raise SerializationError(str(exc)) from exc


# ----------------------------------------------------------------------
# Journal records (write-ahead log lines of repro.durability)
# ----------------------------------------------------------------------
#
# The job journal is a JSONL write-ahead log: one record per line, each
# line self-verifying so a torn write (process killed mid-append) is
# detectable without trusting file length.  Line format::
#
#     <crc32 as 8 hex chars> <compact JSON object>\n
#
# The checksum covers exactly the JSON body.  A line is *complete* only
# when its trailing newline is present — a checksum that happens to
# survive truncation cannot make a partial record look whole.

#: Record types the job journal knows how to replay.
JOURNAL_RECORD_TYPES = ("submitted", "dispatched", "settled")


def journal_record_to_line(record: Mapping) -> str:
    """Encode one journal record as a checksummed JSONL line."""
    body = json.dumps(
        dict(record), sort_keys=True, ensure_ascii=False,
        separators=(",", ":"),
    )
    if "\n" in body or "\r" in body:  # json.dumps never emits raw newlines
        raise SerializationError("journal record serialised with a newline")
    checksum = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{checksum:08x} {body}\n"


def journal_record_from_line(line: str) -> dict:
    """Decode one complete journal line; raises on any damage.

    The caller strips nothing: the line must carry its checksum prefix,
    a single space, the JSON body, and (optionally) the trailing
    newline the encoder wrote.
    """
    text = line.rstrip("\n")
    if len(text) < 10 or text[8] != " ":
        raise SerializationError(
            f"journal line has no checksum prefix: {text[:32]!r}"
        )
    prefix, body = text[:8], text[9:]
    try:
        expected = int(prefix, 16)
    except ValueError as exc:
        raise SerializationError(
            f"journal checksum is not hex: {prefix!r}"
        ) from exc
    actual = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    if actual != expected:
        raise SerializationError(
            f"journal checksum mismatch: line says {prefix}, body hashes "
            f"to {actual:08x}"
        )
    try:
        record = json.loads(body)
    except ValueError as exc:  # pragma: no cover - crc already caught it
        raise SerializationError(
            f"journal body is not valid JSON: {exc}"
        ) from exc
    if not isinstance(record, dict):
        raise SerializationError("journal record is not an object")
    return record


def decode_journal_text(text: str) -> tuple[list[dict], int]:
    """Decode a journal segment with write-ahead-log truncation semantics.

    Returns ``(records, torn_lines)``: every record up to the first
    damaged or incomplete line, plus how many trailing lines were
    skipped.  Nothing after the first bad line is trusted — a torn or
    corrupted record invalidates the tail of its segment, exactly like a
    database WAL replay stopping at the first bad LSN.
    """
    records: list[dict] = []
    pieces = text.split("\n")
    # A well-formed segment ends with "\n", so the final piece is empty;
    # a non-empty final piece is a mid-append torn write.
    complete, tail = pieces[:-1], pieces[-1]
    torn = 1 if tail else 0
    for index, line in enumerate(complete):
        try:
            records.append(journal_record_from_line(line))
        except SerializationError:
            torn += len(complete) - index
            break
    return records, torn


# ----------------------------------------------------------------------
# JSON string convenience wrappers
# ----------------------------------------------------------------------


def dumps(doc: dict) -> str:
    """Canonical JSON used by the report store (stable key order)."""
    return json.dumps(doc, indent=2, sort_keys=True, ensure_ascii=False)


def loads(text: str) -> dict:
    return json.loads(text)
