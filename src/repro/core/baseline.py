"""The attribute-counting baseline estimator (Harden [14], Table 1).

"For the latter he uses the number of source attributes and assigns for
each attribute a weighted set of tasks.  In sum, he calculates slightly
more than 8 hours of work for each source attribute."

The baseline distinguishes mapping from cleaning effort by the nature of
Table 1's subtasks, "but relates them neither to integration problems nor
actual tasks" — it is a pure per-attribute rate, which is exactly why it
cannot see that an identical-schema scenario needs no cleaning (the s4-s4
discussion in Section 6.2).
"""

from __future__ import annotations

import dataclasses

from ..scenarios.scenario import IntegrationScenario
from .quality import ResultQuality

#: Table 1 — "Tasks and effort per attribute from [14]" (hours).
HARDEN_TASKS: tuple[tuple[str, float], ...] = (
    ("Requirements and Mapping", 2.0),
    ("High Level Design", 0.1),
    ("Technical Design", 0.5),
    ("Data Modeling", 1.0),
    ("Development and Unit Testing", 1.0),
    ("System Test", 0.5),
    ("User Acceptance Testing", 0.25),
    ("Production Support", 0.2),
    ("Tech Lead Support", 0.5),
    ("Project Management Support", 0.5),
    ("Product Owner Support", 0.5),
    ("Subject Matter Expert", 0.5),
    ("Data Steward Support", 0.5),
)

#: Subtasks attributed to the mapping share of the estimate; the remainder
#: is the cleaning share.
MAPPING_TASKS = frozenset(
    {
        "Requirements and Mapping",
        "High Level Design",
        "Technical Design",
        "Data Modeling",
    }
)

HOURS_PER_ATTRIBUTE = sum(hours for _, hours in HARDEN_TASKS)
MAPPING_SHARE = (
    sum(hours for name, hours in HARDEN_TASKS if name in MAPPING_TASKS)
    / HOURS_PER_ATTRIBUTE
)


@dataclasses.dataclass(frozen=True)
class BaselineEstimate:
    """The counting estimate: a total with a mapping/cleaning split."""

    scenario_name: str
    quality: ResultQuality
    total_minutes: float
    mapping_minutes: float
    cleaning_minutes: float
    attributes: int


class AttributeCountingBaseline:
    """Estimate effort as ``rate · #source attributes``.

    ``minutes_per_attribute`` defaults to Harden's 8.05 h; the experiments
    calibrate it against measured training data (Section 6.2), exactly as
    the paper does to give the baseline a fair chance.
    """

    name = "counting"

    def __init__(
        self,
        minutes_per_attribute: float = HOURS_PER_ATTRIBUTE * 60.0,
        mapping_share: float = MAPPING_SHARE,
    ) -> None:
        if minutes_per_attribute < 0:
            raise ValueError("minutes_per_attribute must be non-negative")
        if not 0.0 <= mapping_share <= 1.0:
            raise ValueError("mapping_share must be within [0, 1]")
        self.minutes_per_attribute = minutes_per_attribute
        self.mapping_share = mapping_share

    def estimate(
        self, scenario: IntegrationScenario, quality: ResultQuality
    ) -> BaselineEstimate:
        """The baseline ignores the expected quality: it has no concept of
        alternative cleaning tasks, only an attribute count."""
        attributes = scenario.total_source_attributes()
        total = self.minutes_per_attribute * attributes
        mapping = total * self.mapping_share
        return BaselineEstimate(
            scenario_name=scenario.name,
            quality=quality,
            total_minutes=total,
            mapping_minutes=mapping,
            cleaning_minutes=total - mapping,
            attributes=attributes,
        )

    def with_rate(self, minutes_per_attribute: float) -> "AttributeCountingBaseline":
        return AttributeCountingBaseline(
            minutes_per_attribute, self.mapping_share
        )
