"""Calibration and accuracy metrics (Section 6.2).

The paper compares estimators with the *relative* root-mean-square error

    rmse = sqrt( Σ_s ((measured(s) - estimated(s)) / measured(s))² / #scenarios )

and calibrates both EFES and the counting baseline by cross validation:
"We used the effort measurements from the bibliographic domain to
calibrate the parameters [...] for the estimation of the music domain
scenarios, and vice versa."

Both shipped estimators are *linear in one global parameter* (EFES's
settings scale, the baseline's per-attribute rate), so the least-squares
calibration has the closed form  s* = Σ(e·m/m²) / Σ(e²/m²)  over the
training pairs (estimate e at parameter 1, measurement m).
"""

from __future__ import annotations

import dataclasses
import math
from collections.abc import Sequence


def relative_rmse(
    measured: Sequence[float], estimated: Sequence[float]
) -> float:
    """The paper's rmse over paired measured/estimated efforts."""
    if len(measured) != len(estimated):
        raise ValueError("measured and estimated lengths differ")
    if not measured:
        raise ValueError("rmse of an empty scenario set is undefined")
    total = 0.0
    for m, e in zip(measured, estimated):
        if m == 0:
            raise ValueError("a measured effort of zero breaks relative rmse")
        total += ((m - e) / m) ** 2
    return math.sqrt(total / len(measured))


def optimal_scale(
    measured: Sequence[float], raw_estimates: Sequence[float]
) -> float:
    """The scale s minimising Σ((m - s·e)/m)² — closed-form least squares.

    Falls back to 1.0 when every raw estimate is zero (nothing to scale).
    """
    if len(measured) != len(raw_estimates):
        raise ValueError("measured and raw estimate lengths differ")
    numerator = 0.0
    denominator = 0.0
    for m, e in zip(measured, raw_estimates):
        if m == 0:
            raise ValueError("a measured effort of zero breaks calibration")
        numerator += e / m
        denominator += (e / m) ** 2
    if denominator == 0.0:
        return 1.0
    return numerator / denominator


@dataclasses.dataclass(frozen=True)
class EstimateSummary:
    """One estimator's output for one (scenario, quality) cell.

    ``breakdown`` maps category labels (Mapping / Cleaning (Structure) /
    Cleaning (Values) / Cleaning) to minutes — the stacked-bar segments of
    Figures 6 and 7.
    """

    estimator: str
    scenario_name: str
    quality_label: str
    total_minutes: float
    breakdown: dict[str, float]


@dataclasses.dataclass(frozen=True)
class ComparisonRow:
    """EFES vs measured vs counting for one (scenario, quality) cell."""

    scenario_name: str
    quality_label: str
    efes: EstimateSummary
    measured: EstimateSummary
    counting: EstimateSummary


@dataclasses.dataclass(frozen=True)
class DomainResult:
    """All comparison rows of one domain plus both rmse values."""

    domain: str
    rows: tuple[ComparisonRow, ...]
    efes_rmse: float
    counting_rmse: float

    @property
    def improvement_factor(self) -> float:
        """How many times more accurate EFES is than counting."""
        if self.efes_rmse == 0:
            return math.inf
        return self.counting_rmse / self.efes_rmse


def combined_rmse(results: Sequence[DomainResult]) -> tuple[float, float]:
    """(EFES rmse, counting rmse) pooled over all domains' scenarios."""
    measured: list[float] = []
    efes: list[float] = []
    counting: list[float] = []
    for result in results:
        for row in result.rows:
            measured.append(row.measured.total_minutes)
            efes.append(row.efes.total_minutes)
            counting.append(row.counting.total_minutes)
    return (
        relative_rmse(measured, efes),
        relative_rmse(measured, counting),
    )
