"""Deadlines and cooperative cancellation for the assessment pipeline.

The paper's premise is pricing work before doing it; this module applies
the same discipline to the estimator's own execution.  A job admitted
with a budget either finishes inside it or stops burning resources at
the next *checkpoint*, returning whatever partial estimate it earned.

Three pieces, mirroring the contextvars design of the Tracer:

``Deadline``
    An absolute point on the monotonic clock with ``remaining()`` /
    ``expired``.  Budgets are shipped across process boundaries as
    *remaining seconds* (never absolute times — the worker's clock is
    not ours) and re-anchored with :func:`remaining_scope`.

``CancelScope``
    Couples an optional deadline with an optional external cancel event
    (the scheduler passes the job's ``cancel_event``) plus the grace
    window the reaper honours.  ``activated()`` installs the scope in a
    contextvar so checkpoints anywhere below — detectors, profiling
    loops, dependency lattice search — observe it without plumbing.

``checkpoint(site)``
    The cooperative cancellation point.  With no active scope it is one
    contextvar read and a ``None`` check (gated <5% by
    ``bench_deadline_overhead.py``).  Under an active scope it is also
    the ``deadline.checkpoint`` fault site, so chaos schedules can
    stall exactly the code that is supposed to notice deadlines; the
    scope is re-checked *after* an injected delay so an overrun is
    noticed at this checkpoint, not the next one.

Cancellation raises :class:`OperationCancelled` (or its deadline
flavour :class:`DeadlineExceededError`); the engine's degradation
boundaries convert those into :class:`~repro.resilience.DegradedResult`
tombstones, which is what turns a timed-out run into a priced partial
estimate instead of a crash.  :class:`WorkerReapedError` marks the
non-cooperative path: a pool worker that ignored its shipped budget past
the grace window and was hard-killed by the executor's reaper.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time

from ..observability import tracing
from ..resilience.faults import fault_point

__all__ = [
    "DEFAULT_GRACE",
    "CancelScope",
    "Deadline",
    "DeadlineExceededError",
    "OperationCancelled",
    "WorkerReapedError",
    "checkpoint",
    "current_scope",
    "remaining_scope",
    "wire_deadline",
]

#: Seconds a cancelled computation gets to reach its next checkpoint
#: before the hard layers (scheduler grace reap, process-pool reaper)
#: take over.
DEFAULT_GRACE = 0.5


class OperationCancelled(Exception):
    """A checkpoint observed that the active scope was cancelled."""

    reason = "cancelled"

    def __init__(
        self, message: str = "operation cancelled", site: str = ""
    ) -> None:
        super().__init__(message)
        self.site = site


class DeadlineExceededError(OperationCancelled):
    """The active scope's deadline expired."""

    reason = "deadline"

    def __init__(
        self, message: str = "deadline exceeded", site: str = ""
    ) -> None:
        super().__init__(message, site)


class WorkerReapedError(DeadlineExceededError):
    """A pool worker overran deadline + grace and was hard-killed."""

    reason = "reaped"

    def __init__(
        self, message: str = "worker reaped past deadline", site: str = ""
    ) -> None:
        super().__init__(message, site)


class Deadline:
    """An absolute expiry on the monotonic clock."""

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now (clamped non-negative)."""
        return cls(time.monotonic() + max(0.0, float(seconds)))

    def remaining(self) -> float:
        """Seconds left; negative once expired."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


_SCOPE: contextvars.ContextVar["CancelScope | None"] = contextvars.ContextVar(
    "repro_cancel_scope", default=None
)


class CancelScope:
    """A deadline and/or cancel event observed by checkpoints below."""

    __slots__ = ("deadline", "cancel_event", "grace", "label")

    def __init__(
        self,
        deadline: Deadline | None = None,
        cancel_event: "threading.Event | None" = None,
        *,
        grace: float = DEFAULT_GRACE,
        label: str = "",
    ) -> None:
        self.deadline = deadline
        self.cancel_event = cancel_event
        self.grace = max(0.0, float(grace))
        self.label = label

    def cancel_reason(self) -> str | None:
        """``"deadline"``, ``"cancelled"``, or ``None`` if still live.

        Deadline wins over an external cancel: the scheduler sets the
        job's ``cancel_event`` when its deadline fires, and the partial
        -result settlement path needs to tell the two apart.
        """
        if self.deadline is not None and self.deadline.expired:
            return "deadline"
        if self.cancel_event is not None and self.cancel_event.is_set():
            return "cancelled"
        return None

    def remaining(self) -> float | None:
        """Seconds of budget left, or ``None`` for an unbounded scope."""
        if self.deadline is None:
            return None
        return max(0.0, self.deadline.remaining())

    @contextlib.contextmanager
    def activated(self):
        """Install this scope for the duration of the ``with`` block."""
        token = _SCOPE.set(self)
        try:
            yield self
        finally:
            _SCOPE.reset(token)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CancelScope(label={self.label!r}, deadline={self.deadline!r}, "
            f"grace={self.grace:g})"
        )


def current_scope() -> CancelScope | None:
    """The innermost active scope, or ``None``."""
    return _SCOPE.get()


def checkpoint(site: str = "", **context) -> None:
    """Cooperative cancellation point for the pipeline's hot loops.

    Raises :class:`DeadlineExceededError` /
    :class:`OperationCancelled` when the active scope is cancelled; a
    no-op (one contextvar read) when no scope is active.
    """
    scope = _SCOPE.get()
    if scope is None:
        return
    reason = scope.cancel_reason()
    if reason is None:
        # The named chaos site: injected delays model slow work landing
        # exactly where cancellation should be noticed.  Re-check after
        # the (possible) stall so an overrun aborts here, not one full
        # work unit later.
        fault_point("deadline.checkpoint", checkpoint=site, **context)
        reason = scope.cancel_reason()
    if reason is None:
        return
    where = site or "checkpoint"
    span = tracing.current_span()
    if span is not None:
        span.set_attribute("cancelled_at", where)
        span.set_attribute("cancel_reason", reason)
    if reason == "deadline":
        raise DeadlineExceededError(
            f"deadline exceeded at checkpoint {where!r}", site=where
        )
    raise OperationCancelled(
        f"operation cancelled at checkpoint {where!r}", site=where
    )


def wire_deadline() -> float | None:
    """The active scope's remaining budget, for shipping inside a task.

    Returns *remaining seconds* (monotonic clocks do not travel across
    process boundaries), or ``None`` when the run is unbounded.
    """
    scope = _SCOPE.get()
    if scope is None or scope.deadline is None:
        return None
    return max(0.0, scope.deadline.remaining())


@contextlib.contextmanager
def remaining_scope(seconds: float | None, *, label: str = ""):
    """Re-anchor a shipped budget against the local clock (worker side).

    ``None`` means unbounded: yields without installing a scope.
    """
    if seconds is None:
        yield None
        return
    scope = CancelScope(deadline=Deadline.after(seconds), label=label)
    with scope.activated():
        yield scope
