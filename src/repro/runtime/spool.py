"""A content-addressed on-disk spool for shipping scenarios to workers.

The process backend cannot hand scenarios to workers by reference, and
re-pickling a whole database per task would drown the speedup in IPC.
Instead the parent **spools** each scenario (or database) once, keyed by
its content fingerprint, and tasks carry only the fingerprint; workers
rehydrate from the spool and memoise the result process-locally, so a
worker deserialises each distinct scenario exactly once no matter how
many tasks it executes.

Durability discipline (same rules as :mod:`repro.durability`):

* **Atomic visibility** — files are written to a temp name in the spool
  directory, fsynced, then :func:`os.replace`'d into place, so a
  concurrent reader sees either the complete file or no file: torn
  reads are structurally impossible.
* **Checksummed content** — the first line is the SHA-256 of the
  payload; any other corruption (injected faults, disk trouble, a
  foreign writer) surfaces as :class:`SpoolCorruptionError`, never as a
  silently wrong scenario.  The caller's contract is to fall back to
  serial in-process execution, degrading gracefully.

Fault injection sites (:mod:`repro.resilience.faults`): ``spool.write``
(raise/delay before writing, ``corrupt`` mangles the payload after the
checksum is taken — so readers detect it) and ``spool.read``
(raise/delay before reading).

The spool directory defaults to ``$REPRO_SPOOL_DIR`` or a per-user
directory under the system temp dir; every entry is immutable once
written (content-addressed), so concurrent assessments share one spool
safely.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from ..resilience.faults import corrupt_text, fault_point
from .cache import fingerprint_database, fingerprint_scenario

#: Environment variable overriding the spool directory.
SPOOL_ENV_VAR = "REPRO_SPOOL_DIR"

#: Rehydrated objects memoised per process (shared by every spool
#: instance pointing at the same directory); bounded FIFO.
_MEMO_MAX_ENTRIES = 32
_memo: "OrderedDict[tuple[str, str, str], object]" = OrderedDict()
_memo_lock = threading.Lock()

_tmp_counter = itertools.count()

#: Process-local spool I/O accounting — bytes and operations, summed
#: over every :class:`ScenarioSpool` instance.  Workers report these in
#: their resource telemetry; the parent republishes them as gauges.
_stats_lock = threading.Lock()
_stats = {"reads": 0, "writes": 0, "bytes_read": 0, "bytes_written": 0}


def spool_stats() -> dict:
    """A copy of this process's cumulative spool I/O counters."""
    with _stats_lock:
        return dict(_stats)


def reset_spool_stats() -> None:
    """Zero the process-local spool counters (test isolation)."""
    with _stats_lock:
        for key in _stats:
            _stats[key] = 0


def _account(operation: str, byte_count: int, metrics=None) -> None:
    bytes_key = "bytes_written" if operation == "write" else "bytes_read"
    with _stats_lock:
        _stats[f"{operation}s"] += 1
        _stats[bytes_key] += byte_count
    if metrics is not None:
        metrics.increment(f"spool_{operation}s")
        metrics.increment(f"spool_{bytes_key}", by=byte_count)


class SpoolError(OSError):
    """Base class of spool failures."""


class SpoolMissError(SpoolError):
    """The requested fingerprint has no spool entry."""


class SpoolCorruptionError(SpoolError):
    """A spool entry exists but fails its checksum or cannot be parsed."""


def default_spool_directory() -> Path:
    """``$REPRO_SPOOL_DIR`` or a per-user directory under the temp dir."""
    override = os.environ.get(SPOOL_ENV_VAR)
    if override:
        return Path(override)
    uid = getattr(os, "getuid", lambda: "shared")()
    return Path(tempfile.gettempdir()) / f"repro-spool-{uid}"


def _write_atomic(path: Path, text: str) -> None:
    tmp = path.with_name(
        f".{path.name}.{os.getpid()}.{next(_tmp_counter)}.tmp"
    )
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class ScenarioSpool:
    """Content-addressed scenario/database storage shared with workers."""

    def __init__(
        self, directory: str | Path | None = None, metrics=None
    ) -> None:
        self.directory = Path(directory or default_spool_directory())
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Optional RuntimeMetrics mirroring the process-local I/O
        #: counters onto the owning runtime's counter set.
        self.metrics = metrics

    # -- paths -------------------------------------------------------------

    def _path(self, kind: str, fingerprint: str) -> Path:
        return self.directory / f"{kind}-{fingerprint}.json"

    # -- writing -----------------------------------------------------------

    def _put(
        self, kind: str, fingerprint: str, document: dict, force: bool
    ) -> None:
        path = self._path(kind, fingerprint)
        if not force and path.exists():
            return  # content-addressed: an existing entry is this entry
        fault_point("spool.write", kind=kind, fingerprint=fingerprint)
        payload = json.dumps(
            document, sort_keys=True, separators=(",", ":")
        )
        # Checksum *before* the corrupt hook: injected corruption must be
        # detectable downstream, exactly like real disk corruption.
        checksum = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        payload = corrupt_text(
            "spool.write", payload, kind=kind, fingerprint=fingerprint
        )
        text = f"{checksum}\n{payload}"
        try:
            _write_atomic(path, text)
        except OSError as exc:
            raise SpoolError(f"cannot write spool entry {path}: {exc}") from exc
        _account("write", len(text), self.metrics)

    def put_scenario(self, scenario, *, force: bool = False) -> str:
        """Spool a scenario; returns its content fingerprint (the task key)."""
        fingerprint = fingerprint_scenario(scenario)
        from ..scenarios.io import scenario_to_dict

        self._put("scn", fingerprint, scenario_to_dict(scenario), force)
        return fingerprint

    def put_database(self, database, *, force: bool = False) -> str:
        """Spool a single database; returns its content fingerprint."""
        fingerprint = fingerprint_database(database)
        from ..scenarios.io import database_to_dict

        self._put("db", fingerprint, database_to_dict(database), force)
        return fingerprint

    # -- reading -----------------------------------------------------------

    def _read_document(self, kind: str, fingerprint: str) -> dict:
        fault_point("spool.read", kind=kind, fingerprint=fingerprint)
        path = self._path(kind, fingerprint)
        try:
            raw = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise SpoolMissError(
                f"no spool entry for {kind}-{fingerprint} in {self.directory}"
            ) from None
        except OSError as exc:
            raise SpoolError(f"cannot read spool entry {path}: {exc}") from exc
        _account("read", len(raw), self.metrics)
        newline = raw.find("\n")
        if newline < 0:
            raise SpoolCorruptionError(f"spool entry {path} has no header")
        checksum, payload = raw[:newline], raw[newline + 1:]
        actual = hashlib.sha256(payload.encode("utf-8")).hexdigest()
        if actual != checksum:
            raise SpoolCorruptionError(
                f"spool entry {path} fails its checksum "
                f"(expected {checksum[:12]}…, got {actual[:12]}…)"
            )
        try:
            return json.loads(payload)
        except ValueError as exc:
            raise SpoolCorruptionError(
                f"spool entry {path} is not valid JSON: {exc}"
            ) from exc

    def _get(self, kind: str, fingerprint: str, rebuild):
        memo_key = (str(self.directory), kind, fingerprint)
        with _memo_lock:
            if memo_key in _memo:
                return _memo[memo_key]
        document = self._read_document(kind, fingerprint)
        from ..scenarios.io import ScenarioFormatError

        try:
            result = rebuild(document)
        except ScenarioFormatError as exc:
            raise SpoolCorruptionError(
                f"spool entry {kind}-{fingerprint} does not decode: {exc}"
            ) from exc
        with _memo_lock:
            _memo[memo_key] = result
            while len(_memo) > _MEMO_MAX_ENTRIES:
                _memo.popitem(last=False)
        return result

    def get_scenario(self, fingerprint: str):
        """Rehydrate a spooled scenario (process-locally memoised)."""
        from ..scenarios.io import scenario_from_dict

        return self._get("scn", fingerprint, scenario_from_dict)

    def get_database(self, fingerprint: str):
        """Rehydrate a spooled database (process-locally memoised)."""
        from ..scenarios.io import database_from_dict

        return self._get("db", fingerprint, database_from_dict)

    # -- maintenance -------------------------------------------------------

    def contains(self, kind: str, fingerprint: str) -> bool:
        return self._path(kind, fingerprint).exists()

    def clear(self) -> int:
        """Remove every spool entry (tests); returns the count removed."""
        removed = 0
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
        with _memo_lock:
            stale = [
                key for key in _memo if key[0] == str(self.directory)
            ]
            for key in stale:
                del _memo[key]
        return removed

    def __repr__(self) -> str:
        entries = len(list(self.directory.glob("*.json")))
        return f"ScenarioSpool({str(self.directory)!r}, {entries} entries)"


def clear_rehydration_memo() -> None:
    """Drop the process-local rehydration memo (test isolation)."""
    with _memo_lock:
        _memo.clear()
