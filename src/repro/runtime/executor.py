"""Pluggable task executors: one interface, serial and threaded backends.

EFES's phase-1 assessment fans out over independent units of work —
module detectors, per-column statistic bundles, per-relation dependency
discovery.  :class:`SerialExecutor` runs them inline (the reference
behaviour); :class:`ThreadedExecutor` runs them on a shared thread pool.
Both guarantee **deterministic result ordering**: ``map_ordered`` returns
results in submission order regardless of completion order, and the first
exception (in submission order) propagates to the caller.
"""

from __future__ import annotations

import contextvars
import os
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ThreadPoolExecutor


def auto_worker_count() -> int:
    """A sensible default pool size: one worker per core, at least two.

    Capped at 32 so that a many-core host does not spawn hundreds of
    threads for workloads whose units are small.
    """
    return max(2, min(32, os.cpu_count() or 1))


class Executor:
    """The executor interface the runtime engine programs against."""

    #: Stable backend identifier ("serial", "threads").
    name: str = "executor"
    #: Number of concurrent workers (1 for the serial backend).
    max_workers: int = 1

    def map_ordered(self, function: Callable, items: Iterable) -> list:
        """Apply ``function`` to every item; results in submission order."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release pooled resources; the executor stays usable afterwards."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.max_workers})"


class SerialExecutor(Executor):
    """Inline execution — the deterministic reference backend."""

    name = "serial"
    max_workers = 1

    def map_ordered(self, function: Callable, items: Iterable) -> list:
        return [function(item) for item in items]


class ThreadedExecutor(Executor):
    """A shared, lazily created thread pool.

    Two properties matter beyond raw fan-out:

    * **Context propagation** — each task runs in a
      :mod:`contextvars` context copied from the submitting thread, so
      the active runtime (and with it the cache and metrics) is visible
      inside workers.
    * **No nested fan-out** — a task that itself calls ``map_ordered``
      (e.g. a detector profiling a database column-by-column) runs its
      inner map serially.  Nested submission to a bounded pool can
      deadlock when all workers block waiting on sub-tasks that can no
      longer be scheduled.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be a positive integer, got {max_workers}"
            )
        self.max_workers = max_workers or auto_worker_count()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._local = threading.local()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-runtime",
                )
            return self._pool

    def _run_task(self, function: Callable, item) -> object:
        self._local.in_worker = True
        try:
            return function(item)
        finally:
            self._local.in_worker = False

    def map_ordered(self, function: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1 or getattr(self._local, "in_worker", False):
            return [function(item) for item in items]
        pool = self._ensure_pool()
        futures: Sequence[Future] = [
            pool.submit(
                contextvars.copy_context().run, self._run_task, function, item
            )
            for item in items
        ]
        # Collect in submission order; .result() re-raises the task's
        # exception, so the first failure (by submission order) wins.
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


def make_executor(
    backend: str = "serial", max_workers: int | None = None
) -> Executor:
    """Build a backend by name: ``serial``, ``threads``, or ``auto``.

    ``auto`` picks threads on multi-core hosts and serial otherwise —
    on a single core the pure-Python workload cannot overlap usefully.
    """
    if backend == "auto":
        backend = "threads" if (os.cpu_count() or 1) > 1 else "serial"
    if backend == "serial":
        return SerialExecutor()
    if backend == "threads":
        return ThreadedExecutor(max_workers=max_workers)
    raise ValueError(
        f"unknown executor backend {backend!r}; "
        "expected 'serial', 'threads', or 'auto'"
    )
