"""Pluggable task executors: serial, threaded, and process backends.

EFES's phase-1 assessment fans out over independent units of work —
module detectors, per-column statistic bundles, per-relation dependency
discovery.  :class:`SerialExecutor` runs them inline (the reference
behaviour); :class:`ThreadedExecutor` runs them on a shared thread pool;
:class:`ProcessExecutor` runs **picklable** task functions on a process
pool, escaping the GIL for the pure-Python profiling workload.  All
guarantee **deterministic result ordering**: results come back in
submission order regardless of completion order, and the first exception
(in submission order) propagates to the caller.

The process backend has one structural difference the engine honours via
``supports_closures``: arbitrary callables (closures over runtimes and
databases) cannot cross a process boundary, so ``map_ordered`` on a
:class:`ProcessExecutor` runs inline and the engine routes work through
:meth:`ProcessExecutor.run_tasks` with module-level worker functions
(:mod:`repro.runtime.workers`) and spool-fingerprint payloads instead.
"""

from __future__ import annotations

import contextvars
import multiprocessing
import os
import threading
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures import TimeoutError as _FutureTimeout
from concurrent.futures.process import BrokenProcessPool

from .deadline import WorkerReapedError, current_scope


def auto_worker_count() -> int:
    """A sensible default pool size: one worker per core, at least two.

    Capped at 32 so that a many-core host does not spawn hundreds of
    threads for workloads whose units are small.
    """
    return max(2, min(32, os.cpu_count() or 1))


class Executor:
    """The executor interface the runtime engine programs against."""

    #: Stable backend identifier ("serial", "threads", "process").
    name: str = "executor"
    #: Number of concurrent workers (1 for the serial backend).
    max_workers: int = 1
    #: Whether ``map_ordered`` can execute arbitrary callables
    #: concurrently.  False for the process backend, whose concurrency
    #: runs through ``run_tasks`` with picklable functions instead.
    supports_closures: bool = True

    def map_ordered(self, function: Callable, items: Iterable) -> list:
        """Apply ``function`` to every item; results in submission order."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release pooled resources; the executor stays usable afterwards."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.max_workers})"


class SerialExecutor(Executor):
    """Inline execution — the deterministic reference backend."""

    name = "serial"
    max_workers = 1

    def map_ordered(self, function: Callable, items: Iterable) -> list:
        return [function(item) for item in items]


class ThreadedExecutor(Executor):
    """A shared, lazily created thread pool.

    Two properties matter beyond raw fan-out:

    * **Context propagation** — each task runs in a
      :mod:`contextvars` context copied from the submitting thread, so
      the active runtime (and with it the cache and metrics) is visible
      inside workers.
    * **No nested fan-out** — a task that itself calls ``map_ordered``
      (e.g. a detector profiling a database column-by-column) runs its
      inner map serially.  Nested submission to a bounded pool can
      deadlock when all workers block waiting on sub-tasks that can no
      longer be scheduled.
    """

    name = "threads"

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be a positive integer, got {max_workers}"
            )
        self.max_workers = max_workers or auto_worker_count()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._local = threading.local()

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-runtime",
                )
            return self._pool

    def _run_task(self, function: Callable, item) -> object:
        self._local.in_worker = True
        try:
            return function(item)
        finally:
            self._local.in_worker = False

    def map_ordered(self, function: Callable, items: Iterable) -> list:
        items = list(items)
        if len(items) <= 1 or getattr(self._local, "in_worker", False):
            return [function(item) for item in items]
        pool = self._ensure_pool()
        futures: Sequence[Future] = [
            pool.submit(
                contextvars.copy_context().run, self._run_task, function, item
            )
            for item in items
        ]
        # Collect in submission order; .result() re-raises the task's
        # exception, so the first failure (by submission order) wins.
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


#: True inside a process-pool worker (set by the pool initializer); lets
#: code that forked with a process runtime active avoid nested pools.
_in_process_worker = False


def _mark_process_worker() -> None:
    global _in_process_worker
    _in_process_worker = True
    # A forked worker inherits the parent's already-resolved fault-plan
    # state; reset so the worker re-reads $REPRO_FAULT_PLAN itself.
    # In-memory plans (injected_faults) stay parent-local by design —
    # worker-side chaos is armed through the environment.
    from ..resilience.faults import reset_fault_plan

    reset_fault_plan()


def in_process_worker() -> bool:
    """Whether this interpreter is a process-pool worker."""
    return _in_process_worker


class ProcessExecutor(Executor):
    """A shared, lazily created process pool for picklable tasks.

    Scenario shipping stays cheap because task payloads carry **content
    fingerprints**, not data: the engine spools each scenario/database
    once (:mod:`repro.runtime.spool`) and workers rehydrate from disk
    with a process-local memo, so a worker deserialises each distinct
    input exactly once regardless of how many tasks it runs.

    * ``map_ordered`` runs inline — closures cannot cross the process
      boundary (``supports_closures`` is False); the engine calls
      :meth:`run_tasks` with module-level functions instead.
    * With one worker (or one task, or when already inside a worker)
      tasks run inline, so ``--workers 1`` pays no IPC tax at all.
    * A crashed worker (:class:`BrokenProcessPool`) discards the pool —
      the next dispatch starts a fresh one — and re-raises so the engine
      can fall back to serial in-process execution.

    The ``fork`` start method is preferred (no interpreter re-import per
    worker); hosts without it use the platform default.
    """

    name = "process"
    supports_closures = False

    def __init__(self, max_workers: int | None = None) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError(
                f"max_workers must be a positive integer, got {max_workers}"
            )
        self.max_workers = max_workers or auto_worker_count()
        self._pool: ProcessPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._dispatches = 0
        self._pooled_tasks = 0
        self._inline_tasks = 0
        self._peak_inflight = 0
        self._reaps = 0
        self._reaped_workers = 0

    def stats(self) -> dict:
        """Pool utilization counters for the resource-telemetry gauges."""
        with self._stats_lock:
            return {
                "max_workers": self.max_workers,
                "dispatches": self._dispatches,
                "pooled_tasks": self._pooled_tasks,
                "inline_tasks": self._inline_tasks,
                "peak_inflight": self._peak_inflight,
                "reaps": self._reaps,
                "reaped_workers": self._reaped_workers,
                "pool_live": self._pool is not None,
            }

    def _ensure_pool(self) -> ProcessPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                methods = multiprocessing.get_all_start_methods()
                context = multiprocessing.get_context(
                    "fork" if "fork" in methods else None
                )
                self._pool = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    mp_context=context,
                    initializer=_mark_process_worker,
                )
            return self._pool

    def map_ordered(self, function: Callable, items: Iterable) -> list:
        return [function(item) for item in items]

    def run_tasks(self, function: Callable, payloads: Iterable) -> list:
        """Run a module-level ``function`` over picklable ``payloads`` on
        the pool; results in submission order, first failure re-raised.

        Raises :class:`BrokenProcessPool` (after discarding the pool) if
        a worker dies mid-task; callers treat that as "fall back to
        serial", never as a wrong answer.
        """
        payloads = list(payloads)
        if (
            len(payloads) <= 1
            or self.max_workers == 1
            or _in_process_worker
        ):
            with self._stats_lock:
                self._inline_tasks += len(payloads)
            return [function(payload) for payload in payloads]
        pool = self._ensure_pool()
        with self._stats_lock:
            self._dispatches += 1
            self._pooled_tasks += len(payloads)
            self._peak_inflight = max(self._peak_inflight, len(payloads))
        try:
            futures: Sequence[Future] = [
                pool.submit(function, payload) for payload in payloads
            ]
            scope = current_scope()
            if scope is None or scope.deadline is None:
                return [future.result() for future in futures]
            return self._collect_with_deadline(futures, scope)
        except BrokenProcessPool:
            with self._pool_lock:
                if self._pool is not None:
                    self._pool.shutdown(wait=False, cancel_futures=True)
                    self._pool = None
            raise

    def _collect_with_deadline(self, futures: Sequence[Future], scope) -> list:
        """Collect results, hard-killing workers that overrun the grace.

        Workers normally self-abort at their shipped-budget checkpoints;
        this is the backstop for a *runaway* worker (stuck in an
        un-checkpointed loop or a blocking call).  Once the scope's
        deadline plus grace passes without the next result, every pool
        process is SIGKILLed and the pool discarded — the next dispatch
        builds a fresh one via the usual broken-pool replacement path —
        and :class:`WorkerReapedError` propagates to the engine.
        """
        results = []
        for future in futures:
            budget = scope.deadline.remaining() + scope.grace
            try:
                results.append(future.result(timeout=max(0.0, budget)))
            except _FutureTimeout:
                reaped = self._reap_pool()
                raise WorkerReapedError(
                    f"pool worker overran the deadline by more than "
                    f"{scope.grace:g}s grace; reaped {reaped} worker "
                    f"process(es)"
                ) from None
        return results

    def _reap_pool(self) -> int:
        """SIGKILL every pool worker process and discard the pool."""
        import signal

        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is None:
            return 0
        killed = 0
        for process in list(getattr(pool, "_processes", {}).values()):
            if process.is_alive():
                try:
                    os.kill(process.pid, signal.SIGKILL)
                    killed += 1
                except OSError:  # pragma: no cover - already exiting
                    pass
        pool.shutdown(wait=False, cancel_futures=True)
        with self._stats_lock:
            self._reaps += 1
            self._reaped_workers += killed
        return killed

    def shutdown(self) -> None:
        with self._pool_lock:
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None


def make_executor(
    backend: str = "serial", max_workers: int | None = None
) -> Executor:
    """Build a backend by name: ``serial``, ``threads``, ``process``, or
    ``auto``.

    ``auto`` picks threads on multi-core hosts and serial otherwise —
    on a single core the pure-Python workload cannot overlap usefully.
    """
    if backend == "auto":
        backend = "threads" if (os.cpu_count() or 1) > 1 else "serial"
    if backend == "serial":
        return SerialExecutor()
    if backend == "threads":
        return ThreadedExecutor(max_workers=max_workers)
    if backend == "process":
        return ProcessExecutor(max_workers=max_workers)
    raise ValueError(
        f"unknown executor backend {backend!r}; "
        "expected 'serial', 'threads', 'process', or 'auto'"
    )
