"""The shared assessment runtime: parallel execution, content-keyed
caching, and instrumentation for the EFES estimate pipeline.

Public surface:

* :class:`Runtime` — executor + :class:`ProfileCache` +
  :class:`RuntimeMetrics` behind one object; pass one to
  :class:`repro.core.Efes` (or activate it) to control how assessments
  execute,
* :func:`default_runtime` / :func:`get_runtime` /
  :func:`set_default_runtime` — the process-wide default and the
  active-runtime resolution used by the profiling entry points,
* :func:`make_executor` — ``serial`` / ``threads`` / ``process`` /
  ``auto`` backends with deterministic result ordering,
* :class:`ScenarioSpool` — the content-addressed on-disk spool the
  process backend ships scenarios to workers through.
"""

from .cache import ProfileCache, fingerprint_database, fingerprint_scenario
from .deadline import (
    CancelScope,
    Deadline,
    DeadlineExceededError,
    OperationCancelled,
    WorkerReapedError,
    checkpoint,
    current_scope,
    remaining_scope,
    wire_deadline,
)
from .engine import (
    BACKEND_ENV_VAR,
    Runtime,
    default_runtime,
    get_runtime,
    set_default_runtime,
)
from .executor import (
    Executor,
    ProcessExecutor,
    SerialExecutor,
    ThreadedExecutor,
    auto_worker_count,
    in_process_worker,
    make_executor,
)
from .metrics import MetricsSnapshot, RuntimeMetrics, StageTiming
from .spool import (
    SPOOL_ENV_VAR,
    ScenarioSpool,
    SpoolCorruptionError,
    SpoolError,
    SpoolMissError,
)

__all__ = [
    "BACKEND_ENV_VAR",
    "CancelScope",
    "Deadline",
    "DeadlineExceededError",
    "Executor",
    "MetricsSnapshot",
    "OperationCancelled",
    "ProcessExecutor",
    "ProfileCache",
    "Runtime",
    "RuntimeMetrics",
    "SPOOL_ENV_VAR",
    "ScenarioSpool",
    "SerialExecutor",
    "SpoolCorruptionError",
    "SpoolError",
    "SpoolMissError",
    "StageTiming",
    "ThreadedExecutor",
    "WorkerReapedError",
    "auto_worker_count",
    "checkpoint",
    "current_scope",
    "default_runtime",
    "fingerprint_database",
    "fingerprint_scenario",
    "get_runtime",
    "in_process_worker",
    "make_executor",
    "remaining_scope",
    "set_default_runtime",
    "wire_deadline",
]
