"""Lightweight runtime instrumentation.

The assessment runtime (ROADMAP: "as fast as the hardware allows") needs
to be observable before it can be tuned: every :class:`RuntimeMetrics`
instance collects named counters (cache hits/misses, detector runs, task
counts), per-stage timings, and labelled log-scale **histograms**
(:mod:`repro.observability.histograms`) so latency distributions —
p50/p95/p99 per stage, per detector, per service-job phase — survive
aggregation.  All operations are thread-safe because the threaded
executor updates them from worker threads.

Stage timings distinguish three numbers that diverge under concurrency:

* ``seconds`` — summed per-call *work* time (can exceed elapsed time),
* ``wall_seconds`` — elapsed *latency* from the first concurrent entry
  to the last exit of the stage,
* ``max_seconds`` — the longest single call.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

from ..observability.histograms import Histogram, HistogramSnapshot


@dataclasses.dataclass
class StageTiming:
    """Accumulated timing of one named pipeline stage.

    For stages executed concurrently ``seconds`` sums the per-task times
    and so can exceed elapsed time — it measures *work*.  The latency
    view is ``wall_seconds`` (time from first entry to last exit across
    overlapping calls) and ``max_seconds`` (worst single call).
    """

    calls: int = 0
    seconds: float = 0.0
    max_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable copy of the metrics at one point in time.

    ``timestamp`` (unix seconds) lets two scrapes of the service's
    ``/metrics`` endpoint be diffed into rates.
    """

    counters: dict[str, int]
    stages: dict[str, StageTiming]
    histograms: tuple[HistogramSnapshot, ...] = ()
    timestamp: float = 0.0

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def histogram(self, name: str, **labels) -> HistogramSnapshot | None:
        """The snapshot of one histogram series, if it was recorded."""
        wanted = tuple(sorted(labels.items()))
        for histogram in self.histograms:
            if histogram.name == name and histogram.labels == wanted:
                return histogram
        return None

    def to_dict(self) -> dict:
        """A JSON-compatible rendering (used by the service's /metrics)."""
        return {
            "timestamp": self.timestamp,
            "counters": dict(self.counters),
            "stages": {
                name: {
                    "calls": timing.calls,
                    "seconds": timing.seconds,
                    "mean_seconds": timing.mean_seconds,
                    "max_seconds": timing.max_seconds,
                    "wall_seconds": timing.wall_seconds,
                }
                for name, timing in self.stages.items()
            },
            "histograms": [
                histogram.to_dict() for histogram in self.histograms
            ],
        }


class RuntimeMetrics:
    """Thread-safe counters, stage timings, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._stages: dict[str, StageTiming] = {}
        #: Wall-clock bookkeeping per stage: [active_calls, entered_perf].
        self._stage_active: dict[str, list] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- counters --------------------------------------------------------

    def increment(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- cache accounting -------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.counter("cache_hits")

    @property
    def cache_misses(self) -> int:
        return self.counter("cache_misses")

    @property
    def cache_hit_rate(self) -> float:
        hits, misses = self.cache_hits, self.cache_misses
        total = hits + misses
        return hits / total if total else 0.0

    # -- histograms -------------------------------------------------------

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into the named histogram series.

        Labels distinguish series within a family, Prometheus-style:
        ``observe("detector_seconds", 0.2, detector="mapping")``.
        """
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(
                    name, labels=key[1]
                )
        histogram.observe(value)

    def histogram(self, name: str, **labels) -> HistogramSnapshot | None:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            histogram = self._histograms.get(key)
        return histogram.snapshot() if histogram is not None else None

    # -- stage timings ----------------------------------------------------

    def record_stage(self, name: str, seconds: float) -> None:
        with self._lock:
            timing = self._stages.get(name)
            if timing is None:
                timing = self._stages[name] = StageTiming()
            timing.calls += 1
            timing.seconds += seconds
            if seconds > timing.max_seconds:
                timing.max_seconds = seconds
        self.observe("stage_seconds", seconds, stage=name)

    @contextmanager
    def time_stage(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        with self._lock:
            active = self._stage_active.get(name)
            if active is None or active[0] == 0:
                self._stage_active[name] = [1, started]
            else:
                active[0] += 1
        try:
            yield
        finally:
            ended = time.perf_counter()
            self.record_stage(name, ended - started)
            with self._lock:
                active = self._stage_active[name]
                active[0] -= 1
                if active[0] == 0:
                    timing = self._stages[name]
                    timing.wall_seconds += ended - active[1]

    def stage(self, name: str) -> StageTiming:
        with self._lock:
            timing = self._stages.get(name, StageTiming())
            return dataclasses.replace(timing)

    # -- inspection -------------------------------------------------------

    def is_empty(self) -> bool:
        with self._lock:
            return not self._counters and not self._stages

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            histograms = list(self._histograms.values())
            return MetricsSnapshot(
                counters=dict(self._counters),
                stages={
                    name: dataclasses.replace(timing)
                    for name, timing in self._stages.items()
                },
                histograms=tuple(
                    histogram.snapshot() for histogram in histograms
                ),
                timestamp=time.time(),
            )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._stages.clear()
            self._stage_active.clear()
            self._histograms.clear()

    def render(self) -> str:
        """A plain-text summary, printed by the CLI and bench conftest."""
        snapshot = self.snapshot()
        lines = ["Runtime metrics"]
        if snapshot.counters:
            lines.append("  counters:")
            for name in sorted(snapshot.counters):
                lines.append(f"    {name:24s} {snapshot.counters[name]}")
            hits = snapshot.counter("cache_hits")
            misses = snapshot.counter("cache_misses")
            if hits + misses:
                lines.append(
                    f"    {'cache_hit_rate':24s} {hits / (hits + misses):.1%}"
                )
        if snapshot.stages:
            lines.append("  stages (work | wall latency | worst call):")
            for name in sorted(snapshot.stages):
                timing = snapshot.stages[name]
                lines.append(
                    f"    {name:24s} {timing.seconds:8.3f}s | "
                    f"{timing.wall_seconds:8.3f}s | "
                    f"{timing.max_seconds:8.3f}s over {timing.calls} call(s)"
                )
        latency_histograms = [
            h for h in snapshot.histograms if h.count and h.name != "stage_seconds"
        ]
        if latency_histograms:
            lines.append("  latency distributions (p50 / p95 / p99):")
            for histogram in latency_histograms:
                label = ",".join(f"{k}={v}" for k, v in histogram.labels)
                name = f"{histogram.name}{{{label}}}" if label else histogram.name
                lines.append(
                    f"    {name:36s} {histogram.p50:8.4f}s / "
                    f"{histogram.p95:8.4f}s / {histogram.p99:8.4f}s "
                    f"(n={histogram.count})"
                )
        if len(lines) == 1:
            lines.append("  (no activity recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        snapshot = self.snapshot()
        return (
            f"RuntimeMetrics({len(snapshot.counters)} counters, "
            f"{len(snapshot.stages)} stages, "
            f"{len(snapshot.histograms)} histogram series)"
        )
