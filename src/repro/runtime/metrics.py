"""Lightweight runtime instrumentation.

The assessment runtime (ROADMAP: "as fast as the hardware allows") needs
to be observable before it can be tuned: every :class:`RuntimeMetrics`
instance collects named counters (cache hits/misses, detector runs, task
counts), per-stage timings, and labelled log-scale **histograms**
(:mod:`repro.observability.histograms`) so latency distributions —
p50/p95/p99 per stage, per detector, per service-job phase — survive
aggregation.  All operations are thread-safe because the threaded
executor updates them from worker threads.

Stage timings distinguish three numbers that diverge under concurrency:

* ``seconds`` — summed per-call *work* time (can exceed elapsed time),
* ``wall_seconds`` — elapsed *latency* from the first concurrent entry
  to the last exit of the stage,
* ``max_seconds`` — the longest single call.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager

from ..observability.histograms import (
    DEFAULT_BOUNDS,
    Histogram,
    HistogramSnapshot,
)


@dataclasses.dataclass
class StageTiming:
    """Accumulated timing of one named pipeline stage.

    For stages executed concurrently ``seconds`` sums the per-task times
    and so can exceed elapsed time — it measures *work*.  The latency
    view is ``wall_seconds`` (time from first entry to last exit across
    overlapping calls) and ``max_seconds`` (worst single call).
    """

    calls: int = 0
    seconds: float = 0.0
    max_seconds: float = 0.0
    wall_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


#: Canonical key shape for one labelled metric series.
LabelSet = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable copy of the metrics at one point in time.

    ``timestamp`` (unix seconds) lets two scrapes of the service's
    ``/metrics`` endpoint be diffed into rates.  ``counters`` holds the
    unlabelled counters; labelled series (``process_fallbacks`` by
    ``reason``, worker gauges by ``pid``) live in ``counter_series`` and
    ``gauges`` as ``(name, labels, value)`` triples.
    """

    counters: dict[str, int]
    stages: dict[str, StageTiming]
    histograms: tuple[HistogramSnapshot, ...] = ()
    timestamp: float = 0.0
    counter_series: tuple[tuple[str, LabelSet, int], ...] = ()
    gauges: tuple[tuple[str, LabelSet, float], ...] = ()

    def counter(self, name: str, **labels) -> int:
        """The counter's value: one labelled series, or — with no labels
        given — the sum over the unlabelled counter and every series."""
        if labels:
            wanted = _label_key(labels)
            for series_name, series_labels, value in self.counter_series:
                if series_name == name and series_labels == wanted:
                    return value
            return 0
        total = self.counters.get(name, 0)
        for series_name, _, value in self.counter_series:
            if series_name == name:
                total += value
        return total

    def gauge(self, name: str, **labels) -> float | None:
        wanted = _label_key(labels)
        for gauge_name, gauge_labels, value in self.gauges:
            if gauge_name == name and gauge_labels == wanted:
                return value
        return None

    def histogram(self, name: str, **labels) -> HistogramSnapshot | None:
        """The snapshot of one histogram series, if it was recorded."""
        wanted = tuple(sorted(labels.items()))
        for histogram in self.histograms:
            if histogram.name == name and histogram.labels == wanted:
                return histogram
        return None

    def to_dict(self) -> dict:
        """A JSON-compatible rendering (used by the service's /metrics)."""
        return {
            "timestamp": self.timestamp,
            "counters": dict(self.counters),
            "counter_series": [
                {"name": name, "labels": dict(labels), "value": value}
                for name, labels, value in self.counter_series
            ],
            "gauges": [
                {"name": name, "labels": dict(labels), "value": value}
                for name, labels, value in self.gauges
            ],
            "stages": {
                name: {
                    "calls": timing.calls,
                    "seconds": timing.seconds,
                    "mean_seconds": timing.mean_seconds,
                    "max_seconds": timing.max_seconds,
                    "wall_seconds": timing.wall_seconds,
                }
                for name, timing in self.stages.items()
            },
            "histograms": [
                histogram.to_dict() for histogram in self.histograms
            ],
        }


def _histogram_from_dict(doc: dict) -> HistogramSnapshot | None:
    """Rebuild one histogram snapshot from its sparse JSON form.

    ``to_dict`` keeps only non-empty buckets; the counts vector is
    re-expanded against :data:`DEFAULT_BOUNDS`.  Histograms recorded
    with custom bounds cannot be reconstructed from the sparse form and
    yield ``None`` (the caller skips them).
    """
    bounds = DEFAULT_BOUNDS
    index_of = {bound: index for index, bound in enumerate(bounds)}
    index_of[float("inf")] = len(bounds)
    counts = [0] * (len(bounds) + 1)
    for bucket in doc.get("buckets", ()):
        index = index_of.get(float(bucket["le"]))
        if index is None:
            return None
        counts[index] = int(bucket["count"])
    count = int(doc.get("count", 0))
    return HistogramSnapshot(
        name=str(doc["name"]),
        labels=_label_key(doc.get("labels", {})),
        bounds=bounds,
        counts=tuple(counts),
        count=count,
        sum=float(doc.get("sum", 0.0)),
        min=float(doc.get("min", 0.0)) if count else 0.0,
        max=float(doc.get("max", 0.0)) if count else 0.0,
    )


def snapshot_from_dict(doc: dict) -> MetricsSnapshot:
    """The inverse of :meth:`MetricsSnapshot.to_dict`.

    Lets a snapshot cross a process boundary as JSON — a fleet worker
    ships ``snapshot().to_dict()`` inside its heartbeat and the
    supervisor rebuilds it here before handing it to
    :meth:`RuntimeMetrics.merge_snapshot` (or to
    ``merge_worker_telemetry`` for worker-labelled publication).
    Histogram series whose sparse bucket bounds are not the default
    log-scale ladder are dropped rather than misreconstructed; raises
    ``ValueError``/``KeyError``/``TypeError`` on a structurally torn
    document so callers can discard the whole blob.
    """
    histograms = []
    for histogram_doc in doc.get("histograms", ()):
        histogram = _histogram_from_dict(histogram_doc)
        if histogram is not None:
            histograms.append(histogram)
    return MetricsSnapshot(
        counters={
            str(name): int(value)
            for name, value in doc.get("counters", {}).items()
        },
        stages={
            str(name): StageTiming(
                calls=int(stage.get("calls", 0)),
                seconds=float(stage.get("seconds", 0.0)),
                max_seconds=float(stage.get("max_seconds", 0.0)),
                wall_seconds=float(stage.get("wall_seconds", 0.0)),
            )
            for name, stage in doc.get("stages", {}).items()
        },
        histograms=tuple(histograms),
        timestamp=float(doc.get("timestamp", 0.0)),
        counter_series=tuple(
            (
                str(series["name"]),
                _label_key(series.get("labels", {})),
                int(series["value"]),
            )
            for series in doc.get("counter_series", ())
        ),
        gauges=tuple(
            (
                str(series["name"]),
                _label_key(series.get("labels", {})),
                float(series["value"]),
            )
            for series in doc.get("gauges", ())
        ),
    )


class RuntimeMetrics:
    """Thread-safe counters, stage timings, and histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._counter_series: dict[tuple[str, LabelSet], int] = {}
        self._gauges: dict[tuple[str, LabelSet], float] = {}
        self._stages: dict[str, StageTiming] = {}
        #: Wall-clock bookkeeping per stage: [active_calls, entered_perf].
        self._stage_active: dict[str, list] = {}
        self._histograms: dict[tuple, Histogram] = {}

    # -- counters --------------------------------------------------------

    def increment(self, name: str, by: int = 1, **labels) -> None:
        """Bump a counter; labels select a series within the family
        (``increment("process_fallbacks", reason="spool_io")``)."""
        if labels:
            key = (name, _label_key(labels))
            with self._lock:
                self._counter_series[key] = (
                    self._counter_series.get(key, 0) + by
                )
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str, **labels) -> int:
        """One labelled series, or — without labels — the family total
        (unlabelled counter plus every labelled series)."""
        with self._lock:
            if labels:
                return self._counter_series.get((name, _label_key(labels)), 0)
            total = self._counters.get(name, 0)
            for (series_name, _), value in self._counter_series.items():
                if series_name == name:
                    total += value
            return total

    # -- gauges -----------------------------------------------------------

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set a point-in-time gauge (worker RSS, pool utilisation, SLO
        burn rate); last write wins."""
        with self._lock:
            self._gauges[(name, _label_key(labels))] = float(value)

    def gauge(self, name: str, **labels) -> float | None:
        with self._lock:
            return self._gauges.get((name, _label_key(labels)))

    # -- cache accounting -------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.counter("cache_hits")

    @property
    def cache_misses(self) -> int:
        return self.counter("cache_misses")

    @property
    def cache_hit_rate(self) -> float:
        hits, misses = self.cache_hits, self.cache_misses
        total = hits + misses
        return hits / total if total else 0.0

    # -- histograms -------------------------------------------------------

    def observe(self, name: str, value: float, **labels) -> None:
        """Record one observation into the named histogram series.

        Labels distinguish series within a family, Prometheus-style:
        ``observe("detector_seconds", 0.2, detector="mapping")``.
        """
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            histogram = self._histograms.get(key)
            if histogram is None:
                histogram = self._histograms[key] = Histogram(
                    name, labels=key[1]
                )
        histogram.observe(value)

    def histogram(self, name: str, **labels) -> HistogramSnapshot | None:
        key = (name, tuple(sorted(labels.items())))
        with self._lock:
            histogram = self._histograms.get(key)
        return histogram.snapshot() if histogram is not None else None

    # -- stage timings ----------------------------------------------------

    def record_stage(self, name: str, seconds: float) -> None:
        with self._lock:
            timing = self._stages.get(name)
            if timing is None:
                timing = self._stages[name] = StageTiming()
            timing.calls += 1
            timing.seconds += seconds
            if seconds > timing.max_seconds:
                timing.max_seconds = seconds
        self.observe("stage_seconds", seconds, stage=name)

    @contextmanager
    def time_stage(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        with self._lock:
            active = self._stage_active.get(name)
            if active is None or active[0] == 0:
                self._stage_active[name] = [1, started]
            else:
                active[0] += 1
        try:
            yield
        finally:
            ended = time.perf_counter()
            self.record_stage(name, ended - started)
            with self._lock:
                active = self._stage_active[name]
                active[0] -= 1
                if active[0] == 0:
                    timing = self._stages[name]
                    timing.wall_seconds += ended - active[1]

    def stage(self, name: str) -> StageTiming:
        with self._lock:
            timing = self._stages.get(name, StageTiming())
            return dataclasses.replace(timing)

    # -- inspection -------------------------------------------------------

    def is_empty(self) -> bool:
        with self._lock:
            return (
                not self._counters
                and not self._counter_series
                and not self._stages
                and not self._histograms
            )

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            histograms = list(self._histograms.values())
            return MetricsSnapshot(
                counters=dict(self._counters),
                stages={
                    name: dataclasses.replace(timing)
                    for name, timing in self._stages.items()
                },
                histograms=tuple(
                    histogram.snapshot() for histogram in histograms
                ),
                timestamp=time.time(),
                counter_series=tuple(
                    (name, labels, value)
                    for (name, labels), value in sorted(
                        self._counter_series.items()
                    )
                ),
                gauges=tuple(
                    (name, labels, value)
                    for (name, labels), value in sorted(self._gauges.items())
                ),
            )

    def merge_snapshot(self, snapshot: MetricsSnapshot) -> None:
        """Fold another instance's snapshot into this one.

        The parent-side half of cross-process telemetry: a worker ships a
        :class:`MetricsSnapshot` of its process-local metrics and the
        parent adds counters, accumulates stage timings (work sums and
        call counts add; ``max_seconds`` takes the max — ``wall_seconds``
        also adds, so it reads as per-process elapsed, not fleet
        latency), and merges histograms bucket-wise.  Gauges are *not*
        merged — they are point-in-time and per-process; worker resource
        gauges are published separately under a ``pid`` label.
        """
        for name, value in snapshot.counters.items():
            if value:
                self.increment(name, by=value)
        for name, labels, value in snapshot.counter_series:
            if value:
                key = (name, labels)
                with self._lock:
                    self._counter_series[key] = (
                        self._counter_series.get(key, 0) + value
                    )
        for name, timing in snapshot.stages.items():
            with self._lock:
                mine = self._stages.get(name)
                if mine is None:
                    mine = self._stages[name] = StageTiming()
                mine.calls += timing.calls
                mine.seconds += timing.seconds
                mine.wall_seconds += timing.wall_seconds
                if timing.max_seconds > mine.max_seconds:
                    mine.max_seconds = timing.max_seconds
        for histogram_snapshot in snapshot.histograms:
            key = (histogram_snapshot.name, histogram_snapshot.labels)
            with self._lock:
                histogram = self._histograms.get(key)
                if histogram is None:
                    histogram = self._histograms[key] = Histogram(
                        histogram_snapshot.name,
                        labels=histogram_snapshot.labels,
                        bounds=histogram_snapshot.bounds,
                    )
            histogram.merge(histogram_snapshot)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._counter_series.clear()
            self._gauges.clear()
            self._stages.clear()
            self._stage_active.clear()
            self._histograms.clear()

    def render(self) -> str:
        """A plain-text summary, printed by the CLI and bench conftest."""
        snapshot = self.snapshot()
        lines = ["Runtime metrics"]
        if snapshot.counters:
            lines.append("  counters:")
            for name in sorted(snapshot.counters):
                lines.append(f"    {name:24s} {snapshot.counters[name]}")
            hits = snapshot.counter("cache_hits")
            misses = snapshot.counter("cache_misses")
            if hits + misses:
                lines.append(
                    f"    {'cache_hit_rate':24s} {hits / (hits + misses):.1%}"
                )
        if snapshot.counter_series:
            lines.append("  labelled counters:")
            for name, labels, value in snapshot.counter_series:
                rendered = ",".join(f"{k}={v}" for k, v in labels)
                lines.append(f"    {name}{{{rendered}}} {value}")
        if snapshot.stages:
            lines.append("  stages (work | wall latency | worst call):")
            for name in sorted(snapshot.stages):
                timing = snapshot.stages[name]
                lines.append(
                    f"    {name:24s} {timing.seconds:8.3f}s | "
                    f"{timing.wall_seconds:8.3f}s | "
                    f"{timing.max_seconds:8.3f}s over {timing.calls} call(s)"
                )
        latency_histograms = [
            h for h in snapshot.histograms if h.count and h.name != "stage_seconds"
        ]
        if latency_histograms:
            lines.append("  latency distributions (p50 / p95 / p99):")
            for histogram in latency_histograms:
                label = ",".join(f"{k}={v}" for k, v in histogram.labels)
                name = f"{histogram.name}{{{label}}}" if label else histogram.name
                lines.append(
                    f"    {name:36s} {histogram.p50:8.4f}s / "
                    f"{histogram.p95:8.4f}s / {histogram.p99:8.4f}s "
                    f"(n={histogram.count})"
                )
        if len(lines) == 1:
            lines.append("  (no activity recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        snapshot = self.snapshot()
        return (
            f"RuntimeMetrics({len(snapshot.counters)} counters, "
            f"{len(snapshot.stages)} stages, "
            f"{len(snapshot.histograms)} histogram series)"
        )
