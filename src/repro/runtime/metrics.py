"""Lightweight runtime instrumentation.

The assessment runtime (ROADMAP: "as fast as the hardware allows") needs
to be observable before it can be tuned: every :class:`RuntimeMetrics`
instance collects named counters (cache hits/misses, detector runs, task
counts) and per-stage wall-clock timings.  All operations are thread-safe
because the threaded executor updates them from worker threads.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from collections.abc import Iterator
from contextlib import contextmanager


@dataclasses.dataclass
class StageTiming:
    """Accumulated wall-clock time of one named pipeline stage.

    For stages executed concurrently the total sums the per-task times,
    so it can exceed elapsed wall-clock time — it measures *work*, not
    latency.
    """

    calls: int = 0
    seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.seconds / self.calls if self.calls else 0.0


@dataclasses.dataclass(frozen=True)
class MetricsSnapshot:
    """An immutable copy of the metrics at one point in time."""

    counters: dict[str, int]
    stages: dict[str, StageTiming]

    def counter(self, name: str) -> int:
        return self.counters.get(name, 0)

    def to_dict(self) -> dict:
        """A JSON-compatible rendering (used by the service's /metrics)."""
        return {
            "counters": dict(self.counters),
            "stages": {
                name: {"calls": timing.calls, "seconds": timing.seconds}
                for name, timing in self.stages.items()
            },
        }


class RuntimeMetrics:
    """Thread-safe counters and stage timings for the assessment runtime."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._stages: dict[str, StageTiming] = {}

    # -- counters --------------------------------------------------------

    def increment(self, name: str, by: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + by

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    # -- cache accounting -------------------------------------------------

    @property
    def cache_hits(self) -> int:
        return self.counter("cache_hits")

    @property
    def cache_misses(self) -> int:
        return self.counter("cache_misses")

    @property
    def cache_hit_rate(self) -> float:
        hits, misses = self.cache_hits, self.cache_misses
        total = hits + misses
        return hits / total if total else 0.0

    # -- stage timings ----------------------------------------------------

    def record_stage(self, name: str, seconds: float) -> None:
        with self._lock:
            timing = self._stages.get(name)
            if timing is None:
                timing = self._stages[name] = StageTiming()
            timing.calls += 1
            timing.seconds += seconds

    @contextmanager
    def time_stage(self, name: str) -> Iterator[None]:
        started = time.perf_counter()
        try:
            yield
        finally:
            self.record_stage(name, time.perf_counter() - started)

    def stage(self, name: str) -> StageTiming:
        with self._lock:
            timing = self._stages.get(name, StageTiming())
            return StageTiming(timing.calls, timing.seconds)

    # -- inspection -------------------------------------------------------

    def is_empty(self) -> bool:
        with self._lock:
            return not self._counters and not self._stages

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            return MetricsSnapshot(
                counters=dict(self._counters),
                stages={
                    name: StageTiming(t.calls, t.seconds)
                    for name, t in self._stages.items()
                },
            )

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._stages.clear()

    def render(self) -> str:
        """A plain-text summary, printed by the CLI and bench conftest."""
        snapshot = self.snapshot()
        lines = ["Runtime metrics"]
        if snapshot.counters:
            lines.append("  counters:")
            for name in sorted(snapshot.counters):
                lines.append(f"    {name:24s} {snapshot.counters[name]}")
            hits = snapshot.counter("cache_hits")
            misses = snapshot.counter("cache_misses")
            if hits + misses:
                lines.append(
                    f"    {'cache_hit_rate':24s} {hits / (hits + misses):.1%}"
                )
        if snapshot.stages:
            lines.append("  stages (accumulated work, not latency):")
            for name in sorted(snapshot.stages):
                timing = snapshot.stages[name]
                lines.append(
                    f"    {name:24s} {timing.seconds:8.3f}s over "
                    f"{timing.calls} call(s)"
                )
        if len(lines) == 1:
            lines.append("  (no activity recorded)")
        return "\n".join(lines)

    def __repr__(self) -> str:
        snapshot = self.snapshot()
        return (
            f"RuntimeMetrics({len(snapshot.counters)} counters, "
            f"{len(snapshot.stages)} stages)"
        )
