"""Process-pool worker entry points.

Every function here is module-level (picklable **by reference** — the
pool ships only the qualified name) and takes one tuple payload whose
first two elements are ``(spool_directory, content_fingerprint)``; the
worker rehydrates the scenario or database from the shared spool
(:mod:`repro.runtime.spool`), which memoises per process, and runs the
same pure computation the serial backend would run in-process.

Two invariants make the process backend bit-equivalent to the serial
oracle:

* workers execute the **same functions** over **value-identical**
  rehydrated inputs (the columnar codec is exact), and
* detector workers run under a fresh *serial* runtime with a private
  :class:`~repro.runtime.cache.ProfileCache` and return its raw entries;
  because keys are pure content fingerprints, the parent can merge them
  verbatim (``put_raw``) and end up with exactly the keys a serial run
  would have produced.

``fault_point("process.worker", ...)`` fires inside the worker before
any real work, so crash-injection plans (armed via
``$REPRO_FAULT_PLAN``, which child processes inherit) can kill workers
deterministically; the engine answers with a serial fallback.
"""

from __future__ import annotations

import pickle
import time

#: Tagged outcome statuses of :func:`assess_module`.
OK = "ok"
ERROR = "error"


def _rehydrated_database(spool_directory: str, fingerprint: str):
    from .spool import ScenarioSpool

    return ScenarioSpool(spool_directory).get_database(fingerprint)


def assess_module(task) -> tuple:
    """Run one detector module against a spooled scenario.

    Payload: ``(spool_directory, scenario_fingerprint, module_pickle)``.
    Returns ``(status, payload, error_text, elapsed_seconds,
    cache_entries)`` where ``payload`` is the module report on ``OK`` or
    a pickled exception (``None`` if unpicklable) on ``ERROR``; module
    failures are *data*, not infrastructure — they travel back tagged so
    the parent can reproduce serial raise/degrade semantics exactly.
    """
    spool_directory, scenario_fingerprint, module_blob = task
    from ..resilience import format_exception
    from ..resilience.faults import fault_point
    from .engine import Runtime
    from .spool import ScenarioSpool

    fault_point("process.worker", stage="detector")
    module = pickle.loads(module_blob)
    scenario = ScenarioSpool(spool_directory).get_scenario(
        scenario_fingerprint
    )
    runtime = Runtime(backend="serial")
    started = time.perf_counter()
    with runtime.activated():
        try:
            fault_point(
                "detector", name=module.name, scenario=scenario.name
            )
            report = module.assess(scenario)
        except Exception as exc:  # noqa: BLE001 - tagged, judged by parent
            elapsed = time.perf_counter() - started
            try:
                blob = pickle.dumps(exc)
            except Exception:  # noqa: BLE001 - unpicklable exception
                blob = None
            return (
                ERROR,
                blob,
                format_exception(exc),
                elapsed,
                runtime.cache.entries(),
            )
    elapsed = time.perf_counter() - started
    return (OK, report, None, elapsed, runtime.cache.entries())


def profile_column(task) -> tuple:
    """Profile one column of a spooled database.

    Payload: ``(spool_directory, database_fingerprint, relation_name,
    attribute_name, datatype_value)``.  Returns ``(profile, elapsed)``.
    """
    spool_directory, fingerprint, relation_name, attribute_name, datatype_value = task
    from ..profiling.profiler import compute_column_profile
    from ..relational.datatypes import DataType
    from ..resilience.faults import fault_point

    fault_point("process.worker", stage="profile")
    database = _rehydrated_database(spool_directory, fingerprint)
    fault_point(
        "profile", relation=relation_name, attribute=attribute_name
    )
    started = time.perf_counter()
    profile = compute_column_profile(
        database, relation_name, attribute_name, DataType(datatype_value)
    )
    return (profile, time.perf_counter() - started)


def relation_uccs(task) -> tuple:
    """UCC discovery for one relation of a spooled database.

    Payload: ``(spool_directory, database_fingerprint, relation_name,
    max_arity)``.  Returns ``(uccs, elapsed)``.
    """
    spool_directory, fingerprint, relation_name, max_arity = task
    from ..profiling.dependencies import compute_relation_uccs
    from ..resilience.faults import fault_point

    fault_point("process.worker", stage="uccs")
    database = _rehydrated_database(spool_directory, fingerprint)
    started = time.perf_counter()
    uccs = compute_relation_uccs(database, relation_name, max_arity)
    return (uccs, time.perf_counter() - started)


def relation_fds(task) -> tuple:
    """FD discovery for one relation of a spooled database.

    Payload: ``(spool_directory, database_fingerprint, relation_name)``.
    Returns ``(fds, elapsed)``.
    """
    spool_directory, fingerprint, relation_name = task
    from ..profiling.dependencies import compute_relation_fds
    from ..resilience.faults import fault_point

    fault_point("process.worker", stage="fds")
    database = _rehydrated_database(spool_directory, fingerprint)
    started = time.perf_counter()
    fds = compute_relation_fds(database, relation_name)
    return (fds, time.perf_counter() - started)


def relation_value_sets(task) -> tuple:
    """Distinct-value sets for one relation (the IND scan's hot half).

    Payload: ``(spool_directory, database_fingerprint, relation_name)``.
    Returns ``([((relation, attribute), values), ...], elapsed)`` in
    schema attribute order; the parent runs the pairwise subset checks
    so result order stays canonical.
    """
    spool_directory, fingerprint, relation_name = task
    from ..resilience.faults import fault_point

    fault_point("process.worker", stage="inds")
    database = _rehydrated_database(spool_directory, fingerprint)
    instance = database.table(relation_name)
    started = time.perf_counter()
    value_sets = [
        ((relation_name, name), instance.distinct(name))
        for name in database.schema.relation(relation_name).attribute_names
    ]
    return (value_sets, time.perf_counter() - started)
