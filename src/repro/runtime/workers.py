"""Process-pool worker entry points.

Every function here is module-level (picklable **by reference** — the
pool ships only the qualified name) and takes one tuple payload whose
first two elements are ``(spool_directory, content_fingerprint)``; the
worker rehydrates the scenario or database from the shared spool
(:mod:`repro.runtime.spool`), which memoises per process, and runs the
same pure computation the serial backend would run in-process.

Two invariants make the process backend bit-equivalent to the serial
oracle:

* workers execute the **same functions** over **value-identical**
  rehydrated inputs (the columnar codec is exact), and
* detector workers run under a fresh *serial* runtime with a private
  :class:`~repro.runtime.cache.ProfileCache` and return its raw entries;
  because keys are pure content fingerprints, the parent can merge them
  verbatim (``put_raw``) and end up with exactly the keys a serial run
  would have produced.

Observability crosses the boundary through the payload's trailing
element: a :class:`~repro.observability.SpanContext` (or ``None`` when
the parent run is untraced).  Under a context the worker runs inside a
:func:`~repro.observability.telemetry_session` — a process-local tracer
sharing the parent's trace id, worker-side ``detector:*``/``profile``/
``ucc``/``ind``/``fd`` spans tagged ``backend="process"`` and ``pid``,
metrics, events, and a final resource sample — and returns the packed
:class:`~repro.observability.WorkerTelemetry` blob as the trailing
element of its result tuple (``None`` untraced, costing nothing).

``fault_point("process.worker", ...)`` fires inside the worker before
any real work, so crash-injection plans (armed via
``$REPRO_FAULT_PLAN``, which child processes inherit) can kill workers
deterministically; the engine answers with a serial fallback.

Deadlines cross the boundary as the payload element *before* the span
context: the remaining budget in seconds (``None`` when unbounded).
The worker re-anchors it against its own monotonic clock
(:func:`~repro.runtime.deadline.remaining_scope`) and self-aborts at
its next checkpoint once the budget is gone — the cooperative half of
runaway-worker reclamation; the executor's reaper is the backstop.
"""

from __future__ import annotations

import os
import pickle
import time

#: Tagged outcome statuses of :func:`assess_module`.
OK = "ok"
ERROR = "error"


def _rehydrated_database(spool_directory: str, fingerprint: str):
    from .spool import ScenarioSpool

    return ScenarioSpool(spool_directory).get_database(fingerprint)


def assess_module(task) -> tuple:
    """Run one detector module against a spooled scenario.

    Payload: ``(spool_directory, scenario_fingerprint, module_pickle,
    remaining_budget, span_context)``.  Returns ``(status, payload, error_text,
    elapsed_seconds, cache_entries, telemetry)`` where ``payload`` is
    the module report on ``OK`` or a pickled exception (``None`` if
    unpicklable) on ``ERROR``; module failures are *data*, not
    infrastructure — they travel back tagged so the parent can reproduce
    serial raise/degrade semantics exactly.  ``telemetry`` is the
    worker's :class:`~repro.observability.WorkerTelemetry` blob
    (``None`` when the parent run is untraced); a failing detector
    still ships the spans it opened, error annotation included.
    """
    spool_directory, scenario_fingerprint, module_blob, budget, context = task
    from ..observability import telemetry_session, tracing
    from ..resilience import format_exception
    from ..resilience.faults import fault_point
    from .deadline import remaining_scope
    from .engine import Runtime
    from .spool import ScenarioSpool

    fault_point("process.worker", stage="detector")
    module = pickle.loads(module_blob)
    scenario = ScenarioSpool(spool_directory).get_scenario(
        scenario_fingerprint
    )
    runtime = Runtime(backend="serial")
    session = telemetry_session(context, metrics=runtime.metrics)
    status, payload, error_text = OK, None, None
    started = time.perf_counter()
    with session, runtime.activated(), remaining_scope(budget):
        session.emit(
            "worker.task",
            stage="detector",
            detector=module.name,
            scenario=scenario.name,
            pid=os.getpid(),
        )
        try:
            with tracing.span(
                f"detector:{module.name}",
                backend="process",
                pid=os.getpid(),
                scenario=scenario.name,
            ):
                fault_point(
                    "detector", name=module.name, scenario=scenario.name
                )
                payload = module.assess(scenario)
        except Exception as exc:  # noqa: BLE001 - tagged, judged by parent
            status = ERROR
            error_text = format_exception(exc)
            try:
                payload = pickle.dumps(exc)
            except Exception:  # noqa: BLE001 - unpicklable exception
                payload = None
    elapsed = time.perf_counter() - started
    return (
        status,
        payload,
        error_text,
        elapsed,
        runtime.cache.entries(),
        session.telemetry,
    )


def profile_column(task) -> tuple:
    """Profile one column of a spooled database.

    Payload: ``(spool_directory, database_fingerprint, relation_name,
    attribute_name, datatype_value, remaining_budget, span_context)``.
    Returns ``(profile, elapsed, telemetry)``.
    """
    (
        spool_directory,
        fingerprint,
        relation_name,
        attribute_name,
        datatype_value,
        budget,
        context,
    ) = task
    from ..observability import telemetry_session, tracing
    from ..profiling.profiler import compute_column_profile
    from ..relational.datatypes import DataType
    from ..resilience.faults import fault_point
    from .deadline import remaining_scope

    fault_point("process.worker", stage="profile")
    database = _rehydrated_database(spool_directory, fingerprint)
    session = telemetry_session(context)
    with session, remaining_scope(budget):
        with tracing.span(
            "profile",
            relation=relation_name,
            attribute=attribute_name,
            cache_hit=False,
            backend="process",
            pid=os.getpid(),
        ):
            fault_point(
                "profile", relation=relation_name, attribute=attribute_name
            )
            started = time.perf_counter()
            profile = compute_column_profile(
                database, relation_name, attribute_name,
                DataType(datatype_value),
            )
            elapsed = time.perf_counter() - started
    return (profile, elapsed, session.telemetry)


def _relation_worker(task, *, stage: str, span_name: str, compute) -> tuple:
    """Shared scaffolding of the per-relation discovery workers.

    Rehydrates the database, opens a backend-tagged span under the
    telemetry session, times ``compute``, and returns
    ``(result, elapsed, telemetry)``.
    """
    spool_directory, fingerprint, relation_name = task[:3]
    budget = task[-2]
    context = task[-1]
    from ..observability import telemetry_session, tracing
    from ..resilience.faults import fault_point
    from .deadline import remaining_scope

    fault_point("process.worker", stage=stage)
    database = _rehydrated_database(spool_directory, fingerprint)
    session = telemetry_session(context)
    with session, remaining_scope(budget):
        with tracing.span(
            span_name,
            relation=relation_name,
            backend="process",
            pid=os.getpid(),
        ):
            started = time.perf_counter()
            result = compute(database, relation_name)
            elapsed = time.perf_counter() - started
    return (result, elapsed, session.telemetry)


def relation_uccs(task) -> tuple:
    """UCC discovery for one relation of a spooled database.

    Payload: ``(spool_directory, database_fingerprint, relation_name,
    max_arity, remaining_budget, span_context)``.  Returns
    ``(uccs, elapsed, telemetry)``.
    """
    from ..profiling.dependencies import compute_relation_uccs

    max_arity = task[3]
    return _relation_worker(
        task,
        stage="uccs",
        span_name="ucc",
        compute=lambda database, relation: compute_relation_uccs(
            database, relation, max_arity
        ),
    )


def relation_fds(task) -> tuple:
    """FD discovery for one relation of a spooled database.

    Payload: ``(spool_directory, database_fingerprint, relation_name,
    remaining_budget, span_context)``.  Returns
    ``(fds, elapsed, telemetry)``.
    """
    from ..profiling.dependencies import compute_relation_fds

    return _relation_worker(
        task, stage="fds", span_name="fd", compute=compute_relation_fds
    )


def relation_value_sets(task) -> tuple:
    """Distinct-value sets for one relation (the IND scan's hot half).

    Payload: ``(spool_directory, database_fingerprint, relation_name,
    remaining_budget, span_context)``.  Returns
    ``([((relation, attribute), values), ...],
    elapsed, telemetry)`` in schema attribute order; the parent runs the
    pairwise subset checks so result order stays canonical.
    """

    def compute(database, relation_name):
        instance = database.table(relation_name)
        return [
            ((relation_name, name), instance.distinct(name))
            for name in database.schema.relation(
                relation_name
            ).attribute_names
        ]

    return _relation_worker(
        task, stage="inds", span_name="ind", compute=compute
    )
