"""Content-keyed memoisation of expensive profiling results.

Profiles and discovered dependencies are pure functions of an immutable
database instance, yet the benchmark scripts and the cross-validation
folds of :mod:`repro.experiments` re-profile the same scenarios over and
over.  :class:`ProfileCache` keys every entry on a **content
fingerprint** of the database, so

* repeated profiling of unchanged data is a cache hit,
* any mutation (insert/update/delete/map_column) bumps the instance's
  version counter, which invalidates the memoised fingerprint and makes
  every derived entry unreachable — no stale reads, ever,
* two databases with byte-identical content share entries (common when
  scenarios are rebuilt from the same seed).

Fingerprints hash all tuples, which is O(rows) — far cheaper than the
profiling it saves — and are themselves memoised per instance + version,
so the steady-state key cost is a dict lookup.
"""

from __future__ import annotations

import hashlib
import threading
import weakref
from collections import OrderedDict
from collections.abc import Callable, Hashable

from ..relational.database import Database
from ..relational.instance import RelationInstance
from .metrics import RuntimeMetrics

#: Default entry bound; profiling results are small compared to the
#: instances they describe, so the bound mainly guards runaway scripts.
DEFAULT_MAX_ENTRIES = 1024

_FIELD = b"\x1f"
_ROW = b"\x1e"

_relation_digests: "weakref.WeakKeyDictionary[RelationInstance, tuple[int, str]]" = (
    weakref.WeakKeyDictionary()
)
_database_digests: "weakref.WeakKeyDictionary[Database, tuple[tuple, str]]" = (
    weakref.WeakKeyDictionary()
)
_digest_lock = threading.Lock()


def _relation_digest(instance: RelationInstance) -> str:
    with _digest_lock:
        memo = _relation_digests.get(instance)
        if memo is not None and memo[0] == instance.version:
            return memo[1]
    digest = hashlib.sha1()
    relation = instance.relation
    digest.update(relation.name.encode("utf-8"))
    for attribute in relation.attributes:
        digest.update(_FIELD)
        digest.update(attribute.name.encode("utf-8"))
        digest.update(str(attribute.datatype).encode("utf-8"))
    for row in instance:
        digest.update(_ROW)
        for value in row:
            digest.update(_FIELD)
            digest.update(repr(value).encode("utf-8", "backslashreplace"))
    result = digest.hexdigest()
    with _digest_lock:
        _relation_digests[instance] = (instance.version, result)
    return result


def fingerprint_database(database: Database) -> str:
    """A stable content hash of a database's schema shape and tuples.

    Covers relation names, attribute names/datatypes, declared
    constraints, and every tuple — but not the database *name*, so
    identically shaped and filled databases share cache entries.
    """
    version = database.version
    with _digest_lock:
        memo = _database_digests.get(database)
        if memo is not None and memo[0] == version:
            return memo[1]
    digest = hashlib.sha1()
    for relation in sorted(database.schema.relations, key=lambda r: r.name):
        digest.update(_ROW)
        digest.update(_relation_digest(database.table(relation.name)).encode())
    for constraint in database.schema.constraints:
        digest.update(_FIELD)
        digest.update(repr(constraint).encode("utf-8", "backslashreplace"))
    result = digest.hexdigest()
    with _digest_lock:
        _database_digests[database] = (version, result)
    return result


def fingerprint_scenario(scenario) -> str:
    """A stable content hash of a whole integration scenario.

    Combines the content fingerprints of every source database (in
    declaration order), the target database, and the correspondences —
    but, like :func:`fingerprint_database`, not the scenario *name*, so
    identically shaped scenarios share report-store entries.  This is the
    key the assessment service's :class:`~repro.service.ReportStore`
    addresses results by.
    """
    digest = hashlib.sha1()
    for source in scenario.sources:
        digest.update(_ROW)
        digest.update(fingerprint_database(source).encode())
        correspondences = scenario.correspondences.get(source.name)
        for correspondence in sorted(
            correspondences or (),
            key=lambda c: (c.source, c.target, c.confidence),
        ):
            digest.update(_FIELD)
            digest.update(
                repr(correspondence).encode("utf-8", "backslashreplace")
            )
    digest.update(_ROW)
    digest.update(fingerprint_database(scenario.target).encode())
    return digest.hexdigest()


class ProfileCache:
    """An LRU cache of profiling results keyed by database content.

    Keys are ``(fingerprint, *operation_key)`` where the operation key
    names the computation and its parameters, e.g.
    ``("profile_column", "songs", "length", "integer")`` or
    ``("uccs", 2)``.  Hits and misses are counted on the attached
    :class:`~repro.runtime.metrics.RuntimeMetrics`.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        metrics: RuntimeMetrics | None = None,
    ) -> None:
        self.max_entries = max_entries
        self.metrics = metrics or RuntimeMetrics()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    # -- core protocol ----------------------------------------------------

    def get_or_compute(
        self,
        database: Database,
        operation_key: tuple[Hashable, ...],
        compute: Callable[[], object],
    ) -> object:
        key = (fingerprint_database(database), *operation_key)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.metrics.increment("cache_hits")
                return self._entries[key]
        # Compute outside the lock: concurrent misses on the same key may
        # compute twice, but both results are identical (pure functions)
        # and the second store is a harmless overwrite.
        self.metrics.increment("cache_misses")
        result = compute()
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.metrics.increment("cache_evictions")
        return result

    # -- maintenance ------------------------------------------------------

    def invalidate(self, database: Database) -> int:
        """Drop every entry derived from ``database``'s current content.

        Mutations invalidate implicitly (the fingerprint changes); this
        explicit hook exists for callers that want to reclaim memory or
        force recomputation.
        """
        prefix = fingerprint_database(database)
        with self._lock:
            stale = [key for key in self._entries if key[0] == prefix]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ProfileCache({len(self)}/{self.max_entries} entries, "
            f"{self.metrics.cache_hits} hits, "
            f"{self.metrics.cache_misses} misses)"
        )
