"""Content-keyed memoisation of expensive profiling results.

Profiles and discovered dependencies are pure functions of an immutable
database instance, yet the benchmark scripts and the cross-validation
folds of :mod:`repro.experiments` re-profile the same scenarios over and
over.  :class:`ProfileCache` keys every entry on a **content
fingerprint** of the database, so

* repeated profiling of unchanged data is a cache hit,
* any mutation (insert/update/delete/map_column) bumps the instance's
  version counter, which invalidates the memoised fingerprint and makes
  every derived entry unreachable — no stale reads, ever,
* two databases with byte-identical content share entries (common when
  scenarios are rebuilt from the same seed).

Fingerprints hash the **canonical columnar encoding** of every relation
(:meth:`~repro.relational.instance.RelationInstance.encoded_columns` —
typed arrays + null bitmasks, every section length-prefixed), so keys
depend only on the typed values themselves: not on ``repr`` formatting,
not on constraint declaration order, and not on which executor backend
computed the entry.  Hashing is O(bytes) — far cheaper than the
profiling it saves — and digests are memoised per instance + version, so
the steady-state key cost is a dict lookup.
"""

from __future__ import annotations

import hashlib
import struct
import threading
import weakref
from collections import OrderedDict
from collections.abc import Callable, Hashable

from ..relational.database import Database
from ..relational.instance import RelationInstance
from .metrics import RuntimeMetrics

#: Default entry bound; profiling results are small compared to the
#: instances they describe, so the bound mainly guards runaway scripts.
DEFAULT_MAX_ENTRIES = 1024

_relation_digests: "weakref.WeakKeyDictionary[RelationInstance, tuple[int, str]]" = (
    weakref.WeakKeyDictionary()
)
_database_digests: "weakref.WeakKeyDictionary[Database, tuple[tuple, str]]" = (
    weakref.WeakKeyDictionary()
)
_digest_lock = threading.Lock()


def _sized(blob: bytes) -> bytes:
    """Length-prefix a section so adjacent sections cannot run together."""
    return struct.pack("<q", len(blob)) + blob


def _relation_digest(instance: RelationInstance) -> str:
    with _digest_lock:
        memo = _relation_digests.get(instance)
        if memo is not None and memo[0] == instance.version:
            return memo[1]
    digest = hashlib.sha1()
    relation = instance.relation
    digest.update(_sized(relation.name.encode("utf-8")))
    for attribute in relation.attributes:
        digest.update(_sized(attribute.name.encode("utf-8")))
        digest.update(_sized(str(attribute.datatype).encode("utf-8")))
    for block in instance.encoded_columns():
        digest.update(_sized(block.canonical_bytes()))
    result = digest.hexdigest()
    with _digest_lock:
        _relation_digests[instance] = (instance.version, result)
    return result


def fingerprint_database(database: Database) -> str:
    """A stable content hash of a database's schema shape and tuples.

    Covers relation names, attribute names/datatypes, declared
    constraints, and every tuple — but not the database *name*, so
    identically shaped and filled databases share cache entries.
    Constraints are hashed in sorted order: declaring the same constraint
    set in a different order yields the same fingerprint.
    """
    version = database.version
    with _digest_lock:
        memo = _database_digests.get(database)
        if memo is not None and memo[0] == version:
            return memo[1]
    digest = hashlib.sha1()
    for relation in sorted(database.schema.relations, key=lambda r: r.name):
        digest.update(
            _sized(_relation_digest(database.table(relation.name)).encode())
        )
    for constraint_repr in sorted(
        repr(constraint) for constraint in database.schema.constraints
    ):
        digest.update(
            _sized(constraint_repr.encode("utf-8", "backslashreplace"))
        )
    result = digest.hexdigest()
    with _digest_lock:
        _database_digests[database] = (version, result)
    return result


def fingerprint_scenario(scenario) -> str:
    """A stable content hash of a whole integration scenario.

    Combines the content fingerprints of every source database (in
    declaration order), the target database, and the correspondences —
    but, like :func:`fingerprint_database`, not the scenario *name*, so
    identically shaped scenarios share report-store entries.  This is the
    key the assessment service's :class:`~repro.service.ReportStore`
    addresses results by.
    """
    digest = hashlib.sha1()
    for source in scenario.sources:
        digest.update(_sized(fingerprint_database(source).encode()))
        correspondences = scenario.correspondences.get(source.name)
        for correspondence in sorted(
            correspondences or (),
            key=lambda c: (c.source, c.target, c.confidence),
        ):
            digest.update(
                _sized(repr(correspondence).encode("utf-8", "backslashreplace"))
            )
    digest.update(_sized(fingerprint_database(scenario.target).encode()))
    return digest.hexdigest()


class ProfileCache:
    """An LRU cache of profiling results keyed by database content.

    Keys are ``(fingerprint, *operation_key)`` where the operation key
    names the computation and its parameters, e.g.
    ``("profile_column", "songs", "length", "integer")`` or
    ``("uccs", 2)``.  Hits and misses are counted on the attached
    :class:`~repro.runtime.metrics.RuntimeMetrics`.
    """

    def __init__(
        self,
        max_entries: int = DEFAULT_MAX_ENTRIES,
        metrics: RuntimeMetrics | None = None,
    ) -> None:
        self.max_entries = max_entries
        self.metrics = metrics or RuntimeMetrics()
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, object] = OrderedDict()

    # -- core protocol ----------------------------------------------------

    def get_or_compute(
        self,
        database: Database,
        operation_key: tuple[Hashable, ...],
        compute: Callable[[], object],
    ) -> object:
        key = (fingerprint_database(database), *operation_key)
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.metrics.increment("cache_hits")
                return self._entries[key]
        # Compute outside the lock: concurrent misses on the same key may
        # compute twice, but both results are identical (pure functions)
        # and the second store is a harmless overwrite.
        self.metrics.increment("cache_misses")
        result = compute()
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.metrics.increment("cache_evictions")
        return result

    def peek(
        self, database: Database, operation_key: tuple[Hashable, ...]
    ):
        """The cached entry for ``database`` + operation, or ``None``.

        Does not count a hit/miss and does not refresh LRU order — this
        is the process backend's "which columns are already warm?" probe,
        not a read on the critical path.
        """
        key = (fingerprint_database(database), *operation_key)
        with self._lock:
            return self._entries.get(key)

    def put(
        self,
        database: Database,
        operation_key: tuple[Hashable, ...],
        value: object,
    ) -> None:
        """Store an externally computed entry under the canonical key.

        The process backend computes entries in worker processes and
        merges them here; because keys are pure content fingerprints the
        merged entries are indistinguishable from locally computed ones.
        """
        self.put_raw((fingerprint_database(database), *operation_key), value)

    def put_raw(self, key: tuple, value: object) -> None:
        """Store an entry under an already-resolved key (worker merges)."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.metrics.increment("cache_evictions")

    def entries(self) -> list[tuple[tuple, object]]:
        """A snapshot of ``(key, value)`` pairs in LRU order (oldest
        first); what a worker ships back to the coordinating process."""
        with self._lock:
            return list(self._entries.items())

    def keys(self) -> list[tuple]:
        """A snapshot of the resolved cache keys, sorted.

        Backend-equivalence tests compare these across executors: the
        same scenario must populate the same content keys no matter
        which backend computed them.
        """
        with self._lock:
            return sorted(self._entries, key=repr)

    # -- maintenance ------------------------------------------------------

    def invalidate(self, database: Database) -> int:
        """Drop every entry derived from ``database``'s current content.

        Mutations invalidate implicitly (the fingerprint changes); this
        explicit hook exists for callers that want to reclaim memory or
        force recomputation.
        """
        prefix = fingerprint_database(database)
        with self._lock:
            stale = [key for key in self._entries if key[0] == prefix]
            for key in stale:
                del self._entries[key]
        return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ProfileCache({len(self)}/{self.max_entries} entries, "
            f"{self.metrics.cache_hits} hits, "
            f"{self.metrics.cache_misses} misses)"
        )
