"""The shared assessment runtime: executor + cache + metrics in one place.

Phase-1 complexity assessment (paper Section 3, Figure 3) is
embarrassingly parallel — module detectors are independent, column
profiles are independent, per-relation dependency discovery is
independent — and wholly repeatable, because every result is a pure
function of immutable instances.  :class:`Runtime` exploits both facts:

* ``run_detectors`` fans the module detectors out on the configured
  executor while preserving module order in the returned report dict,
* the cached profiling entry points (``profile_column``,
  ``profile_database``, ``discover_uccs/inds/fds``) memoise results in a
  content-keyed :class:`~repro.runtime.cache.ProfileCache`,
* everything is instrumented on a :class:`RuntimeMetrics` instance that
  :class:`~repro.core.framework.Efes`, the CLI, and the benchmark
  conftest can query.

One process-wide default runtime exists (``default_runtime``); code that
wants a private executor/cache builds its own ``Runtime`` and either
passes it to :class:`Efes` or activates it with ``with runtime.activated()``.
"""

from __future__ import annotations

import contextvars
import os
import time
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager

from ..observability import tracing
from ..resilience import DegradedResult, fault_point, format_exception
from .cache import ProfileCache
from .executor import Executor, make_executor
from .metrics import RuntimeMetrics

#: Environment variable selecting the default runtime's backend
#: ("serial", "threads", or "auto").
BACKEND_ENV_VAR = "REPRO_RUNTIME_BACKEND"

_ACTIVE: contextvars.ContextVar["Runtime | None"] = contextvars.ContextVar(
    "repro_active_runtime", default=None
)


class Runtime:
    """An execution engine for EFES assessments and profiling."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        executor: Executor | None = None,
        cache: ProfileCache | None = None,
        metrics: RuntimeMetrics | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.executor = (
            executor if executor is not None else make_executor(backend, max_workers)
        )
        # An empty ProfileCache is falsy (it has __len__), so never use
        # `or` here — a caller's fresh cache must not be discarded.
        self.cache = (
            cache if cache is not None else ProfileCache(metrics=self.metrics)
        )

    @property
    def backend(self) -> str:
        return self.executor.name

    # -- activation -------------------------------------------------------

    @contextmanager
    def activated(self):
        """Make this runtime the one :func:`get_runtime` resolves to."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    # -- execution --------------------------------------------------------

    def map_ordered(
        self,
        function: Callable,
        items: Iterable,
        stage: str | None = None,
    ) -> list:
        """Run ``function`` over ``items`` on the backend, results in
        submission order; each task sees this runtime as the active one."""
        items = list(items)
        self.metrics.increment("tasks_submitted", by=len(items))

        def call(item):
            with self.activated():
                if stage is None:
                    return function(item)
                with self.metrics.time_stage(stage):
                    return function(item)

        results = self.executor.map_ordered(call, items)
        self.metrics.increment("tasks_completed", by=len(items))
        return results

    def run_detectors(
        self, modules: Sequence, scenario, on_error: str = "raise"
    ) -> dict:
        """Phase 1 for every module concurrently; reports in module order.

        With ``on_error="raise"`` (the default), exceptions from a
        failing detector propagate to the caller (first module in
        declaration order wins when several fail).  With
        ``on_error="degrade"`` a failing detector yields a
        :class:`~repro.resilience.DegradedResult` in the report dict
        instead — the other modules' reports survive, the failure is
        counted on ``degraded_total``, and the detector's span carries an
        ``error`` annotation.  Each detector runs under a
        ``detector:<name>`` span and records its latency into the
        ``detector_seconds`` histogram, so per-detector p50/p95/p99
        survive the fan-out.
        """
        if on_error not in ("raise", "degrade"):
            raise ValueError(
                f"on_error must be 'raise' or 'degrade', got {on_error!r}"
            )
        self.metrics.increment("assessments")
        self.metrics.increment("detector_runs", by=len(modules))

        def run_one(module):
            with tracing.span(f"detector:{module.name}") as span:
                started = time.perf_counter()
                try:
                    fault_point(
                        "detector", name=module.name, scenario=scenario.name
                    )
                    return module.assess(scenario)
                except Exception as exc:  # noqa: BLE001 - degradation boundary
                    if on_error == "raise":
                        raise
                    elapsed = time.perf_counter() - started
                    error = format_exception(exc)
                    span.set_attribute("error", error)
                    self.metrics.increment("degraded_total")
                    self.metrics.increment("detectors_degraded")
                    return DegradedResult(
                        module=module.name,
                        phase="assess",
                        error=error,
                        elapsed_seconds=elapsed,
                        scenario=scenario.name,
                    )
                finally:
                    self.metrics.observe(
                        "detector_seconds",
                        time.perf_counter() - started,
                        detector=module.name,
                    )

        with tracing.span("assess", scenario=scenario.name), \
                self.metrics.time_stage("assess"):
            reports = self.map_ordered(
                run_one, modules, stage="assess.detector"
            )
        return {
            module.name: report for module, report in zip(modules, reports)
        }

    # -- cached profiling -------------------------------------------------

    def profile_column(
        self, database, relation_name: str, attribute_name: str, datatype=None
    ):
        from ..profiling import profiler

        resolved = (
            datatype
            if datatype is not None
            else database.schema.attribute(relation_name, attribute_name).datatype
        )
        def compute():
            fault_point(
                "profile", relation=relation_name, attribute=attribute_name
            )
            return self._timed(
                "profile",
                profiler.compute_column_profile,
                database,
                relation_name,
                attribute_name,
                resolved,
                span=span,
            )

        with tracing.span(
            "profile",
            relation=relation_name,
            attribute=attribute_name,
            cache_hit=True,
        ) as span:
            return self.cache.get_or_compute(
                database,
                ("profile_column", relation_name, attribute_name, str(resolved)),
                compute,
            )

    def profile_database(self, database):
        def compute():
            span.set_attribute("cache_hit", False)
            pairs = [
                (relation.name, attribute.name)
                for relation in database.schema.relations
                for attribute in relation.attributes
            ]
            profiles = self.map_ordered(
                lambda pair: self.profile_column(database, pair[0], pair[1]),
                pairs,
            )
            return dict(zip(pairs, profiles))

        with tracing.span(
            "profile", scope="database", database=database.name, cache_hit=True
        ) as span:
            return self.cache.get_or_compute(
                database, ("profile_database",), compute
            )

    def discover_uccs(self, database, max_arity: int = 2):
        from ..profiling import dependencies

        with tracing.span(
            "ucc", database=database.name, cache_hit=True
        ) as span:
            return self.cache.get_or_compute(
                database,
                ("uccs", max_arity),
                lambda: self._timed(
                    "dependencies",
                    dependencies.compute_uccs,
                    database,
                    max_arity,
                    self.map_ordered,
                    span=span,
                ),
            )

    def discover_inds(self, database, min_values: int = 1):
        from ..profiling import dependencies

        with tracing.span(
            "ind", database=database.name, cache_hit=True
        ) as span:
            return self.cache.get_or_compute(
                database,
                ("inds", min_values),
                lambda: self._timed(
                    "dependencies",
                    dependencies.compute_inds,
                    database,
                    min_values,
                    self.map_ordered,
                    span=span,
                ),
            )

    def discover_fds(self, database):
        from ..profiling import dependencies

        with tracing.span(
            "fd", database=database.name, cache_hit=True
        ) as span:
            return self.cache.get_or_compute(
                database,
                ("fds",),
                lambda: self._timed(
                    "dependencies",
                    dependencies.compute_fds,
                    database,
                    self.map_ordered,
                    span=span,
                ),
            )

    def _timed(self, stage: str, function: Callable, *args, span=None):
        # Reaching the compute callback means the cache did not have the
        # entry; flip the span's optimistic cache_hit annotation.
        if span is not None:
            span.set_attribute("cache_hit", False)
        with self.metrics.time_stage(stage):
            return function(*args)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.executor.shutdown()

    def __repr__(self) -> str:
        return (
            f"Runtime(backend={self.backend!r}, "
            f"workers={self.executor.max_workers}, "
            f"cache={len(self.cache)} entries)"
        )


# ----------------------------------------------------------------------
# Process-wide default + active-runtime resolution
# ----------------------------------------------------------------------

_default_runtime: Runtime | None = None


def default_runtime() -> Runtime:
    """The lazily created process-wide runtime.

    Backend comes from ``$REPRO_RUNTIME_BACKEND`` (default: serial, the
    reference behaviour); its cache and metrics are shared by every
    caller that does not bring a runtime of its own.
    """
    global _default_runtime
    if _default_runtime is None:
        _default_runtime = Runtime(
            backend=os.environ.get(BACKEND_ENV_VAR, "serial")
        )
    return _default_runtime


def set_default_runtime(runtime: Runtime | None) -> None:
    """Replace the process-wide default (``None`` resets to lazy init)."""
    global _default_runtime
    _default_runtime = runtime


def get_runtime() -> Runtime:
    """The active runtime: the innermost ``activated()`` one, else the
    process default."""
    return _ACTIVE.get() or default_runtime()
