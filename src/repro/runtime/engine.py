"""The shared assessment runtime: executor + cache + metrics in one place.

Phase-1 complexity assessment (paper Section 3, Figure 3) is
embarrassingly parallel — module detectors are independent, column
profiles are independent, per-relation dependency discovery is
independent — and wholly repeatable, because every result is a pure
function of immutable instances.  :class:`Runtime` exploits both facts:

* ``run_detectors`` fans the module detectors out on the configured
  executor while preserving module order in the returned report dict,
* the cached profiling entry points (``profile_column``,
  ``profile_database``, ``discover_uccs/inds/fds``) memoise results in a
  content-keyed :class:`~repro.runtime.cache.ProfileCache`,
* everything is instrumented on a :class:`RuntimeMetrics` instance that
  :class:`~repro.core.framework.Efes`, the CLI, and the benchmark
  conftest can query.

One process-wide default runtime exists (``default_runtime``); code that
wants a private executor/cache builds its own ``Runtime`` and either
passes it to :class:`Efes` or activates it with ``with runtime.activated()``.
"""

from __future__ import annotations

import contextvars
import os
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager

from .cache import ProfileCache
from .executor import Executor, make_executor
from .metrics import RuntimeMetrics

#: Environment variable selecting the default runtime's backend
#: ("serial", "threads", or "auto").
BACKEND_ENV_VAR = "REPRO_RUNTIME_BACKEND"

_ACTIVE: contextvars.ContextVar["Runtime | None"] = contextvars.ContextVar(
    "repro_active_runtime", default=None
)


class Runtime:
    """An execution engine for EFES assessments and profiling."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        executor: Executor | None = None,
        cache: ProfileCache | None = None,
        metrics: RuntimeMetrics | None = None,
    ) -> None:
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.executor = (
            executor if executor is not None else make_executor(backend, max_workers)
        )
        # An empty ProfileCache is falsy (it has __len__), so never use
        # `or` here — a caller's fresh cache must not be discarded.
        self.cache = (
            cache if cache is not None else ProfileCache(metrics=self.metrics)
        )

    @property
    def backend(self) -> str:
        return self.executor.name

    # -- activation -------------------------------------------------------

    @contextmanager
    def activated(self):
        """Make this runtime the one :func:`get_runtime` resolves to."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    # -- execution --------------------------------------------------------

    def map_ordered(
        self,
        function: Callable,
        items: Iterable,
        stage: str | None = None,
    ) -> list:
        """Run ``function`` over ``items`` on the backend, results in
        submission order; each task sees this runtime as the active one."""
        items = list(items)
        self.metrics.increment("tasks_submitted", by=len(items))

        def call(item):
            with self.activated():
                if stage is None:
                    return function(item)
                with self.metrics.time_stage(stage):
                    return function(item)

        results = self.executor.map_ordered(call, items)
        self.metrics.increment("tasks_completed", by=len(items))
        return results

    def run_detectors(self, modules: Sequence, scenario) -> dict:
        """Phase 1 for every module concurrently; reports in module order.

        Exceptions from a failing detector propagate to the caller (first
        module in declaration order wins when several fail).
        """
        self.metrics.increment("assessments")
        self.metrics.increment("detector_runs", by=len(modules))
        with self.metrics.time_stage("assess"):
            reports = self.map_ordered(
                lambda module: module.assess(scenario),
                modules,
                stage="assess.detector",
            )
        return {
            module.name: report for module, report in zip(modules, reports)
        }

    # -- cached profiling -------------------------------------------------

    def profile_column(
        self, database, relation_name: str, attribute_name: str, datatype=None
    ):
        from ..profiling import profiler

        resolved = (
            datatype
            if datatype is not None
            else database.schema.attribute(relation_name, attribute_name).datatype
        )
        return self.cache.get_or_compute(
            database,
            ("profile_column", relation_name, attribute_name, str(resolved)),
            lambda: self._timed(
                "profile",
                profiler.compute_column_profile,
                database,
                relation_name,
                attribute_name,
                resolved,
            ),
        )

    def profile_database(self, database):
        def compute():
            pairs = [
                (relation.name, attribute.name)
                for relation in database.schema.relations
                for attribute in relation.attributes
            ]
            profiles = self.map_ordered(
                lambda pair: self.profile_column(database, pair[0], pair[1]),
                pairs,
            )
            return dict(zip(pairs, profiles))

        return self.cache.get_or_compute(
            database, ("profile_database",), compute
        )

    def discover_uccs(self, database, max_arity: int = 2):
        from ..profiling import dependencies

        return self.cache.get_or_compute(
            database,
            ("uccs", max_arity),
            lambda: self._timed(
                "dependencies",
                dependencies.compute_uccs,
                database,
                max_arity,
                self.map_ordered,
            ),
        )

    def discover_inds(self, database, min_values: int = 1):
        from ..profiling import dependencies

        return self.cache.get_or_compute(
            database,
            ("inds", min_values),
            lambda: self._timed(
                "dependencies",
                dependencies.compute_inds,
                database,
                min_values,
                self.map_ordered,
            ),
        )

    def discover_fds(self, database):
        from ..profiling import dependencies

        return self.cache.get_or_compute(
            database,
            ("fds",),
            lambda: self._timed(
                "dependencies",
                dependencies.compute_fds,
                database,
                self.map_ordered,
            ),
        )

    def _timed(self, stage: str, function: Callable, *args):
        with self.metrics.time_stage(stage):
            return function(*args)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.executor.shutdown()

    def __repr__(self) -> str:
        return (
            f"Runtime(backend={self.backend!r}, "
            f"workers={self.executor.max_workers}, "
            f"cache={len(self.cache)} entries)"
        )


# ----------------------------------------------------------------------
# Process-wide default + active-runtime resolution
# ----------------------------------------------------------------------

_default_runtime: Runtime | None = None


def default_runtime() -> Runtime:
    """The lazily created process-wide runtime.

    Backend comes from ``$REPRO_RUNTIME_BACKEND`` (default: serial, the
    reference behaviour); its cache and metrics are shared by every
    caller that does not bring a runtime of its own.
    """
    global _default_runtime
    if _default_runtime is None:
        _default_runtime = Runtime(
            backend=os.environ.get(BACKEND_ENV_VAR, "serial")
        )
    return _default_runtime


def set_default_runtime(runtime: Runtime | None) -> None:
    """Replace the process-wide default (``None`` resets to lazy init)."""
    global _default_runtime
    _default_runtime = runtime


def get_runtime() -> Runtime:
    """The active runtime: the innermost ``activated()`` one, else the
    process default."""
    return _ACTIVE.get() or default_runtime()
