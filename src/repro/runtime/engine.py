"""The shared assessment runtime: executor + cache + metrics in one place.

Phase-1 complexity assessment (paper Section 3, Figure 3) is
embarrassingly parallel — module detectors are independent, column
profiles are independent, per-relation dependency discovery is
independent — and wholly repeatable, because every result is a pure
function of immutable instances.  :class:`Runtime` exploits both facts:

* ``run_detectors`` fans the module detectors out on the configured
  executor while preserving module order in the returned report dict,
* the cached profiling entry points (``profile_column``,
  ``profile_database``, ``discover_uccs/inds/fds``) memoise results in a
  content-keyed :class:`~repro.runtime.cache.ProfileCache`,
* everything is instrumented on a :class:`RuntimeMetrics` instance that
  :class:`~repro.core.framework.Efes`, the CLI, and the benchmark
  conftest can query.

One process-wide default runtime exists (``default_runtime``); code that
wants a private executor/cache builds its own ``Runtime`` and either
passes it to :class:`Efes` or activates it with ``with runtime.activated()``.
"""

from __future__ import annotations

import contextvars
import os
import time
from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager

from ..observability import tracing
from ..observability.context import SpanContext, merge_worker_telemetry
from ..resilience import DegradedResult, fault_point, format_exception
from .cache import ProfileCache
from .deadline import (
    OperationCancelled,
    WorkerReapedError,
    checkpoint,
    wire_deadline,
)
from .executor import Executor, make_executor
from .metrics import RuntimeMetrics

#: Environment variable selecting the default runtime's backend
#: ("serial", "threads", "process", or "auto").
BACKEND_ENV_VAR = "REPRO_RUNTIME_BACKEND"

_ACTIVE: contextvars.ContextVar["Runtime | None"] = contextvars.ContextVar(
    "repro_active_runtime", default=None
)


class Runtime:
    """An execution engine for EFES assessments and profiling."""

    def __init__(
        self,
        backend: str = "serial",
        max_workers: int | None = None,
        executor: Executor | None = None,
        cache: ProfileCache | None = None,
        metrics: RuntimeMetrics | None = None,
        spool=None,
    ) -> None:
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self.executor = (
            executor if executor is not None else make_executor(backend, max_workers)
        )
        # An empty ProfileCache is falsy (it has __len__), so never use
        # `or` here — a caller's fresh cache must not be discarded.
        self.cache = (
            cache if cache is not None else ProfileCache(metrics=self.metrics)
        )
        #: Scenario spool for the process backend; lazily created so the
        #: spool directory only materialises when processes are used.
        self._spool = spool
        #: Event sink for worker telemetry + fallback records.  The
        #: service scheduler injects its own log here; standalone runs
        #: get one lazily only when ``$REPRO_EVENT_LOG`` asks for it.
        self.events = None

    @property
    def backend(self) -> str:
        return self.executor.name

    def spool(self):
        """The scenario spool shipping inputs to worker processes."""
        if self._spool is None:
            from .spool import ScenarioSpool

            self._spool = ScenarioSpool(metrics=self.metrics)
        return self._spool

    def _process_eligible(self, task_count: int) -> bool:
        """Whether to route a fan-out through the process pool."""
        import os

        from ..resilience.faults import FAULT_PLAN_ENV_VAR, active_fault_plan
        from .executor import in_process_worker

        if not (
            not self.executor.supports_closures
            and self.executor.max_workers > 1
            and task_count > 1
            and not in_process_worker()
        ):
            return False
        # A chaos plan installed programmatically (injected_faults /
        # install_fault_plan) is parent-local: forked workers never see
        # it, so its detector/profile points would silently stop firing.
        # Keep such runs in-parent; env-armed plans reach workers (the
        # pool initializer re-resolves $REPRO_FAULT_PLAN) and stay on
        # the process path.
        if active_fault_plan() is not None and not os.environ.get(
            FAULT_PLAN_ENV_VAR
        ):
            return False
        return True

    # -- activation -------------------------------------------------------

    @contextmanager
    def activated(self):
        """Make this runtime the one :func:`get_runtime` resolves to."""
        token = _ACTIVE.set(self)
        try:
            yield self
        finally:
            _ACTIVE.reset(token)

    # -- execution --------------------------------------------------------

    def map_ordered(
        self,
        function: Callable,
        items: Iterable,
        stage: str | None = None,
    ) -> list:
        """Run ``function`` over ``items`` on the backend, results in
        submission order; each task sees this runtime as the active one."""
        items = list(items)
        self.metrics.increment("tasks_submitted", by=len(items))

        def call(item):
            with self.activated():
                if stage is None:
                    return function(item)
                with self.metrics.time_stage(stage):
                    return function(item)

        results = self.executor.map_ordered(call, items)
        self.metrics.increment("tasks_completed", by=len(items))
        return results

    def run_detectors(
        self, modules: Sequence, scenario, on_error: str = "raise"
    ) -> dict:
        """Phase 1 for every module concurrently; reports in module order.

        With ``on_error="raise"`` (the default), exceptions from a
        failing detector propagate to the caller (first module in
        declaration order wins when several fail).  With
        ``on_error="degrade"`` a failing detector yields a
        :class:`~repro.resilience.DegradedResult` in the report dict
        instead — the other modules' reports survive, the failure is
        counted on ``degraded_total``, and the detector's span carries an
        ``error`` annotation.  Each detector runs under a
        ``detector:<name>`` span and records its latency into the
        ``detector_seconds`` histogram, so per-detector p50/p95/p99
        survive the fan-out.
        """
        if on_error not in ("raise", "degrade"):
            raise ValueError(
                f"on_error must be 'raise' or 'degrade', got {on_error!r}"
            )
        self.metrics.increment("assessments")
        self.metrics.increment("detector_runs", by=len(modules))

        def run_one(module):
            with tracing.span(f"detector:{module.name}") as span:
                started = time.perf_counter()
                try:
                    checkpoint("detector", detector=module.name)
                    fault_point(
                        "detector", name=module.name, scenario=scenario.name
                    )
                    return module.assess(scenario)
                except Exception as exc:  # noqa: BLE001 - degradation boundary
                    if on_error == "raise":
                        raise
                    elapsed = time.perf_counter() - started
                    error = format_exception(exc)
                    span.set_attribute("error", error)
                    self.metrics.increment("degraded_total")
                    self.metrics.increment("detectors_degraded")
                    return DegradedResult(
                        module=module.name,
                        phase="assess",
                        error=error,
                        elapsed_seconds=elapsed,
                        scenario=scenario.name,
                    )
                finally:
                    self.metrics.observe(
                        "detector_seconds",
                        time.perf_counter() - started,
                        detector=module.name,
                    )

        with tracing.span("assess", scenario=scenario.name), \
                self.metrics.time_stage("assess"):
            if self._process_eligible(len(modules)):
                try:
                    processed = self._run_detectors_process(
                        modules, scenario, on_error
                    )
                except OperationCancelled as exc:
                    # A deadline abort (worker self-abort or pool reap)
                    # is not an infra failure: never re-run serially.
                    # Per-task attribution was lost with the pool, so
                    # every module tombstones in degrade mode.
                    if on_error == "raise":
                        raise
                    processed = self._cancelled_reports(
                        modules, scenario, exc
                    )
                if processed is not None:
                    return processed
            reports = self.map_ordered(
                run_one, modules, stage="assess.detector"
            )
        return {
            module.name: report for module, report in zip(modules, reports)
        }

    def _run_detectors_process(
        self, modules: Sequence, scenario, on_error: str
    ) -> dict | None:
        """Fan detector modules out across worker processes.

        Returns the report dict, or ``None`` when the process machinery
        itself fails (broken pool, unpicklable module, spool trouble,
        injected dispatch fault) — the caller then falls back to the
        in-process path, counted on ``process_fallbacks``.  Module
        exceptions are **not** infrastructure: workers return them
        tagged, and raise/degrade semantics are reproduced here exactly
        as the serial path would.
        """
        import pickle

        from . import workers

        try:
            fault_point(
                "process.dispatch", stage="detectors", scenario=scenario.name
            )
            spool = self.spool()
            fingerprint = spool.put_scenario(scenario)
            context = SpanContext.capture()
            budget = wire_deadline()
            tasks = [
                (
                    str(spool.directory),
                    fingerprint,
                    pickle.dumps(module),
                    budget,
                    context,
                )
                for module in modules
            ]
            self.metrics.increment("tasks_submitted", by=len(tasks))
            outcomes = self.executor.run_tasks(workers.assess_module, tasks)
        except OperationCancelled as exc:
            self._note_cancelled(exc, stage="detectors")
            raise
        except Exception as exc:  # noqa: BLE001 - degrade to serial, never fail
            self._note_process_fallback(exc, stage="detectors")
            return None
        reports: dict = {}
        for module, outcome in zip(modules, outcomes):
            status, payload, error_text, elapsed, cache_entries, telemetry = (
                outcome
            )
            for key, value in cache_entries:
                self.cache.put_raw(key, value)
            self.metrics.observe(
                "detector_seconds", elapsed, detector=module.name
            )
            self.metrics.increment("tasks_completed")
            merged = merge_worker_telemetry(
                telemetry, self.metrics, events=self._event_sink()
            )
            # The worker's own detector span landed in the tree when its
            # telemetry merged; only open a stub here when it did not
            # (untraced runs, or a dropped blob).
            handle = (
                tracing.NOOP_SPAN
                if merged
                else tracing.span(f"detector:{module.name}", backend="process")
            )
            with handle as span:
                if status == workers.OK:
                    reports[module.name] = payload
                    continue
                span.set_attribute("error", error_text)
                if on_error == "raise":
                    if payload is not None:
                        raise pickle.loads(payload)
                    raise RuntimeError(error_text)
                self.metrics.increment("degraded_total")
                self.metrics.increment("detectors_degraded")
                reports[module.name] = DegradedResult(
                    module=module.name,
                    phase="assess",
                    error=error_text,
                    elapsed_seconds=elapsed,
                    scenario=scenario.name,
                )
        return reports

    # -- cached profiling -------------------------------------------------

    def profile_column(
        self, database, relation_name: str, attribute_name: str, datatype=None
    ):
        from ..profiling import profiler

        resolved = (
            datatype
            if datatype is not None
            else database.schema.attribute(relation_name, attribute_name).datatype
        )
        def compute():
            checkpoint(
                "profile", relation=relation_name, attribute=attribute_name
            )
            fault_point(
                "profile", relation=relation_name, attribute=attribute_name
            )
            return self._timed(
                "profile",
                profiler.compute_column_profile,
                database,
                relation_name,
                attribute_name,
                resolved,
                span=span,
            )

        with tracing.span(
            "profile",
            relation=relation_name,
            attribute=attribute_name,
            cache_hit=True,
        ) as span:
            return self.cache.get_or_compute(
                database,
                ("profile_column", relation_name, attribute_name, str(resolved)),
                compute,
            )

    def profile_database(self, database):
        def compute():
            span.set_attribute("cache_hit", False)
            pairs = [
                (relation.name, attribute.name)
                for relation in database.schema.relations
                for attribute in relation.attributes
            ]
            if self._process_eligible(len(pairs)):
                profiles = self._profile_columns_process(database, pairs)
                if profiles is not None:
                    return dict(zip(pairs, profiles))
            profiles = self.map_ordered(
                lambda pair: self.profile_column(database, pair[0], pair[1]),
                pairs,
            )
            return dict(zip(pairs, profiles))

        with tracing.span(
            "profile", scope="database", database=database.name, cache_hit=True
        ) as span:
            return self.cache.get_or_compute(
                database, ("profile_database",), compute
            )

    def _profile_columns_process(self, database, pairs) -> list | None:
        """Profile columns on worker processes; ``None`` → serial fallback.

        Columns already warm in the cache (probed with ``peek``) are not
        re-farmed; fresh results land in the cache under exactly the keys
        :meth:`profile_column` would have used, so the backend leaves no
        trace in the cache's key set.
        """
        from . import workers

        def column_key(pair):
            datatype = database.schema.attribute(pair[0], pair[1]).datatype
            return (
                ("profile_column", pair[0], pair[1], str(datatype)),
                datatype,
            )

        try:
            fault_point(
                "process.dispatch", stage="profile", database=database.name
            )
            spool = self.spool()
            fingerprint = spool.put_database(database)
            context = SpanContext.capture()
            keyed = {pair: column_key(pair) for pair in pairs}
            missing = [
                pair
                for pair in pairs
                if self.cache.peek(database, keyed[pair][0]) is None
            ]
            budget = wire_deadline()
            tasks = [
                (
                    str(spool.directory),
                    fingerprint,
                    pair[0],
                    pair[1],
                    keyed[pair][1].value,
                    budget,
                    context,
                )
                for pair in missing
            ]
            self.metrics.increment("tasks_submitted", by=len(tasks))
            outcomes = self.executor.run_tasks(workers.profile_column, tasks)
        except OperationCancelled as exc:
            self._note_cancelled(exc, stage="profile")
            raise
        except Exception as exc:  # noqa: BLE001 - degrade to serial, never fail
            self._note_process_fallback(exc, stage="profile")
            return None
        for pair, (profile, elapsed, telemetry) in zip(missing, outcomes):
            self.metrics.record_stage("profile", elapsed)
            self.metrics.increment("tasks_completed")
            self.cache.put(database, keyed[pair][0], profile)
            merge_worker_telemetry(
                telemetry, self.metrics, events=self._event_sink()
            )
        return [self.cache.peek(database, keyed[pair][0]) for pair in pairs]

    def discover_uccs(self, database, max_arity: int = 2):
        from ..profiling import dependencies

        def compute():
            chunks = self._relation_chunks_process(
                database, "relation_uccs", "uccs", extra=(max_arity,)
            )
            if chunks is not None:
                span.set_attribute("cache_hit", False)
                return [ucc for chunk in chunks for ucc in chunk]
            return self._timed(
                "dependencies",
                dependencies.compute_uccs,
                database,
                max_arity,
                self.map_ordered,
                span=span,
            )

        with tracing.span(
            "ucc", database=database.name, cache_hit=True
        ) as span:
            return self.cache.get_or_compute(
                database, ("uccs", max_arity), compute
            )

    def discover_inds(self, database, min_values: int = 1):
        from ..profiling import dependencies

        def compute():
            chunks = self._relation_chunks_process(
                database, "relation_value_sets", "inds"
            )
            if chunks is not None:
                span.set_attribute("cache_hit", False)
                # Chunks arrive in schema relation order, each in schema
                # attribute order — the same insertion order the serial
                # path produces, so IND results stay canonical.
                value_sets = {
                    key: values for chunk in chunks for key, values in chunk
                }
                return dependencies._inds_from_value_sets(
                    value_sets, min_values
                )
            return self._timed(
                "dependencies",
                dependencies.compute_inds,
                database,
                min_values,
                self.map_ordered,
                span=span,
            )

        with tracing.span(
            "ind", database=database.name, cache_hit=True
        ) as span:
            return self.cache.get_or_compute(
                database, ("inds", min_values), compute
            )

    def discover_fds(self, database):
        from ..profiling import dependencies

        def compute():
            chunks = self._relation_chunks_process(
                database, "relation_fds", "fds"
            )
            if chunks is not None:
                span.set_attribute("cache_hit", False)
                return [fd for chunk in chunks for fd in chunk]
            return self._timed(
                "dependencies",
                dependencies.compute_fds,
                database,
                self.map_ordered,
                span=span,
            )

        with tracing.span(
            "fd", database=database.name, cache_hit=True
        ) as span:
            return self.cache.get_or_compute(database, ("fds",), compute)

    def _relation_chunks_process(
        self, database, worker_name: str, stage: str, extra: tuple = ()
    ) -> list | None:
        """Fan per-relation discovery tasks out to worker processes.

        Returns per-relation result chunks in schema relation order, or
        ``None`` when the process backend is ineligible or its machinery
        fails (then counted on ``process_fallbacks``) — callers fall
        back to the in-process ``mapper`` path.
        """
        relations = database.schema.relations
        if not self._process_eligible(len(relations)):
            return None
        from . import workers

        try:
            fault_point(
                "process.dispatch", stage=stage, database=database.name
            )
            spool = self.spool()
            fingerprint = spool.put_database(database)
            context = SpanContext.capture()
            budget = wire_deadline()
            tasks = [
                (
                    str(spool.directory),
                    fingerprint,
                    relation.name,
                    *extra,
                    budget,
                    context,
                )
                for relation in relations
            ]
            self.metrics.increment("tasks_submitted", by=len(tasks))
            outcomes = self.executor.run_tasks(
                getattr(workers, worker_name), tasks
            )
        except OperationCancelled as exc:
            self._note_cancelled(exc, stage=stage)
            raise
        except Exception as exc:  # noqa: BLE001 - degrade to serial, never fail
            self._note_process_fallback(exc, stage=stage)
            return None
        chunks = []
        for chunk, elapsed, telemetry in outcomes:
            self.metrics.record_stage("dependencies", elapsed)
            self.metrics.increment("tasks_completed")
            merge_worker_telemetry(
                telemetry, self.metrics, events=self._event_sink()
            )
            chunks.append(chunk)
        return chunks

    def _cancelled_reports(
        self, modules: Sequence, scenario, exc: OperationCancelled
    ) -> dict:
        """Tombstone every module after a pool-level deadline abort."""
        error = format_exception(exc)
        reports: dict = {}
        for module in modules:
            self.metrics.increment("degraded_total")
            self.metrics.increment("detectors_degraded")
            reports[module.name] = DegradedResult(
                module=module.name,
                phase="assess",
                error=error,
                elapsed_seconds=0.0,
                scenario=scenario.name,
            )
        return reports

    def _note_cancelled(self, exc: OperationCancelled, stage: str) -> None:
        """Account a deadline abort surfacing from the process backend."""
        if isinstance(exc, WorkerReapedError):
            self.metrics.increment("worker_reaped")
            events = self._event_sink()
            if events is not None:
                events.emit("worker.reaped", stage=stage, error=str(exc))

    def _event_sink(self):
        """The event log that worker events and fallback records land in.

        The service scheduler shares its log via ``runtime.events``;
        standalone runs get a log lazily only when ``$REPRO_EVENT_LOG``
        names a sink, so plain library use allocates nothing.
        """
        if self.events is None:
            from ..observability.events import EVENT_LOG_ENV_VAR, EventLog

            sink_path = os.environ.get(EVENT_LOG_ENV_VAR)
            if sink_path:
                self.events = EventLog(path=sink_path)
        return self.events

    @staticmethod
    def _fallback_reason(exc: Exception) -> str:
        """Classify why the process backend bailed, for the metric label.

        Order matters: :class:`~repro.resilience.faults.FaultError` and
        :class:`~repro.runtime.spool.SpoolError` are both ``OSError``
        subclasses, and injected faults must not masquerade as spool IO.
        """
        import pickle
        from concurrent.futures.process import BrokenProcessPool

        from ..resilience.faults import FaultError
        from .spool import SpoolError

        if isinstance(exc, FaultError):
            return "fault"
        if isinstance(exc, BrokenProcessPool):
            return "broken_pool"
        if isinstance(exc, SpoolError):
            return "spool_io"
        if isinstance(
            exc, (pickle.PicklingError, pickle.UnpicklingError, AttributeError)
        ):
            return "codec"
        return "other"

    def _note_process_fallback(
        self, exc: Exception, stage: str = "unknown"
    ) -> None:
        reason = self._fallback_reason(exc)
        error = f"{type(exc).__name__}: {exc}"
        self.metrics.increment("process_fallbacks", reason=reason)
        events = self._event_sink()
        if events is not None:
            events.emit(
                "process.fallback", stage=stage, reason=reason, error=error
            )
        with tracing.span(
            "process.fallback", stage=stage, reason=reason, error=error
        ):
            pass

    def _timed(self, stage: str, function: Callable, *args, span=None):
        # Reaching the compute callback means the cache did not have the
        # entry; flip the span's optimistic cache_hit annotation.
        if span is not None:
            span.set_attribute("cache_hit", False)
        with self.metrics.time_stage(stage):
            return function(*args)

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self.executor.shutdown()

    def __repr__(self) -> str:
        return (
            f"Runtime(backend={self.backend!r}, "
            f"workers={self.executor.max_workers}, "
            f"cache={len(self.cache)} entries)"
        )


# ----------------------------------------------------------------------
# Process-wide default + active-runtime resolution
# ----------------------------------------------------------------------

_default_runtime: Runtime | None = None


def default_runtime() -> Runtime:
    """The lazily created process-wide runtime.

    Backend comes from ``$REPRO_RUNTIME_BACKEND`` (default: serial, the
    reference behaviour); its cache and metrics are shared by every
    caller that does not bring a runtime of its own.
    """
    global _default_runtime
    if _default_runtime is None:
        _default_runtime = Runtime(
            backend=os.environ.get(BACKEND_ENV_VAR, "serial")
        )
    return _default_runtime


def set_default_runtime(runtime: Runtime | None) -> None:
    """Replace the process-wide default (``None`` resets to lazy init)."""
    global _default_runtime
    _default_runtime = runtime


def get_runtime() -> Runtime:
    """The active runtime: the innermost ``activated()`` one, else the
    process default."""
    return _ACTIVE.get() or default_runtime()
