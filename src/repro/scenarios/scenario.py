"""Integration scenarios (Section 3.1).

"A data integration scenario comprises: (i) a set of source databases;
(ii) a target database, into which the source databases shall be
integrated; and (iii) correspondences to describe how these sources relate
to the target."
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterator, Mapping, Sequence

from ..matching.correspondence import CorrespondenceSet
from ..relational.database import Database


@dataclasses.dataclass
class IntegrationScenario:
    """A target database, its sources, and per-source correspondences."""

    name: str
    sources: tuple[Database, ...]
    target: Database
    correspondences: dict[str, CorrespondenceSet]

    def __init__(
        self,
        name: str,
        sources: Sequence[Database] | Database,
        target: Database,
        correspondences: Mapping[str, CorrespondenceSet] | CorrespondenceSet,
    ) -> None:
        if isinstance(sources, Database):
            sources = (sources,)
        self.name = name
        self.sources = tuple(sources)
        self.target = target
        if isinstance(correspondences, CorrespondenceSet):
            if len(self.sources) != 1:
                raise ValueError(
                    "a bare CorrespondenceSet is only allowed for a "
                    "single-source scenario"
                )
            correspondences = {self.sources[0].name: correspondences}
        self.correspondences = dict(correspondences)
        self._validate()

    def _validate(self) -> None:
        source_names = {source.name for source in self.sources}
        if len(source_names) != len(self.sources):
            raise ValueError("source database names must be unique")
        unknown = set(self.correspondences) - source_names
        if unknown:
            raise ValueError(f"correspondences for unknown sources: {unknown}")
        for source in self.sources:
            cset = self.correspondences.get(source.name)
            if cset is not None:
                cset.validate_against(source.schema, self.target.schema)

    def source(self, name: str) -> Database:
        for source in self.sources:
            if source.name == name:
                return source
        raise KeyError(f"unknown source database: {name!r}")

    def pairs(self) -> Iterator[tuple[Database, CorrespondenceSet]]:
        """Iterate (source database, its correspondences) pairs."""
        for source in self.sources:
            yield source, self.correspondences.get(source.name, CorrespondenceSet())

    def total_source_attributes(self) -> int:
        """Source attribute count — the baseline estimator's driver [14]."""
        return sum(source.schema.attribute_count() for source in self.sources)

    def __repr__(self) -> str:
        sources = ", ".join(source.name for source in self.sources)
        return f"IntegrationScenario({self.name!r}: [{sources}] -> {self.target.name!r})"
