"""Integration scenarios: the running example and both case-study domains.

All instances are synthesised deterministically (see DESIGN.md §1 for the
substitution rationale); every builder takes a seed.
"""

from .bibliographic import (
    bibliographic_scenarios,
    scenario_multi_source,
    scenario_s1_s2,
    scenario_s1_s3,
    scenario_s3_s4,
    scenario_s4_s4,
)
from .example import ExampleParameters, example_scenario
from .generators import DataGenerator
from .io import (
    ScenarioFormatError,
    load_database,
    load_scenario,
    save_database,
    save_scenario,
)
from .music import (
    music_scenarios,
    scenario_d1_d2,
    scenario_f1_m2,
    scenario_m1_d2,
    scenario_m1_f2,
)
from .scenario import IntegrationScenario

__all__ = [
    "DataGenerator",
    "ExampleParameters",
    "IntegrationScenario",
    "ScenarioFormatError",
    "load_database",
    "load_scenario",
    "save_database",
    "save_scenario",
    "bibliographic_scenarios",
    "example_scenario",
    "music_scenarios",
    "scenario_d1_d2",
    "scenario_f1_m2",
    "scenario_m1_d2",
    "scenario_m1_f2",
    "scenario_multi_source",
    "scenario_s1_s2",
    "scenario_s1_s3",
    "scenario_s3_s4",
    "scenario_s4_s4",
]
