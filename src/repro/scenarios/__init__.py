"""Integration scenarios: the running example and both case-study domains.

All instances are synthesised deterministically (see DESIGN.md §1 for the
substitution rationale); every builder takes a seed.
"""

from .bibliographic import (
    bibliographic_scenarios,
    scenario_multi_source,
    scenario_s1_s2,
    scenario_s1_s3,
    scenario_s3_s4,
    scenario_s4_s4,
)
from .example import ExampleParameters, example_scenario
from .generators import DataGenerator
from .io import (
    ScenarioFormatError,
    database_from_dict,
    database_to_dict,
    load_database,
    load_scenario,
    save_database,
    save_scenario,
    scenario_from_dict,
    scenario_to_dict,
)
from .music import (
    music_scenarios,
    scenario_d1_d2,
    scenario_f1_m2,
    scenario_m1_d2,
    scenario_m1_f2,
)
from .scenario import IntegrationScenario


class UnknownScenarioError(KeyError):
    """A scenario reference names neither a catalogue entry nor a
    directory in the on-disk format."""

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return (
            f"unknown scenario {self.name!r}; run `efes list` or pass a "
            "scenario directory (see repro.scenarios.io)"
        )


def scenario_catalogue(seed: int = 1) -> dict[str, IntegrationScenario]:
    """All shipped scenarios by name: the running example plus both
    case-study domains, built deterministically from ``seed``."""
    catalogue = {"example": example_scenario()}
    for scenario in bibliographic_scenarios(seed) + music_scenarios(seed):
        catalogue[scenario.name] = scenario
    return catalogue


def resolve_scenario(name: str, seed: int = 1) -> IntegrationScenario:
    """A shipped scenario by name, or a directory in the on-disk format.

    This is the single resolution path shared by the CLI and the
    assessment service's HTTP API.
    """
    from pathlib import Path

    catalogue = scenario_catalogue(seed)
    if name in catalogue:
        return catalogue[name]
    if Path(name).is_dir():
        return load_scenario(name)
    raise UnknownScenarioError(name)


__all__ = [
    "DataGenerator",
    "ExampleParameters",
    "IntegrationScenario",
    "ScenarioFormatError",
    "UnknownScenarioError",
    "database_from_dict",
    "database_to_dict",
    "load_database",
    "load_scenario",
    "save_database",
    "save_scenario",
    "scenario_from_dict",
    "scenario_to_dict",
    "bibliographic_scenarios",
    "example_scenario",
    "music_scenarios",
    "resolve_scenario",
    "scenario_catalogue",
    "scenario_d1_d2",
    "scenario_f1_m2",
    "scenario_m1_d2",
    "scenario_m1_f2",
    "scenario_multi_source",
    "scenario_s1_s2",
    "scenario_s1_s3",
    "scenario_s3_s4",
    "scenario_s4_s4",
]
