"""The bibliographic case study (Amalgam-style; Section 6.1, Figure 6).

Four schemas in the spirit of the Amalgam integration benchmark:

* **s1** — a denormalised dump: articles/books with concatenated author
  strings, string-typed years, and ``from-to`` page ranges,
* **s2** — a normalised publication database (publications / persons /
  authorship),
* **s3** — a key-string style database (papers with textual citation keys,
  ``Last, First`` author names, split page numbers),
* **s4** — a warehouse-style flat publication table (also usable as a
  target, which yields the identical-schema scenario s4-s4).

The four integration scenarios of Figure 6 are s1-s2, s1-s3, s3-s4 and
s4-s4 (source-target pairs; the paper uses one identical-schema scenario
plus three randomly selected ones per domain).
"""

from __future__ import annotations

from ..matching.correspondence import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from ..relational.constraints import NotNull, foreign_key, primary_key
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import Schema, relation
from .generators import DataGenerator
from .scenario import IntegrationScenario

DOMAIN = "bibliographic"


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------


def schema_s1() -> Schema:
    schema = Schema(
        "s1",
        relations=[
            relation(
                "articles",
                [
                    ("id", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("authors", DataType.STRING),
                    ("journal", DataType.STRING),
                    ("year", DataType.STRING),
                    ("pages", DataType.STRING),
                ],
            ),
            relation(
                "books",
                [
                    ("id", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("authors", DataType.STRING),
                    ("publisher", DataType.STRING),
                    ("year", DataType.STRING),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("articles", "id"))
    schema.add_constraint(NotNull("articles", "title"))
    schema.add_constraint(NotNull("articles", "authors"))
    schema.add_constraint(primary_key("books", "id"))
    schema.add_constraint(NotNull("books", "title"))
    return schema


def schema_s2() -> Schema:
    schema = Schema(
        "s2",
        relations=[
            relation(
                "publications",
                [
                    ("pubid", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("venue", DataType.STRING),
                    ("year", DataType.INTEGER),
                    ("type", DataType.STRING),
                ],
            ),
            relation(
                "persons",
                [
                    ("pid", DataType.INTEGER),
                    ("name", DataType.STRING),
                ],
            ),
            relation(
                "authorship",
                [
                    ("pubid", DataType.INTEGER),
                    ("pid", DataType.INTEGER),
                    ("position", DataType.INTEGER),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("publications", "pubid"))
    schema.add_constraint(NotNull("publications", "title"))
    schema.add_constraint(NotNull("publications", "venue"))
    schema.add_constraint(NotNull("publications", "type"))
    schema.add_constraint(primary_key("persons", "pid"))
    schema.add_constraint(NotNull("persons", "name"))
    schema.add_constraint(primary_key("authorship", ("pubid", "pid")))
    schema.add_constraint(
        foreign_key("authorship", "pubid", "publications", "pubid")
    )
    schema.add_constraint(foreign_key("authorship", "pid", "persons", "pid"))
    return schema


def schema_s3() -> Schema:
    schema = Schema(
        "s3",
        relations=[
            relation(
                "papers",
                [
                    ("pkey", DataType.STRING),
                    ("title", DataType.STRING),
                    ("venue", DataType.STRING),
                    ("year", DataType.INTEGER),
                    ("pages_from", DataType.INTEGER),
                    ("pages_to", DataType.INTEGER),
                ],
            ),
            relation(
                "authors",
                [
                    ("aid", DataType.INTEGER),
                    ("full_name", DataType.STRING),
                ],
            ),
            relation(
                "writes",
                [
                    ("paper", DataType.STRING),
                    ("author", DataType.INTEGER),
                    ("rank", DataType.INTEGER),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("papers", "pkey"))
    schema.add_constraint(NotNull("papers", "title"))
    schema.add_constraint(NotNull("papers", "venue"))
    schema.add_constraint(primary_key("authors", "aid"))
    schema.add_constraint(NotNull("authors", "full_name"))
    schema.add_constraint(primary_key("writes", ("paper", "author")))
    schema.add_constraint(foreign_key("writes", "paper", "papers", "pkey"))
    schema.add_constraint(foreign_key("writes", "author", "authors", "aid"))
    return schema


def schema_s4() -> Schema:
    schema = Schema(
        "s4",
        relations=[
            relation(
                "publication",
                [
                    ("id", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("lead_author", DataType.STRING),
                    ("venue", DataType.STRING),
                    ("year", DataType.INTEGER),
                    ("num_pages", DataType.INTEGER),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("publication", "id"))
    schema.add_constraint(NotNull("publication", "title"))
    schema.add_constraint(NotNull("publication", "lead_author"))
    schema.add_constraint(NotNull("publication", "venue"))
    return schema


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------


def build_s1(seed: int, articles: int = 400, books: int = 120) -> Database:
    """Denormalised dump: ``First Last; First Last`` author strings,
    string years with a sprinkle of unparseable entries, page ranges."""
    generator = DataGenerator(seed)
    database = Database(schema_s1())
    author_pool = generator.distinct_person_names(160)
    for index in range(articles):
        author_count = generator.random.randint(1, 3)
        authors = "; ".join(
            generator.random.sample(author_pool, author_count)
        )
        year: object = str(generator.year())
        if generator.maybe(0.04):
            year = "unknown"
        start = generator.random.randint(1, 500)
        database.insert(
            "articles",
            {
                "id": index + 1,
                "title": generator.paper_title(),
                "authors": authors,
                "journal": None if generator.maybe(0.12) else generator.venue(),
                "year": year,
                "pages": f"{start}-{start + generator.random.randint(5, 30)}",
            },
        )
    for index in range(books):
        database.insert(
            "books",
            {
                "id": index + 1,
                "title": generator.paper_title(),
                "authors": generator.choose(author_pool)
                if generator.maybe(0.9)
                else None,
                "publisher": generator.choose(
                    ("Springer", "ACM Press", "Morgan Kaufmann", "Wiley")
                ),
                "year": str(generator.year()),
            },
        )
    return database


def build_s2(
    seed: int, publications: int = 500, persons: int = 180
) -> Database:
    generator = DataGenerator(seed)
    database = Database(schema_s2())
    names = generator.distinct_person_names(persons)
    for pid, name in enumerate(names, start=1):
        database.insert("persons", {"pid": pid, "name": name})
    for pubid in range(1, publications + 1):
        database.insert(
            "publications",
            {
                "pubid": pubid,
                "title": generator.paper_title(),
                "venue": generator.venue(),
                "year": generator.year(),
                "type": generator.choose(("article", "book", "inproceedings")),
            },
        )
        for position, pid in enumerate(
            generator.random.sample(
                range(1, persons + 1), generator.random.randint(1, 3)
            ),
            start=1,
        ):
            database.insert(
                "authorship",
                {"pubid": pubid, "pid": pid, "position": position},
            )
    return database


def build_s3(
    seed: int,
    papers: int = 450,
    authors: int = 170,
    papers_without_authors: int = 35,
    authors_without_papers: int = 24,
) -> Database:
    """Citation-key style instance with controlled structural anomalies:
    some papers have no ``writes`` rows and some authors no papers."""
    generator = DataGenerator(seed)
    database = Database(schema_s3())
    names = generator.distinct_person_names(authors, inverted=True)
    for aid, full_name in enumerate(names, start=1):
        database.insert("authors", {"aid": aid, "full_name": full_name})
    detached_authors = set(range(1, authors_without_papers and authors + 1))
    connected_author_ids = list(range(1, authors + 1 - authors_without_papers))
    orphan_papers = generator.sample_indices(papers, papers_without_authors)
    for index in range(papers):
        year = generator.year()
        start = generator.random.randint(1, 500)
        surname = names[index % len(names)].split(",")[0].lower()
        database.insert(
            "papers",
            {
                "pkey": f"{surname}{year}{index}",
                "title": generator.paper_title(),
                "venue": generator.venue(),
                "year": year,
                "pages_from": start,
                "pages_to": start + generator.random.randint(5, 30),
            },
        )
        if index in orphan_papers:
            continue
        chosen = generator.random.sample(
            connected_author_ids,
            min(generator.random.randint(1, 3), len(connected_author_ids)),
        )
        for rank, aid in enumerate(chosen, start=1):
            database.insert(
                "writes",
                {
                    "paper": f"{surname}{year}{index}",
                    "author": aid,
                    "rank": rank,
                },
            )
    del detached_authors  # the last `authors_without_papers` ids are unused
    return database


def build_s4(seed: int, publications: int = 520) -> Database:
    generator = DataGenerator(seed)
    database = Database(schema_s4())
    names = generator.distinct_person_names(150)
    for index in range(publications):
        pages = generator.random.randint(6, 35)
        database.insert(
            "publication",
            {
                "id": index + 1,
                "title": generator.paper_title(),
                "lead_author": generator.choose(names),
                "venue": generator.venue(),
                "year": generator.year(),
                "num_pages": pages,
            },
        )
    return database


# ----------------------------------------------------------------------
# Transformations the (simulated) practitioner knows how to script
# ----------------------------------------------------------------------


def first_author(author_list: str) -> str:
    """``"A One; B Two"`` → ``"A One"``."""
    return author_list.split(";")[0].strip()


def invert_name(name: str) -> str:
    """``"Last, First"`` → ``"First Last"``."""
    if "," in name:
        last, first = name.split(",", 1)
        return f"{first.strip()} {last.strip()}"
    return name


def parse_year(year_text: str) -> int | None:
    try:
        return int(str(year_text).strip())
    except ValueError:
        return None


def page_count(pages: str) -> int | None:
    """``"120-135"`` → 16."""
    try:
        start_text, end_text = str(pages).split("-", 1)
        return int(end_text) - int(start_text) + 1
    except ValueError:
        return None


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def scenario_s1_s2(seed: int = 1) -> IntegrationScenario:
    source = build_s1(seed * 7 + 1)
    target = build_s2(seed * 7 + 2)
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("articles", "publications"),
            attribute_correspondence("articles.title", "publications.title"),
            attribute_correspondence("articles.journal", "publications.venue"),
            attribute_correspondence("articles.year", "publications.year"),
            attribute_correspondence("articles.authors", "persons.name"),
            relation_correspondence("books", "publications"),
            attribute_correspondence("books.title", "publications.title"),
            attribute_correspondence("books.year", "publications.year"),
            relation_correspondence("articles", "authorship"),
        ]
    )
    scenario = IntegrationScenario("s1-s2", source, target, correspondences)
    scenario.known_transformations = {
        ("articles.authors", "persons.name"): first_author,
        ("articles.year", "publications.year"): parse_year,
        ("books.year", "publications.year"): parse_year,
    }
    return scenario


def scenario_s1_s3(seed: int = 1) -> IntegrationScenario:
    source = build_s1(seed * 7 + 3)
    target = build_s3(seed * 7 + 4)
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("articles", "papers"),
            attribute_correspondence("articles.title", "papers.title"),
            attribute_correspondence("articles.journal", "papers.venue"),
            attribute_correspondence("articles.year", "papers.year"),
            attribute_correspondence("articles.pages", "papers.pages_from"),
            attribute_correspondence("articles.authors", "authors.full_name"),
            relation_correspondence("articles", "writes"),
        ]
    )
    scenario = IntegrationScenario("s1-s3", source, target, correspondences)
    scenario.known_transformations = {
        ("articles.authors", "authors.full_name"): lambda text: ", ".join(
            reversed(first_author(text).rsplit(" ", 1))
        ),
        ("articles.year", "papers.year"): parse_year,
        ("articles.pages", "papers.pages_from"): lambda pages: parse_year(
            str(pages).split("-", 1)[0]
        ),
    }
    return scenario


def scenario_s3_s4(seed: int = 1) -> IntegrationScenario:
    source = build_s3(seed * 7 + 5)
    target = build_s4(seed * 7 + 6)
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("papers", "publication"),
            attribute_correspondence("papers.title", "publication.title"),
            attribute_correspondence("papers.venue", "publication.venue"),
            attribute_correspondence("papers.year", "publication.year"),
            attribute_correspondence(
                "authors.full_name", "publication.lead_author"
            ),
        ]
    )
    scenario = IntegrationScenario("s3-s4", source, target, correspondences)
    scenario.known_transformations = {
        ("authors.full_name", "publication.lead_author"): invert_name,
    }
    return scenario


def scenario_s4_s4(seed: int = 1) -> IntegrationScenario:
    """The identical-schema scenario: "source and target database have the
    same schema and similar data, so there are no heterogeneities"."""
    source = build_s4(seed * 7 + 7)
    source.schema.name = "s4"
    target_schema_db = build_s4(seed * 7 + 8)
    target_schema_db.schema.name = "s4_target"
    # Rebuild the target under a distinct database name (source names must
    # be unique within a scenario).
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("publication", "publication"),
            attribute_correspondence("publication.id", "publication.id"),
            attribute_correspondence("publication.title", "publication.title"),
            attribute_correspondence(
                "publication.lead_author", "publication.lead_author"
            ),
            attribute_correspondence("publication.venue", "publication.venue"),
            attribute_correspondence("publication.year", "publication.year"),
            attribute_correspondence(
                "publication.num_pages", "publication.num_pages"
            ),
        ]
    )
    scenario = IntegrationScenario(
        "s4-s4", source, target_schema_db, correspondences
    )
    scenario.known_transformations = {}
    return scenario


def scenario_multi_source(seed: int = 1) -> IntegrationScenario:
    """A multi-source scenario: s1 *and* s3 integrated into one s2 target.

    The paper's framework explicitly supports "data integration projects
    with multiple sources" (abstract); this scenario exercises that path
    — every module iterates the (source, correspondences) pairs and the
    mapping report carries one connection per source database.
    """
    source_a = build_s1(seed * 7 + 9)
    source_b = build_s3(seed * 7 + 10)
    target = build_s2(seed * 7 + 11)
    correspondences_a = CorrespondenceSet(
        [
            relation_correspondence("articles", "publications"),
            attribute_correspondence("articles.title", "publications.title"),
            attribute_correspondence("articles.journal", "publications.venue"),
            attribute_correspondence("articles.year", "publications.year"),
            attribute_correspondence("articles.authors", "persons.name"),
        ]
    )
    correspondences_b = CorrespondenceSet(
        [
            relation_correspondence("papers", "publications"),
            attribute_correspondence("papers.title", "publications.title"),
            attribute_correspondence("papers.venue", "publications.venue"),
            attribute_correspondence("papers.year", "publications.year"),
            attribute_correspondence("authors.full_name", "persons.name"),
        ]
    )
    scenario = IntegrationScenario(
        "s1+s3-s2",
        [source_a, source_b],
        target,
        {"s1": correspondences_a, "s3": correspondences_b},
    )
    scenario.known_transformations = {
        ("articles.authors", "persons.name"): first_author,
        ("articles.year", "publications.year"): parse_year,
        ("authors.full_name", "persons.name"): invert_name,
    }
    return scenario


def bibliographic_scenarios(seed: int = 1) -> list[IntegrationScenario]:
    """The four Figure 6 scenarios, deterministically seeded."""
    return [
        scenario_s1_s2(seed),
        scenario_s1_s3(seed),
        scenario_s3_s4(seed),
        scenario_s4_s4(seed),
    ]
