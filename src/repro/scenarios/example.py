"""The paper's running example (Figure 2): music records integration.

Source schema: ``albums``, ``songs``, ``artist_lists``, ``artist_credits``
— an album carries an artist *list*, credits attach artists to lists, and
song lengths are stored in milliseconds.  Target schema: ``records`` (one
artist string per record) and ``tracks`` (durations as ``m:ss`` strings).

The generated instance reproduces the complexity reports of the paper:

* Table 3 — 503 albums whose artist-credit count violates
  κ(ρ_records→artist) = 1 and 102 artists without any album, violating
  κ(ρ_artist→records) = 1..*;
* Table 2 — records is fed from 3 source tables / 2 attributes / fresh
  primary keys, tracks from 3 / 2 / none;
* Table 6 — a *Different value representations* heterogeneity between
  ``songs.length`` and ``tracks.duration``.
"""

from __future__ import annotations

import dataclasses

from ..matching.correspondence import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from ..relational.constraints import NotNull, foreign_key, primary_key
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import Schema, relation
from .generators import DataGenerator
from .scenario import IntegrationScenario


@dataclasses.dataclass(frozen=True)
class ExampleParameters:
    """Size knobs of the running example; defaults match the paper."""

    albums: int = 2000
    multi_artist_albums: int = 503  # Table 3, first row
    detached_artists: int = 102     # Table 3, second row
    songs_per_album: tuple[int, int] = (2, 4)
    target_records: int = 300
    tracks_per_record: tuple[int, int] = (2, 4)
    seed: int = 20150323  # EDBT 2015 opened on 2015-03-23


def source_schema() -> Schema:
    """The source schema of Figure 2a."""
    schema = Schema(
        "source",
        relations=[
            relation(
                "artist_lists",
                [("id", DataType.INTEGER)],
            ),
            relation(
                "albums",
                [
                    ("id", DataType.INTEGER),
                    ("name", DataType.STRING),
                    ("artist_list", DataType.INTEGER),
                ],
            ),
            relation(
                "songs",
                [
                    ("album", DataType.INTEGER),
                    ("name", DataType.STRING),
                    ("artist_list", DataType.INTEGER),
                    ("length", DataType.INTEGER),
                ],
            ),
            relation(
                "artist_credits",
                [
                    ("artist_list", DataType.INTEGER),
                    ("position", DataType.INTEGER),
                    ("artist", DataType.STRING),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("artist_lists", "id"))
    schema.add_constraint(primary_key("albums", "id"))
    schema.add_constraint(NotNull("albums", "name"))
    schema.add_constraint(NotNull("albums", "artist_list"))
    schema.add_constraint(
        foreign_key("albums", "artist_list", "artist_lists", "id")
    )
    schema.add_constraint(NotNull("songs", "album"))
    schema.add_constraint(NotNull("songs", "name"))
    schema.add_constraint(foreign_key("songs", "album", "albums", "id"))
    schema.add_constraint(
        foreign_key("songs", "artist_list", "artist_lists", "id")
    )
    schema.add_constraint(
        primary_key("artist_credits", ("artist_list", "position"))
    )
    schema.add_constraint(NotNull("artist_credits", "artist"))
    schema.add_constraint(
        foreign_key("artist_credits", "artist_list", "artist_lists", "id")
    )
    return schema


def target_schema() -> Schema:
    """The target schema of Figure 2a."""
    schema = Schema(
        "target",
        relations=[
            relation(
                "records",
                [
                    ("id", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("artist", DataType.STRING),
                    ("genre", DataType.STRING),
                ],
            ),
            relation(
                "tracks",
                [
                    ("record", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("duration", DataType.STRING),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("records", "id"))
    schema.add_constraint(NotNull("records", "title"))
    schema.add_constraint(NotNull("records", "artist"))
    schema.add_constraint(NotNull("records", "genre"))
    schema.add_constraint(foreign_key("tracks", "record", "records", "id"))
    schema.add_constraint(NotNull("tracks", "record"))
    schema.add_constraint(NotNull("tracks", "title"))
    return schema


def build_source(parameters: ExampleParameters) -> Database:
    """A source instance with exactly the paper's violation counts."""
    generator = DataGenerator(parameters.seed)
    database = Database(source_schema())

    album_count = parameters.albums
    multi = parameters.multi_artist_albums
    if multi > album_count:
        raise ValueError("multi_artist_albums cannot exceed albums")

    # One artist list per album, plus one list per detached artist.
    total_lists = album_count + parameters.detached_artists
    for list_id in range(1, total_lists + 1):
        database.insert("artist_lists", {"id": list_id})

    # Artist name pools: album artists vs detached artists are disjoint so
    # the violation counts stay exact.
    album_artist_pool = generator.distinct_person_names(max(album_count // 4, 8))
    # Detached artists must be disjoint from the album pool so that the
    # Table 3 counts stay exact; they still look like ordinary names.
    album_pool_set = set(album_artist_pool)
    detached_artist_names: list[str] = []
    while len(detached_artist_names) < parameters.detached_artists:
        candidate = generator.person_name()
        if candidate in album_pool_set:
            continue
        album_pool_set.add(candidate)
        detached_artist_names.append(candidate)

    multi_album_ids = generator.sample_indices(album_count, multi)
    album_titles = generator.distinct_titles(album_count)
    song_name_pool = generator.distinct_titles(600)

    for index in range(album_count):
        album_id = index + 1
        database.insert(
            "albums",
            {
                "id": album_id,
                "name": album_titles[index],
                "artist_list": album_id,
            },
        )
        if index in multi_album_ids:
            credit_count = generator.random.randint(2, 4)
            artists = generator.random.sample(
                album_artist_pool, min(credit_count, len(album_artist_pool))
            )
        else:
            artists = [generator.choose(album_artist_pool)]
        for position, artist in enumerate(artists, start=1):
            database.insert(
                "artist_credits",
                {
                    "artist_list": album_id,
                    "position": position,
                    "artist": artist,
                },
            )
        lo, hi = parameters.songs_per_album
        for _ in range(generator.random.randint(lo, hi)):
            database.insert(
                "songs",
                {
                    "album": album_id,
                    "name": generator.choose(song_name_pool),
                    "artist_list": album_id if generator.maybe(0.3) else None,
                    "length": generator.duration_ms(),
                },
            )

    # Detached artists: credits on lists no album references.
    for offset, artist in enumerate(detached_artist_names):
        database.insert(
            "artist_credits",
            {
                "artist_list": album_count + offset + 1,
                "position": 1,
                "artist": artist,
            },
        )
    return database


def build_target(parameters: ExampleParameters) -> Database:
    """A pre-populated target instance (Figure 2b style)."""
    generator = DataGenerator(parameters.seed + 1)
    database = Database(target_schema())
    titles = generator.distinct_titles(parameters.target_records)
    track_titles = generator.distinct_titles(400)
    for index in range(parameters.target_records):
        record_id = index + 1
        database.insert(
            "records",
            {
                "id": record_id,
                "title": titles[index],
                "artist": generator.person_name(),
                "genre": generator.genre(),
            },
        )
        lo, hi = parameters.tracks_per_record
        for _ in range(generator.random.randint(lo, hi)):
            database.insert(
                "tracks",
                {
                    "record": record_id,
                    "title": generator.choose(track_titles),
                    "duration": DataGenerator.ms_to_mss(generator.duration_ms()),
                },
            )
    return database


def correspondences() -> CorrespondenceSet:
    """The solid arrows of Figure 2a."""
    return CorrespondenceSet(
        [
            relation_correspondence("albums", "records"),
            attribute_correspondence("albums.name", "records.title"),
            attribute_correspondence("artist_credits.artist", "records.artist"),
            relation_correspondence("songs", "tracks"),
            attribute_correspondence("songs.name", "tracks.title"),
            attribute_correspondence("songs.length", "tracks.duration"),
            attribute_correspondence("songs.album", "tracks.record"),
        ]
    )


#: The length → duration conversion a practitioner would script
#: (Example 3.5): milliseconds to the target's ``m:ss`` strings.
KNOWN_TRANSFORMATIONS = {
    ("songs.length", "tracks.duration"): DataGenerator.ms_to_mss,
}


def example_scenario(
    parameters: ExampleParameters | None = None,
) -> IntegrationScenario:
    """The complete running example of the paper."""
    parameters = parameters or ExampleParameters()
    scenario = IntegrationScenario(
        name="example",
        sources=build_source(parameters),
        target=build_target(parameters),
        correspondences=correspondences(),
    )
    scenario.known_transformations = dict(KNOWN_TRANSFORMATIONS)
    return scenario
