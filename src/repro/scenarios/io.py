"""Scenario serialization: save/load integration scenarios on disk.

This is the adoption path for user data: export your databases as CSV,
describe schemas + constraints + correspondences in JSON, and point EFES
at the directory (``efes assess path/to/scenario``).

Layout::

    scenario-dir/
        scenario.json           # name, source db names, correspondences
        <database>/schema.json  # relations, attributes, constraints
        <database>/<relation>.csv

``known_transformations`` are callables and therefore not serialised;
loading a saved scenario yields one without practitioner hints (which
only affects ground-truth simulation, never estimation).
"""

from __future__ import annotations

import json
from pathlib import Path

from ..matching.correspondence import Correspondence, CorrespondenceSet
from ..relational.columnar import block_from_doc, block_to_doc, decode_column
from ..relational.errors import InstanceError
from ..resilience import DegradedResult
from ..relational.constraints import (
    Constraint,
    ForeignKey,
    FunctionalDependencyConstraint,
    NotNull,
    PrimaryKey,
    Unique,
)
from ..relational.csv_io import dump_relation, load_relation
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import Attribute, Relation, Schema
from .scenario import IntegrationScenario

FORMAT_VERSION = 1


class ScenarioFormatError(ValueError):
    """A scenario directory is malformed or uses an unknown version."""


# ----------------------------------------------------------------------
# Constraint (de)serialisation
# ----------------------------------------------------------------------


def constraint_to_dict(constraint: Constraint) -> dict:
    if isinstance(constraint, PrimaryKey):
        return {
            "kind": "primary_key",
            "relation": constraint.relation,
            "attributes": list(constraint.attributes),
        }
    if isinstance(constraint, Unique):
        return {
            "kind": "unique",
            "relation": constraint.relation,
            "attributes": list(constraint.attributes),
        }
    if isinstance(constraint, NotNull):
        return {
            "kind": "not_null",
            "relation": constraint.relation,
            "attribute": constraint.attribute,
        }
    if isinstance(constraint, ForeignKey):
        return {
            "kind": "foreign_key",
            "relation": constraint.relation,
            "attributes": list(constraint.attributes),
            "referenced": constraint.referenced,
            "referenced_attributes": list(constraint.referenced_attributes),
        }
    if isinstance(constraint, FunctionalDependencyConstraint):
        return {
            "kind": "functional_dependency",
            "relation": constraint.relation,
            "determinant": constraint.determinant,
            "dependent": constraint.dependent,
        }
    raise ScenarioFormatError(
        f"unserialisable constraint type: {type(constraint).__name__}"
    )


def constraint_from_dict(data: dict) -> Constraint:
    kind = data.get("kind")
    if kind == "primary_key":
        return PrimaryKey(data["relation"], tuple(data["attributes"]))
    if kind == "unique":
        return Unique(data["relation"], tuple(data["attributes"]))
    if kind == "not_null":
        return NotNull(data["relation"], data["attribute"])
    if kind == "foreign_key":
        return ForeignKey(
            data["relation"],
            tuple(data["attributes"]),
            data["referenced"],
            tuple(data["referenced_attributes"]),
        )
    if kind == "functional_dependency":
        return FunctionalDependencyConstraint(
            data["relation"], data["determinant"], data["dependent"]
        )
    raise ScenarioFormatError(f"unknown constraint kind: {kind!r}")


# ----------------------------------------------------------------------
# Database (de)serialisation
# ----------------------------------------------------------------------


def save_database(database: Database, directory: Path) -> None:
    directory.mkdir(parents=True, exist_ok=True)
    schema_doc = {
        "name": database.schema.name,
        "relations": [
            {
                "name": rel.name,
                "attributes": [
                    {"name": a.name, "type": a.datatype.value}
                    for a in rel.attributes
                ],
            }
            for rel in database.schema.relations
        ],
        "constraints": [
            constraint_to_dict(c) for c in database.schema.constraints
        ],
    }
    (directory / "schema.json").write_text(
        json.dumps(schema_doc, indent=2), encoding="utf-8"
    )
    # A SQL rendering of the same schema, for humans and other tools
    # (schema.json remains the loading source of truth).
    from ..relational.sql import schema_to_ddl

    (directory / "schema.sql").write_text(
        schema_to_ddl(database.schema), encoding="utf-8"
    )
    for rel in database.schema.relations:
        dump_relation(database.table(rel.name), directory / f"{rel.name}.csv")


def load_database(
    directory: Path,
    *,
    degradations: list[DegradedResult] | None = None,
    scenario_name: str = "",
) -> Database:
    """Load one database directory (schema.json + per-relation CSVs).

    A malformed relation CSV — bad row arity, undecodable bytes — is a
    data problem, not a format problem: with ``degradations`` supplied
    the relation loads **empty** and a :class:`DegradedResult` tombstone
    (``phase="load"``, error carrying the ``file:line`` diagnostic) is
    appended instead of raising; without it the one-line diagnostic is
    re-raised as :class:`ScenarioFormatError`.
    """
    schema_path = directory / "schema.json"
    if not schema_path.exists():
        raise ScenarioFormatError(f"missing {schema_path}")
    document = json.loads(schema_path.read_text(encoding="utf-8"))
    relations = []
    for rel_doc in document.get("relations", ()):
        attributes = [
            Attribute(a["name"], DataType(a["type"]))
            for a in rel_doc.get("attributes", ())
        ]
        relations.append(Relation(rel_doc["name"], attributes))
    schema = Schema(document["name"], relations=relations)
    for constraint_doc in document.get("constraints", ()):
        schema.add_constraint(constraint_from_dict(constraint_doc))
    database = Database(schema)
    for rel in schema.relations:
        csv_path = directory / f"{rel.name}.csv"
        if not csv_path.exists():
            continue  # empty relation: no CSV is fine
        try:
            loaded = load_relation(csv_path, relation=rel)
        except InstanceError as exc:
            if degradations is None:
                raise ScenarioFormatError(str(exc)) from exc
            degradations.append(
                DegradedResult(
                    module=f"{document['name']}.{rel.name}",
                    phase="load",
                    error=f"{type(exc).__name__}: {exc}",
                    scenario=scenario_name,
                )
            )
            continue
        for row in loaded:
            database.insert(rel.name, row)
    return database


# ----------------------------------------------------------------------
# In-memory document forms (columnar payloads; used by the runtime spool)
# ----------------------------------------------------------------------


def database_to_dict(database: Database) -> dict:
    """A JSON-compatible document of a whole database.

    Relation data rides as canonical columnar blocks
    (:mod:`repro.relational.columnar`, base64 payloads), so a rehydrated
    database is **value-identical** to the original — same typed values,
    same content fingerprint — which is what lets process-backend workers
    produce byte-identical results and merge-compatible cache entries.
    """
    relations = []
    for rel in database.schema.relations:
        instance = database.table(rel.name)
        relations.append(
            {
                "name": rel.name,
                "attributes": [
                    {"name": a.name, "type": a.datatype.value}
                    for a in rel.attributes
                ],
                "count": len(instance),
                "columns": [
                    block_to_doc(block)
                    for block in instance.encoded_columns()
                ],
            }
        )
    return {
        "name": database.schema.name,
        "relations": relations,
        "constraints": [
            constraint_to_dict(c) for c in database.schema.constraints
        ],
    }


def database_from_dict(document: dict) -> Database:
    """Rebuild a database from :func:`database_to_dict` output."""
    try:
        relations = []
        for rel_doc in document.get("relations", ()):
            attributes = [
                Attribute(a["name"], DataType(a["type"]))
                for a in rel_doc.get("attributes", ())
            ]
            relations.append(Relation(rel_doc["name"], attributes))
        schema = Schema(document["name"], relations=relations)
        for constraint_doc in document.get("constraints", ()):
            schema.add_constraint(constraint_from_dict(constraint_doc))
        database = Database(schema)
        for rel_doc in document.get("relations", ()):
            columns = [
                decode_column(block_from_doc(block_doc))
                for block_doc in rel_doc.get("columns", ())
            ]
            database.table(rel_doc["name"]).load_typed_columns(
                columns, count=int(rel_doc.get("count", 0))
            )
        return database
    except (KeyError, TypeError, ValueError, InstanceError) as exc:
        if isinstance(exc, ScenarioFormatError):
            raise
        raise ScenarioFormatError(
            f"malformed database document: {exc}"
        ) from exc


def scenario_to_dict(scenario: IntegrationScenario) -> dict:
    """A single JSON-compatible document of a whole scenario.

    Unlike :func:`save_scenario` (a directory of CSVs for human
    adoption), this form is self-contained and exact — the shipping
    format of the process backend's scenario spool.
    """
    return {
        "version": FORMAT_VERSION,
        "name": scenario.name,
        "sources": [
            database_to_dict(source) for source in scenario.sources
        ],
        "target": database_to_dict(scenario.target),
        "correspondences": {
            source_name: [
                _correspondence_to_dict(c) for c in correspondence_set
            ]
            for source_name, correspondence_set in (
                scenario.correspondences.items()
            )
        },
    }


def scenario_from_dict(document: dict) -> IntegrationScenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    Like :func:`load_scenario`, ``known_transformations`` (callables)
    do not survive the trip; estimation never depends on them.
    """
    version = document.get("version")
    if version != FORMAT_VERSION:
        raise ScenarioFormatError(
            f"unsupported scenario document version: {version!r}"
        )
    try:
        sources = [
            database_from_dict(doc) for doc in document["sources"]
        ]
        target = database_from_dict(document["target"])
        correspondences = {
            source_name: CorrespondenceSet(
                _correspondence_from_dict(entry) for entry in entries
            )
            for source_name, entries in document["correspondences"].items()
        }
        return IntegrationScenario(
            document["name"], sources, target, correspondences
        )
    except ScenarioFormatError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ScenarioFormatError(
            f"malformed scenario document: {exc}"
        ) from exc


# ----------------------------------------------------------------------
# Scenario (de)serialisation
# ----------------------------------------------------------------------


def _correspondence_to_dict(c: Correspondence) -> dict:
    return {
        "source": c.source,
        "target": c.target,
        "level": "attribute" if c.is_attribute_level else "relation",
        "confidence": c.confidence,
    }


def _correspondence_from_dict(data: dict) -> Correspondence:
    if data.get("level") == "attribute":
        source_relation, source_attribute = data["source"].split(".", 1)
        target_relation, target_attribute = data["target"].split(".", 1)
        return Correspondence(
            source_relation,
            source_attribute,
            target_relation,
            target_attribute,
            confidence=data.get("confidence", 1.0),
        )
    return Correspondence(
        data["source"], None, data["target"], None,
        confidence=data.get("confidence", 1.0),
    )


def save_scenario(scenario: IntegrationScenario, path: str | Path) -> Path:
    """Write the scenario to ``path``; returns the directory path."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    manifest = {
        "version": FORMAT_VERSION,
        "name": scenario.name,
        "sources": [source.name for source in scenario.sources],
        "target": scenario.target.name,
        "correspondences": {
            source_name: [
                _correspondence_to_dict(c) for c in correspondence_set
            ]
            for source_name, correspondence_set in (
                scenario.correspondences.items()
            )
        },
    }
    (directory / "scenario.json").write_text(
        json.dumps(manifest, indent=2), encoding="utf-8"
    )
    for source in scenario.sources:
        save_database(source, directory / source.name)
    save_database(scenario.target, directory / scenario.target.name)
    return directory


def load_scenario(
    path: str | Path, *, strict: bool = False
) -> IntegrationScenario:
    """Load a scenario previously written by :func:`save_scenario` (or
    hand-authored in the same layout).

    Structural problems (missing manifest, unknown version, missing
    schema) always raise :class:`ScenarioFormatError`.  Malformed
    relation **data** is softer by default: each bad CSV loads as an
    empty relation and leaves a :class:`DegradedResult` tombstone on
    ``scenario.load_degradations``, which :meth:`Efes.run
    <repro.core.framework.Efes.run>` merges into its outcome — the
    estimate survives, visibly partial.  ``strict=True`` upgrades the
    first bad CSV to a :class:`ScenarioFormatError` carrying the
    ``file:line`` diagnostic.
    """
    directory = Path(path)
    manifest_path = directory / "scenario.json"
    if not manifest_path.exists():
        raise ScenarioFormatError(f"missing {manifest_path}")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    version = manifest.get("version")
    if version != FORMAT_VERSION:
        raise ScenarioFormatError(
            f"unsupported scenario format version: {version!r}"
        )
    degradations: list[DegradedResult] | None = None if strict else []
    name = manifest["name"]
    sources = [
        load_database(
            directory / source,
            degradations=degradations,
            scenario_name=name,
        )
        for source in manifest["sources"]
    ]
    target = load_database(
        directory / manifest["target"],
        degradations=degradations,
        scenario_name=name,
    )
    correspondences = {
        source_name: CorrespondenceSet(
            _correspondence_from_dict(entry) for entry in entries
        )
        for source_name, entries in manifest["correspondences"].items()
    }
    scenario = IntegrationScenario(name, sources, target, correspondences)
    if degradations:
        scenario.load_degradations = degradations
    return scenario
