"""Seeded synthetic data generation for the case-study scenarios.

The paper evaluates on two real-world case studies (the Amalgam
bibliographic benchmark and a discographic dataset built from FreeDB /
MusicBrainz / Discogs dumps).  Neither dataset ships with this repository,
so the generators below synthesise instances that reproduce the *classes*
of heterogeneity those datasets exhibit — concatenated vs normalised
author lists, millisecond vs ``m:ss`` durations, string vs integer years,
``Last, First`` vs ``First Last`` person names, missing values, dangling
references — with controlled, seeded parameters (see DESIGN.md §1).
"""

from __future__ import annotations

import random
from collections.abc import Sequence

_FIRST_NAMES = (
    "Alex", "Maria", "John", "Lena", "Tariq", "Ingrid", "Pavel", "Noor",
    "Sven", "Akira", "Dana", "Mikko", "Aylin", "Carlos", "Greta", "Hassan",
    "Ivy", "Jonas", "Keiko", "Luca", "Mona", "Niels", "Olga", "Pedro",
    "Rosa", "Samir", "Tess", "Umar", "Vera", "Wen", "Yara", "Zane",
)

_LAST_NAMES = (
    "Smith", "Meyer", "Tanaka", "Garcia", "Kowalski", "Okafor", "Larsen",
    "Petrov", "Nguyen", "Rossi", "Keller", "Andersson", "Dubois", "Haddad",
    "Ibrahim", "Jansen", "Kim", "Lopez", "Moreau", "Novak", "Olsen",
    "Peters", "Quinn", "Rahman", "Silva", "Thomsen", "Ueda", "Vogel",
    "Weber", "Xu", "Yilmaz", "Zhang",
)

_TITLE_WORDS = (
    "Sweet", "Home", "Midnight", "Electric", "Golden", "Silent", "Broken",
    "Rising", "Falling", "Crystal", "Velvet", "Neon", "Distant", "Hidden",
    "Burning", "Frozen", "Wild", "Gentle", "Lonely", "Radiant", "Shadow",
    "River", "Mountain", "Ocean", "Desert", "Garden", "Mirror", "Thunder",
    "Horizon", "Ember", "Harbor", "Meadow",
)

_TOPIC_WORDS = (
    "Query", "Schema", "Index", "Stream", "Graph", "Cache", "Storage",
    "Transaction", "Parallel", "Adaptive", "Declarative", "Probabilistic",
    "Distributed", "Incremental", "Approximate", "Robust", "Scalable",
    "Efficient", "Optimal", "Dynamic",
)

_VENUES = (
    "SIGMOD", "VLDB", "ICDE", "EDBT", "PODS", "CIDR", "TODS", "VLDBJ",
    "Information Systems", "DKE",
)

_GENRES = (
    "Rock", "Jazz", "Pop", "Folk", "Electronic", "Classical", "Blues",
    "Hip-Hop", "Country", "Soul",
)

_COUNTRIES = (
    "US", "UK", "DE", "FR", "JP", "SE", "NL", "IT", "BR", "CA",
)


class DataGenerator:
    """A deterministic synthetic-data vocabulary behind a seeded RNG."""

    def __init__(self, seed: int) -> None:
        self.random = random.Random(seed)

    # -- people ----------------------------------------------------------

    def person_name(self) -> str:
        """``First Last``."""
        return (
            f"{self.random.choice(_FIRST_NAMES)} "
            f"{self.random.choice(_LAST_NAMES)}"
        )

    def person_name_inverted(self) -> str:
        """``Last, First`` — the classic bibliographic format conflict."""
        return (
            f"{self.random.choice(_LAST_NAMES)}, "
            f"{self.random.choice(_FIRST_NAMES)}"
        )

    def distinct_person_names(self, count: int, inverted: bool = False) -> list[str]:
        """``count`` distinct names sharing one format (no disambiguation
        suffixes — the format is the signal the value-fit statistics read).
        """
        combos = [
            (first, last) for first in _FIRST_NAMES for last in _LAST_NAMES
        ]
        self.random.shuffle(combos)
        if count > len(combos):
            combos = combos + [
                (f"{first} {middle[0]}.", last)
                for (first, last) in combos
                for middle in (self.random.choice(_FIRST_NAMES),)
            ]
        names: list[str] = []
        for first, last in combos[:count]:
            if inverted:
                names.append(f"{last}, {first}")
            else:
                names.append(f"{first} {last}")
        return names

    # -- titles ----------------------------------------------------------

    def title(self, words: int | None = None) -> str:
        if words is None:
            words = self.random.randint(2, 4)
        return " ".join(self.random.choice(_TITLE_WORDS) for _ in range(words))

    def distinct_titles(self, count: int) -> list[str]:
        titles: list[str] = []
        seen: set[str] = set()
        while len(titles) < count:
            candidate = self.title()
            if candidate in seen:
                candidate = f"{candidate} {self.random.randint(2, 99)}"
            if candidate in seen:
                candidate = f"{candidate} ({len(seen)})"
            seen.add(candidate)
            titles.append(candidate)
        return titles

    def paper_title(self) -> str:
        return (
            f"{self.random.choice(_TOPIC_WORDS)} "
            f"{self.random.choice(_TOPIC_WORDS)} "
            f"for {self.random.choice(_TOPIC_WORDS)} Processing"
        ).replace("  ", " ")

    # -- domain vocabulary -------------------------------------------------

    def venue(self) -> str:
        return self.random.choice(_VENUES)

    def genre(self) -> str:
        return self.random.choice(_GENRES)

    def country(self) -> str:
        return self.random.choice(_COUNTRIES)

    def year(self, lo: int = 1970, hi: int = 2014) -> int:
        return self.random.randint(lo, hi)

    # -- durations ----------------------------------------------------------

    def duration_ms(self) -> int:
        """A song length in milliseconds (2-8 minutes)."""
        return self.random.randint(120_000, 480_000)

    def duration_seconds(self) -> int:
        return self.random.randint(120, 480)

    @staticmethod
    def ms_to_mss(milliseconds: int) -> str:
        """The target-side ``m:ss`` rendering of a millisecond length."""
        seconds = round(milliseconds / 1000)
        return f"{seconds // 60}:{seconds % 60:02d}"

    @staticmethod
    def seconds_to_mss(seconds: int) -> str:
        return f"{seconds // 60}:{seconds % 60:02d}"

    # -- perturbation utilities ---------------------------------------------

    def choose(self, options: Sequence):
        return self.random.choice(options)

    def maybe(self, probability: float) -> bool:
        return self.random.random() < probability

    def sample_indices(self, population: int, count: int) -> set[int]:
        """``count`` distinct indices out of ``range(population)``."""
        count = min(count, population)
        return set(self.random.sample(range(population), count))
