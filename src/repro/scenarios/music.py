"""The discographic case study (Section 6.1, Figure 7).

Three schemas modelled on the datasets the paper built its music case
study from:

* **f** — FreeDB-style: flat discs with ``Artist / Title`` strings
  concatenated into one attribute, string years, and track lengths in
  seconds,
* **m** — MusicBrainz-style: normalised artists / releases / tracks with
  millisecond lengths,
* **d** — Discogs-style: releases with an M:N artist relationship,
  vinyl-style track positions (``A1``) and ``m:ss`` durations.

The four integration scenarios of Figure 7 are f1-m2, m1-d2, m1-f2 and
d1-d2 (the suffixes are seeded instance variants; d1-d2 is the
identical-schema scenario of this domain).
"""

from __future__ import annotations

from ..matching.correspondence import (
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from ..relational.constraints import NotNull, foreign_key, primary_key
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..relational.schema import Schema, relation
from .generators import DataGenerator
from .scenario import IntegrationScenario

DOMAIN = "music"


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------


def schema_f(name: str = "f") -> Schema:
    schema = Schema(
        name,
        relations=[
            relation(
                "discs",
                [
                    ("discid", DataType.STRING),
                    ("dtitle", DataType.STRING),
                    ("year", DataType.STRING),
                    ("genre", DataType.STRING),
                ],
            ),
            relation(
                "disc_tracks",
                [
                    ("discid", DataType.STRING),
                    ("seq", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("length_sec", DataType.INTEGER),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("discs", "discid"))
    schema.add_constraint(NotNull("discs", "dtitle"))
    schema.add_constraint(primary_key("disc_tracks", ("discid", "seq")))
    schema.add_constraint(NotNull("disc_tracks", "title"))
    schema.add_constraint(foreign_key("disc_tracks", "discid", "discs", "discid"))
    return schema


def schema_m(name: str = "m") -> Schema:
    schema = Schema(
        name,
        relations=[
            relation(
                "artists",
                [
                    ("aid", DataType.INTEGER),
                    ("name", DataType.STRING),
                    ("sort_name", DataType.STRING),
                ],
            ),
            relation(
                "releases",
                [
                    ("rid", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("artist", DataType.INTEGER),
                    ("year", DataType.INTEGER),
                ],
            ),
            relation(
                "rtracks",
                [
                    ("release", DataType.INTEGER),
                    ("position", DataType.INTEGER),
                    ("name", DataType.STRING),
                    ("length_ms", DataType.INTEGER),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("artists", "aid"))
    schema.add_constraint(NotNull("artists", "name"))
    schema.add_constraint(primary_key("releases", "rid"))
    schema.add_constraint(NotNull("releases", "title"))
    schema.add_constraint(NotNull("releases", "artist"))
    schema.add_constraint(foreign_key("releases", "artist", "artists", "aid"))
    schema.add_constraint(primary_key("rtracks", ("release", "position")))
    schema.add_constraint(NotNull("rtracks", "name"))
    schema.add_constraint(foreign_key("rtracks", "release", "releases", "rid"))
    return schema


def schema_d(name: str = "d") -> Schema:
    schema = Schema(
        name,
        relations=[
            relation(
                "releases",
                [
                    ("rid", DataType.INTEGER),
                    ("title", DataType.STRING),
                    ("year", DataType.INTEGER),
                    ("country", DataType.STRING),
                ],
            ),
            relation(
                "dartists",
                [
                    ("did", DataType.INTEGER),
                    ("name", DataType.STRING),
                ],
            ),
            relation(
                "release_artists",
                [
                    ("release", DataType.INTEGER),
                    ("artist", DataType.INTEGER),
                ],
            ),
            relation(
                "tracklist",
                [
                    ("release", DataType.INTEGER),
                    ("position", DataType.STRING),
                    ("title", DataType.STRING),
                    ("duration", DataType.STRING),
                ],
            ),
        ],
    )
    schema.add_constraint(primary_key("releases", "rid"))
    schema.add_constraint(NotNull("releases", "title"))
    schema.add_constraint(NotNull("releases", "year"))
    schema.add_constraint(primary_key("dartists", "did"))
    schema.add_constraint(NotNull("dartists", "name"))
    schema.add_constraint(primary_key("release_artists", ("release", "artist")))
    schema.add_constraint(
        foreign_key("release_artists", "release", "releases", "rid")
    )
    schema.add_constraint(
        foreign_key("release_artists", "artist", "dartists", "did")
    )
    schema.add_constraint(NotNull("tracklist", "release"))
    schema.add_constraint(NotNull("tracklist", "title"))
    schema.add_constraint(foreign_key("tracklist", "release", "releases", "rid"))
    return schema


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------


def build_f(seed: int, discs: int = 350, name: str = "f") -> Database:
    generator = DataGenerator(seed)
    database = Database(schema_f(name))
    artist_pool = generator.distinct_person_names(120)
    titles = generator.distinct_titles(discs)
    track_titles = generator.distinct_titles(500)
    for index in range(discs):
        discid = f"{generator.random.randrange(16**8):08x}"
        year: object = str(generator.year())
        if generator.maybe(0.05):
            year = ""
        database.insert(
            "discs",
            {
                "discid": discid,
                "dtitle": f"{generator.choose(artist_pool)} / {titles[index]}",
                "year": year,
                "genre": generator.genre(),
            },
        )
        for seq in range(1, generator.random.randint(3, 6) + 1):
            database.insert(
                "disc_tracks",
                {
                    "discid": discid,
                    "seq": seq,
                    "title": generator.choose(track_titles),
                    "length_sec": generator.duration_seconds(),
                },
            )
    return database


def build_m(
    seed: int,
    releases: int = 380,
    artists: int = 130,
    null_years: int = 45,
    name: str = "m",
) -> Database:
    generator = DataGenerator(seed)
    database = Database(schema_m(name))
    names = generator.distinct_person_names(artists)
    for aid, artist_name in enumerate(names, start=1):
        parts = artist_name.rsplit(" ", 1)
        sort_name = f"{parts[-1]}, {parts[0]}" if len(parts) == 2 else artist_name
        database.insert(
            "artists", {"aid": aid, "name": artist_name, "sort_name": sort_name}
        )
    titles = generator.distinct_titles(releases)
    track_titles = generator.distinct_titles(500)
    missing_year_ids = generator.sample_indices(releases, null_years)
    for index in range(releases):
        rid = index + 1
        database.insert(
            "releases",
            {
                "rid": rid,
                "title": titles[index],
                "artist": generator.random.randint(1, artists),
                "year": None if index in missing_year_ids else generator.year(),
            },
        )
        for position in range(1, generator.random.randint(3, 6) + 1):
            database.insert(
                "rtracks",
                {
                    "release": rid,
                    "position": position,
                    "name": generator.choose(track_titles),
                    "length_ms": generator.duration_ms(),
                },
            )
    return database


def build_d(
    seed: int, releases: int = 360, artists: int = 140, name: str = "d"
) -> Database:
    generator = DataGenerator(seed)
    database = Database(schema_d(name))
    names = generator.distinct_person_names(artists)
    for did, artist_name in enumerate(names, start=1):
        database.insert("dartists", {"did": did, "name": artist_name})
    titles = generator.distinct_titles(releases)
    track_titles = generator.distinct_titles(500)
    for index in range(releases):
        rid = index + 1
        database.insert(
            "releases",
            {
                "rid": rid,
                "title": titles[index],
                "year": generator.year(),
                "country": generator.country(),
            },
        )
        for artist in generator.random.sample(
            range(1, artists + 1), generator.random.randint(1, 2)
        ):
            database.insert(
                "release_artists", {"release": rid, "artist": artist}
            )
        sides = ("A", "B")
        for position in range(1, generator.random.randint(4, 8) + 1):
            database.insert(
                "tracklist",
                {
                    "release": rid,
                    "position": f"{sides[(position - 1) % 2]}{(position + 1) // 2}",
                    "title": generator.choose(track_titles),
                    "duration": DataGenerator.seconds_to_mss(
                        generator.duration_seconds()
                    ),
                },
            )
    return database


# ----------------------------------------------------------------------
# Practitioner-known transformations
# ----------------------------------------------------------------------


def split_dtitle_title(dtitle: str) -> str:
    """``"Artist / Title"`` → ``"Title"``."""
    return dtitle.split(" / ", 1)[-1].strip()


def concat_dtitle(title: str) -> str:
    """Inverse direction: a release title becomes ``"Various / Title"``."""
    return f"Various / {title}"


def parse_year(year_text: object) -> int | None:
    try:
        return int(str(year_text).strip())
    except ValueError:
        return None


def ms_to_seconds(length_ms: int) -> int:
    return round(length_ms / 1000)


def ms_to_mss(length_ms: int) -> str:
    seconds = round(length_ms / 1000)
    return f"{seconds // 60}:{seconds % 60:02d}"


def int_position_to_vinyl(position: int) -> str:
    return f"{'AB'[(position - 1) % 2]}{(position + 1) // 2}"


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------


def scenario_f1_m2(seed: int = 1) -> IntegrationScenario:
    source = build_f(seed * 11 + 1, name="f1")
    target = build_m(seed * 11 + 2, name="m2")
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("discs", "releases"),
            attribute_correspondence("discs.dtitle", "releases.title"),
            attribute_correspondence("discs.year", "releases.year"),
            relation_correspondence("disc_tracks", "rtracks"),
            attribute_correspondence("disc_tracks.title", "rtracks.name"),
            attribute_correspondence("disc_tracks.seq", "rtracks.position"),
            attribute_correspondence(
                "disc_tracks.length_sec", "rtracks.length_ms"
            ),
            attribute_correspondence("disc_tracks.discid", "rtracks.release"),
        ]
    )
    scenario = IntegrationScenario("f1-m2", source, target, correspondences)
    scenario.known_transformations = {
        ("discs.dtitle", "releases.title"): split_dtitle_title,
        ("discs.year", "releases.year"): parse_year,
        ("disc_tracks.length_sec", "rtracks.length_ms"): lambda s: s * 1000,
    }
    return scenario


def scenario_m1_d2(seed: int = 1) -> IntegrationScenario:
    source = build_m(seed * 11 + 3, name="m1")
    target = build_d(seed * 11 + 4, name="d2")
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("releases", "releases"),
            attribute_correspondence("releases.title", "releases.title"),
            attribute_correspondence("releases.year", "releases.year"),
            relation_correspondence("artists", "dartists"),
            attribute_correspondence("artists.name", "dartists.name"),
            relation_correspondence("rtracks", "tracklist"),
            attribute_correspondence("rtracks.name", "tracklist.title"),
            attribute_correspondence("rtracks.position", "tracklist.position"),
            attribute_correspondence("rtracks.length_ms", "tracklist.duration"),
            attribute_correspondence("rtracks.release", "tracklist.release"),
            relation_correspondence("releases", "release_artists"),
        ]
    )
    scenario = IntegrationScenario("m1-d2", source, target, correspondences)
    scenario.known_transformations = {
        ("rtracks.length_ms", "tracklist.duration"): ms_to_mss,
        ("rtracks.position", "tracklist.position"): int_position_to_vinyl,
        ("releases.year", "releases.year"): parse_year,
    }
    return scenario


def scenario_m1_f2(seed: int = 1) -> IntegrationScenario:
    source = build_m(seed * 11 + 5, name="m1")
    target = build_f(seed * 11 + 6, name="f2")
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("releases", "discs"),
            attribute_correspondence("releases.title", "discs.dtitle"),
            attribute_correspondence("releases.year", "discs.year"),
            relation_correspondence("rtracks", "disc_tracks"),
            attribute_correspondence("rtracks.name", "disc_tracks.title"),
            attribute_correspondence("rtracks.position", "disc_tracks.seq"),
            attribute_correspondence(
                "rtracks.length_ms", "disc_tracks.length_sec"
            ),
            attribute_correspondence("rtracks.release", "disc_tracks.discid"),
        ]
    )
    scenario = IntegrationScenario("m1-f2", source, target, correspondences)
    scenario.known_transformations = {
        ("releases.title", "discs.dtitle"): concat_dtitle,
        ("releases.year", "discs.year"): lambda year: str(year),
        ("rtracks.length_ms", "disc_tracks.length_sec"): ms_to_seconds,
    }
    return scenario


def scenario_d1_d2(seed: int = 1) -> IntegrationScenario:
    """The identical-schema scenario of the music domain."""
    source = build_d(seed * 11 + 7, name="d1")
    target = build_d(seed * 11 + 8, name="d2t")
    correspondences = CorrespondenceSet(
        [
            relation_correspondence("releases", "releases"),
            attribute_correspondence("releases.title", "releases.title"),
            attribute_correspondence("releases.year", "releases.year"),
            attribute_correspondence("releases.country", "releases.country"),
            relation_correspondence("dartists", "dartists"),
            attribute_correspondence("dartists.name", "dartists.name"),
            relation_correspondence("release_artists", "release_artists"),
            attribute_correspondence(
                "release_artists.release", "release_artists.release"
            ),
            attribute_correspondence(
                "release_artists.artist", "release_artists.artist"
            ),
            relation_correspondence("tracklist", "tracklist"),
            attribute_correspondence("tracklist.release", "tracklist.release"),
            attribute_correspondence("tracklist.position", "tracklist.position"),
            attribute_correspondence("tracklist.title", "tracklist.title"),
            attribute_correspondence("tracklist.duration", "tracklist.duration"),
        ]
    )
    scenario = IntegrationScenario("d1-d2", source, target, correspondences)
    scenario.known_transformations = {}
    return scenario


def music_scenarios(seed: int = 1) -> list[IntegrationScenario]:
    """The four Figure 7 scenarios, deterministically seeded."""
    return [
        scenario_f1_m2(seed),
        scenario_m1_d2(seed),
        scenario_m1_f2(seed),
        scenario_d1_d2(seed),
    ]
