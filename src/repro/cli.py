"""Command-line interface: ``efes <command>``.

Mirrors the paper prototype's command-line interface (Section 6.1) on top
of the shipped scenarios:

* ``efes assess <scenario>``   — print the data complexity reports,
* ``efes estimate <scenario>`` — print the task list and effort estimate,
* ``efes measure <scenario>``  — run the practitioner simulator,
* ``efes trace <scenario>``    — run the full pipeline traced and print
  the span tree (accepts the domain aliases ``bibliographic``/``music``),
* ``efes experiments``         — reproduce Figures 6 and 7 + rmse,
* ``efes list``                — list the available scenarios,
* ``efes serve``               — run the HTTP assessment service
  (``--journal-dir`` makes every acknowledged job survive a crash;
  SIGTERM drains gracefully, flushes the journal, and exits 0),
* ``efes submit <scenario>``   — submit a job to a running service,
* ``efes slo``                 — show a running service's SLO burn rates
  (exit 3 when any objective is burning critically),
* ``efes recover <journal>``   — replay a job journal offline:
  ``--dry-run`` prints what recovery would do, without it the journal
  is checkpointed and compacted; ``--fleet <dir>`` prints one combined
  unsettled-jobs table over every worker journal (live and fenced) of a
  fleet directory, strictly read-only,
* ``efes fleet serve``         — run N supervised worker processes
  behind one HTTP front end (heartbeats, liveness failover,
  exactly-once re-dispatch, shared result spool),
* ``efes fleet status``        — show a running fleet's workers, jobs,
  and health (exit 3 while the fleet is degraded).
"""

from __future__ import annotations

import argparse
import os
import signal
import sys

from .core import ResultQuality, default_efes
from .core.tasks import TaskCategory
from .practitioner import PractitionerSimulator
from .reporting import render_domain_figure, render_table
from .resilience import (
    FAULT_PLAN_ENV_VAR,
    FaultError,
    fault_plan_from_env,
)
from .runtime import BACKEND_ENV_VAR, Runtime, set_default_runtime
from .scenarios import (
    UnknownScenarioError,
    resolve_scenario,
    scenario_catalogue,
)
from .scenarios.io import ScenarioFormatError

#: Environment variable naming the default target of ``efes submit``.
SERVICE_URL_ENV_VAR = "REPRO_SERVICE_URL"

#: Exit code for a run that completed but with degraded (partial)
#: results — distinct from 0 (complete success), 1 (hard failure), and
#: 2 (usage/unknown-scenario error), so scripts can tell "usable but
#: partial" from both success and crash.
EXIT_DEGRADED = 3

_scenarios = scenario_catalogue
_resolve_scenario = resolve_scenario


def _quality(name: str) -> ResultQuality:
    return (
        ResultQuality.HIGH_QUALITY
        if name in ("high", "high_quality", "hq")
        else ResultQuality.LOW_EFFORT
    )


def cmd_list(args: argparse.Namespace) -> int:
    for name in _scenarios(args.seed):
        print(name)
    return 0


def _print_degradations(degradations) -> None:
    """One table naming every module whose stage failed this run."""
    print()
    print(
        render_table(
            ["Module", "Phase", "Scenario", "Error"],
            [
                (d.module, d.phase, d.scenario or "-", d.error)
                for d in degradations
            ],
            title="Degraded modules (partial results)",
        )
    )


def cmd_assess(args: argparse.Namespace) -> int:
    from .resilience import split_degraded

    scenario = _resolve_scenario(args.scenario, args.seed)
    efes = default_efes()
    reports, degradations = split_degraded(
        efes.assess(scenario, strict=args.strict)
    )
    sections = 0
    mapping = reports.get("mapping")
    if mapping is not None:
        print(
            render_table(
                ["Target table", "Source tables", "Attributes", "Primary key"],
                [connection.as_row() for connection in mapping.connections],
                title="Mapping complexity report",
            )
        )
        sections += 1
    structure = reports.get("structure")
    if structure is not None:
        if sections:
            print()
        print(
            render_table(
                ["Constraint in target schema", "Conflict", "Violations"],
                [
                    (
                        f"κ({v.target_relationship}) = {v.prescribed}",
                        v.conflict.value,
                        v.violation_count,
                    )
                    for v in structure.violations
                ],
                title="Structure conflict report",
            )
        )
        sections += 1
    values = reports.get("values")
    if values is not None:
        if sections:
            print()
        print(
            render_table(
                ["Value heterogeneity", "Attributes", "Parameters"],
                [
                    (
                        f.heterogeneity.value,
                        f"{f.source_attribute} -> {f.target_attribute}",
                        ", ".join(
                            f"{k}={v:g}"
                            for k, v in sorted(f.parameters.items())
                        ),
                    )
                    for f in values.findings
                ],
                title="Value heterogeneity report",
            )
        )
    if degradations:
        _print_degradations(degradations)
        return EXIT_DEGRADED
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args.scenario, args.seed)
    efes = default_efes()
    outcome = efes.run(scenario, _quality(args.quality), strict=args.strict)
    estimate = outcome.estimate
    print(
        render_table(
            ["Task", "Category", "Effort [min]"],
            [
                (
                    entry.task.describe(),
                    entry.task.category.value,
                    round(entry.minutes, 1),
                )
                for entry in estimate.entries
            ],
            title=f"Effort estimate for {scenario.name} ({args.quality})",
        )
    )
    totals = estimate.by_category()
    print()
    for category in TaskCategory:
        print(f"{category.value:22s} {totals[category]:8.1f} min")
    print(f"{'Total':22s} {estimate.total_minutes:8.1f} min")
    if outcome.degradations:
        _print_degradations(outcome.degradations)
        return EXIT_DEGRADED
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args.scenario, args.seed)
    simulator = PractitionerSimulator()
    result = simulator.integrate(scenario, _quality(args.quality))
    print(
        render_table(
            ["Action", "Subject", "Count", "Minutes"],
            [
                (a.action, a.subject, a.count, round(a.minutes, 1))
                for a in result.actions
            ],
            title=f"Measured integration of {scenario.name} ({args.quality})",
        )
    )
    print()
    for category, minutes in result.breakdown().items():
        print(f"{category:22s} {minutes:8.1f} min")
    print(f"{'Total':22s} {result.total_minutes:8.1f} min")
    return 0


def _trace_targets(name: str, seed: int) -> list:
    """Scenarios to trace: one catalogue/directory entry, or a whole
    domain via the ``bibliographic``/``music`` aliases."""
    from .scenarios import bibliographic_scenarios, music_scenarios

    if name == "bibliographic":
        return list(bibliographic_scenarios(seed))
    if name == "music":
        return list(music_scenarios(seed))
    return [_resolve_scenario(name, seed)]


def cmd_trace(args: argparse.Namespace) -> int:
    import json
    import time

    from .core.serialize import span_to_dict
    from .observability import render_span_tree

    efes = default_efes()
    quality = _quality(args.quality)
    documents = []
    degraded = False
    for index, scenario in enumerate(_trace_targets(args.scenario, args.seed)):
        if index:
            print()
        started = time.perf_counter()
        outcome = efes.run(scenario, quality, trace=True, strict=args.strict)
        wall_seconds = time.perf_counter() - started
        root = outcome.trace
        print(
            f"Trace of {scenario.name} ({args.quality}): "
            f"wall-clock {wall_seconds:.4f}s, "
            f"estimate {outcome.estimate.total_minutes:.1f} min"
        )
        print(render_span_tree(root))
        if outcome.degradations:
            _print_degradations(outcome.degradations)
            degraded = True
        documents.append(span_to_dict(root))
    if args.output:
        payload = documents[0] if len(documents) == 1 else documents
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.output}")
    return EXIT_DEGRADED if degraded else 0


def cmd_curve(args: argparse.Namespace) -> int:
    from .extensions import cost_benefit_curve

    scenario = _resolve_scenario(args.scenario, args.seed)
    curve = cost_benefit_curve(default_efes(), scenario)
    print(
        render_table(
            ["Quality", "Estimated effort [min]", "Retained information"],
            [
                (
                    point.quality.label,
                    round(point.effort_minutes, 1),
                    f"{point.benefit:.1%}",
                )
                for point in curve
            ],
            title=f"Cost-benefit curve for {scenario.name}",
        )
    )
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    from .scenarios.io import save_scenario

    scenario = _resolve_scenario(args.scenario, args.seed)
    directory = save_scenario(scenario, args.directory)
    print(f"wrote scenario {scenario.name!r} to {directory}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import run_experiments
    from .reporting import render_experiment_markdown

    report = run_experiments(
        seed=args.seed, trace_dir=args.trace_dir, strict=bool(args.strict)
    )
    if args.trace_dir:
        print(f"wrote per-scenario trace files to {args.trace_dir}/")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_experiment_markdown(report))
        print(f"wrote {args.output}")
    else:
        print(render_domain_figure(report.bibliographic))
        print()
        print(render_domain_figure(report.music))
        print()
        print(
            f"Overall rmse: Efes={report.overall_efes_rmse:.2f} "
            f"Counting={report.overall_counting_rmse:.2f} "
            f"(improvement ×{report.overall_improvement:.1f})"
        )
    if report.is_degraded:
        for scenario_name in sorted(report.degradations):
            for item in report.degradations[scenario_name]:
                print(f"degraded: {item.describe()}", file=sys.stderr)
        total = sum(len(v) for v in report.degradations.values())
        print(
            f"efes: experiments completed with {total} degraded module "
            f"run(s) across {len(report.degradations)} scenario(s)",
            file=sys.stderr,
        )
        return EXIT_DEGRADED
    return 0


class _Terminated(Exception):
    """SIGTERM arrived: unwind ``serve_forever`` into a graceful drain."""


def _raise_terminated(signum, frame):  # pragma: no cover - signal plumbing
    raise _Terminated()


def cmd_serve(args: argparse.Namespace) -> int:
    from .durability import FlushPolicy, JobJournal
    from .runtime import get_runtime
    from .service import JobScheduler, ReportStore, make_server

    runtime = get_runtime()
    store = ReportStore(directory=args.spool, metrics=runtime.metrics)
    journal = None
    if args.journal_dir:
        try:
            policy = FlushPolicy.parse(args.journal_fsync)
        except ValueError as exc:
            print(f"efes: {exc}", file=sys.stderr)
            return 2
        journal = JobJournal(
            args.journal_dir, flush=policy, metrics=runtime.metrics
        )
    scheduler = JobScheduler(
        runtime=runtime,
        store=store,
        workers=args.job_workers,
        max_queue=args.queue_size,
        default_timeout=args.job_timeout,
        journal=journal,
    )
    server = make_server(scheduler, host=args.host, port=args.port)
    spool = args.spool or "(memory only)"
    print(
        f"efes service listening on {server.url} "
        f"(runtime backend={runtime.backend}, job workers={args.job_workers}, "
        f"queue={args.queue_size}, spool={spool})",
        flush=True,
    )
    if scheduler.recovery_summary is not None:
        summary = scheduler.recovery_summary
        print(
            f"journal recovery: {summary['records']} record(s) in "
            f"{summary['segments']} segment(s), "
            f"{summary['resubmitted']} requeued "
            f"({summary['interrupted']} interrupted), "
            f"{summary['completed_from_store']} completed from store, "
            f"{summary['torn_records']} torn record(s) skipped",
            flush=True,
        )
    # SIGTERM (the orchestrator's "please stop") must not drop queued
    # work on the floor: raising out of serve_forever funnels into the
    # same graceful drain + journal flush as Ctrl-C, and exits 0.
    try:
        previous_handler = signal.signal(signal.SIGTERM, _raise_terminated)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        previous_handler = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    except _Terminated:
        print("received SIGTERM; draining", flush=True)
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        server.shutdown()
        server.server_close()
        scheduler.close(wait=True, timeout=5.0)
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    import pathlib

    from .durability import JobJournal, RecoveryManager
    from .service import ReportStore

    if args.fleet:
        return _recover_fleet(args)
    directory = pathlib.Path(args.journal_dir)
    if not directory.is_dir():
        print(
            f"efes: journal directory {args.journal_dir!r} does not exist",
            file=sys.stderr,
        )
        return 2
    journal = JobJournal(directory)
    store = ReportStore(directory=args.spool) if args.spool else None
    manager = RecoveryManager(journal, store)
    summary = manager.inspect() if args.dry_run else manager.compact_offline()
    journal.close()
    mode = "dry run" if args.dry_run else "compacted"
    print(f"journal {args.journal_dir} ({mode}):")
    for field in (
        "segments",
        "records",
        "torn_records",
        "jobs_seen",
        "settled",
        "resubmitted",
        "interrupted",
        "completed_from_store",
        "results_lost",
        "checkpointed",
        "compacted_segments",
    ):
        print(f"  {field:22s} {summary[field]}")
    return 0


def _recover_fleet(args: argparse.Namespace) -> int:
    """One combined unsettled-jobs table over a whole fleet directory.

    Read-only by construction: every worker journal — live *and* fenced
    (``journal-fenced-<epoch>``) — is replayed without checkpointing or
    compacting, so the command is safe to run against the directory of a
    crashed fleet before deciding anything.
    """
    import pathlib

    from .durability import JobJournal, RecoveryManager
    from .service import ReportStore

    directory = pathlib.Path(args.journal_dir)
    workers_root = directory / "workers"
    if not workers_root.is_dir():
        print(
            f"efes: {args.journal_dir!r} is not a fleet directory "
            "(no workers/ underneath)",
            file=sys.stderr,
        )
        return 2
    spool = directory / "spool"
    store = ReportStore(directory=spool) if spool.is_dir() else None
    rows = []
    journals = jobs_seen = settled = 0
    for journal_dir in sorted(workers_root.glob("*/journal*")):
        if not journal_dir.is_dir():
            continue
        journals += 1
        worker_id = journal_dir.parent.name
        journal = JobJournal(journal_dir)
        try:
            replay = RecoveryManager(journal, store).replay()
        finally:
            journal.close()
        for job_id, state in replay.jobs.items():
            jobs_seen += 1
            if state.is_settled:
                settled += 1
                continue
            in_store = bool(
                store is not None
                and state.store_key
                and store.contains(state.store_key)
            )
            rows.append(
                (
                    worker_id,
                    journal_dir.name,
                    job_id,
                    state.field("scenario") or "-",
                    state.field("kind") or "-",
                    "dispatched" if state.dispatched else "queued",
                    state.idempotency_key or "-",
                    "yes" if in_store else "no",
                )
            )
    print(
        render_table(
            [
                "Worker",
                "Journal",
                "Job",
                "Scenario",
                "Kind",
                "State",
                "Idempotency key",
                "In store",
            ],
            rows,
            title=f"Unsettled jobs across fleet {directory} "
            f"({journals} journal(s), {jobs_seen} job(s) seen, "
            f"{settled} settled)",
        )
    )
    if not rows:
        print("every journalled job is settled")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    if args.fleet_command == "serve":
        return _fleet_serve(args)
    return _fleet_status(args)


def _fleet_serve(args: argparse.Namespace) -> int:
    from .fleet import (
        FleetSupervisor,
        ProcessWorkerBackend,
        make_fleet_server,
    )

    backend = ProcessWorkerBackend(
        args.fleet_dir,
        job_workers=args.job_workers,
        queue_size=args.queue_size,
        heartbeat_interval=args.heartbeat_interval,
        journal_fsync=args.journal_fsync,
    )
    supervisor = FleetSupervisor(
        args.fleet_dir,
        workers=args.fleet_workers,
        backend=backend,
        heartbeat_interval=args.heartbeat_interval,
        restart_dead=not args.no_restart,
    )
    supervisor.start()
    server = make_fleet_server(supervisor, host=args.host, port=args.port)
    print(
        f"efes fleet listening on {server.url} "
        f"(workers={args.fleet_workers}, "
        f"fleet dir={supervisor.fleet_dir}, "
        f"control port={supervisor.control_port})",
        flush=True,
    )
    try:
        previous_handler = signal.signal(signal.SIGTERM, _raise_terminated)
    except ValueError:  # pragma: no cover - non-main thread (tests)
        previous_handler = None
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down fleet")
    except _Terminated:
        print("received SIGTERM; draining fleet", flush=True)
    finally:
        if previous_handler is not None:
            signal.signal(signal.SIGTERM, previous_handler)
        server.shutdown()
        server.server_close()
        supervisor.close()
    return 0


def _fleet_status(args: argparse.Namespace) -> int:
    from .service import ServiceClient, ServiceError

    url = args.url or os.environ.get(SERVICE_URL_ENV_VAR) or (
        "http://127.0.0.1:8765"
    )
    client = ServiceClient(url)
    try:
        _, doc = client._request("GET", "/fleet/status")
    except (ServiceError, OSError) as exc:
        print(
            f"efes: cannot fetch fleet status from {url}: {exc}",
            file=sys.stderr,
        )
        return 1
    if args.json:
        import json

        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        rows = [
            (
                worker["worker_id"],
                worker["state"],
                worker["epoch"],
                worker["pid"] or "-",
                worker["beats"],
                worker["failovers"],
                worker["status"].get("queue_depth", "-"),
            )
            for worker in doc["workers"]
        ]
        print(
            render_table(
                [
                    "Worker",
                    "State",
                    "Epoch",
                    "PID",
                    "Beats",
                    "Failovers",
                    "Queue",
                ],
                rows,
                title=f"Fleet at {url}: {doc['live']}/{doc['size']} live, "
                f"{doc['failovers']} failover(s)",
            )
        )
        jobs = doc["jobs"]
        print(
            f"jobs: {jobs['routed']} routed, {jobs['parked']} parked, "
            f"{jobs['supervisor_settled']} supervisor-settled, "
            f"{jobs['redispatched']} redispatched, "
            f"{jobs['completed_from_store']} completed from store"
        )
        print(f"health: {doc['health']['state']}")
    # Same convention as `efes slo`: scripts can branch on degradation.
    return EXIT_DEGRADED if doc["degraded"] else 0


def cmd_submit(args: argparse.Namespace) -> int:
    from .service import (
        BackpressureError,
        DeadlineExceededError,
        ServiceClient,
        ServiceError,
    )

    url = args.url or os.environ.get(SERVICE_URL_ENV_VAR) or (
        "http://127.0.0.1:8765"
    )
    client = ServiceClient(url)
    try:
        # The wait budget doubles as the end-to-end deadline: the client
        # ships it as X-Deadline-Ms so the server bounds execution too
        # (an explicit --timeout still wins as the body field).
        job = client.submit(
            args.scenario,
            kind=args.kind,
            quality=args.quality if args.kind == "estimate" else None,
            priority=args.priority,
            timeout=args.timeout,
            seed=args.seed,
            deadline=args.deadline,
        )
    except BackpressureError as exc:
        print(
            f"efes: service queue is full; retry in ~{exc.retry_after:g}s",
            file=sys.stderr,
        )
        return 75  # EX_TEMPFAIL
    except (ServiceError, OSError) as exc:
        print(f"efes: cannot submit to {url}: {exc}", file=sys.stderr)
        return 1
    print(f"job {job['id']} {job['state']} ({args.kind} {args.scenario})")
    if args.no_wait:
        return 0
    try:
        # The server's settle contract is deadline + grace: a run that
        # overruns still lands a partial result inside the grace window,
        # so the local wait must outlive the execution deadline by that
        # much (plus poll slack) to collect it.
        from .runtime.deadline import DEFAULT_GRACE

        result = client.result(
            job["id"], deadline=args.deadline + DEFAULT_GRACE + 1.0
        )
    except DeadlineExceededError as exc:
        print(f"efes: {exc}", file=sys.stderr)
        return 1
    except ServiceError as exc:
        print(f"efes: job {job['id']} failed: {exc}", file=sys.stderr)
        return 1
    except TimeoutError as exc:
        print(f"efes: {exc}", file=sys.stderr)
        return 1
    degraded = bool(result.get("deadline_exceeded"))
    if args.kind == "estimate":
        total = result["estimate"]["total_minutes"]
        tasks = len(result["estimate"]["entries"])
        print(
            f"estimate for {result['scenario']} ({result['quality']}): "
            f"{total:.1f} min across {tasks} task(s)"
        )
    else:
        counts = ", ".join(
            f"{name}={_report_size(body)}"
            for name, body in result["reports"].items()
        )
        print(f"assessed {result['scenario']}: {counts}")
    if degraded:
        print(
            "efes: deadline exceeded mid-run; estimate covers completed "
            "stages only (unrun stages are degraded tombstones)",
            file=sys.stderr,
        )
    # Same convention as `efes fleet` / `efes slo`: exit 3 marks a
    # degraded (partial) answer that scripts should treat differently
    # from success or failure.
    return EXIT_DEGRADED if degraded else 0


def cmd_slo(args: argparse.Namespace) -> int:
    import json

    from .service import ServiceClient, ServiceError

    url = args.url or os.environ.get(SERVICE_URL_ENV_VAR) or (
        "http://127.0.0.1:8765"
    )
    client = ServiceClient(url)
    try:
        doc = client.slo()
    except (ServiceError, OSError) as exc:
        print(f"efes: cannot fetch SLOs from {url}: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        rows = []
        for status in doc["slos"]:
            fast = status["windows"]["fast"]
            slow = status["windows"]["slow"]
            rows.append(
                (
                    status["name"],
                    f"{status['objective']:.2%}",
                    status["state"],
                    f"{fast['burn_rate']:.2f}",
                    f"{slow['burn_rate']:.2f}",
                    status["totals"]["events"],
                    status["totals"]["bad"],
                )
            )
        print(
            render_table(
                [
                    "SLO",
                    "Objective",
                    "State",
                    f"Burn {doc['fast_window_seconds']:g}s",
                    f"Burn {doc['slow_window_seconds']:g}s",
                    "Events",
                    "Bad",
                ],
                rows,
                title=f"Service SLOs at {url} "
                f"(warn ≥ {doc['warn_burn_rate']:g}, "
                f"critical ≥ {doc['critical_burn_rate']:g})",
            )
        )
        health = doc.get("health", {})
        print(
            f"overall: {doc['state']} "
            f"(health: {health.get('state', 'unknown')})"
        )
    # Critical burn is actionable from scripts: same exit convention as
    # degraded pipeline runs.
    return EXIT_DEGRADED if doc["state"] == "critical" else 0


def _report_size(body: dict) -> int:
    for field in ("connections", "violations", "findings"):
        if field in body:
            return len(body[field])
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="efes",
        description="EFES: effort estimation for data integration & cleaning",
    )
    parser.add_argument("--seed", type=int, default=1, help="scenario seed")
    # $REPRO_RUNTIME_BACKEND sets the default; an unknown value falls
    # back to serial because argparse only validates explicit arguments.
    env_backend = os.environ.get(BACKEND_ENV_VAR)
    backend_choices = ("serial", "threads", "process", "auto")
    parser.add_argument(
        "--backend",
        choices=backend_choices,
        default=env_backend if env_backend in backend_choices else "serial",
        help=f"assessment runtime backend (default: serial, or ${BACKEND_ENV_VAR})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the threaded/process backends (default: auto-sized)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print runtime instrumentation (timings, cache, task counts)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="fail fast on the first detector/planner error instead of "
        f"degrading the module and exiting {EXIT_DEGRADED}",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available scenarios")

    for name, needs_quality in (
        ("assess", False),
        ("estimate", True),
        ("measure", True),
    ):
        sub = subparsers.add_parser(name)
        sub.add_argument("scenario", help="scenario name (see `efes list`)")
        if needs_quality:
            sub.add_argument(
                "--quality",
                choices=("low", "high"),
                default="high",
                help="expected result quality",
            )

    trace = subparsers.add_parser(
        "trace",
        help="run the pipeline traced and print the span tree",
    )
    trace.add_argument(
        "scenario",
        help="scenario name, directory, or domain alias "
        "(bibliographic, music)",
    )
    trace.add_argument(
        "--quality",
        choices=("low", "high"),
        default="high",
        help="expected result quality",
    )
    trace.add_argument(
        "--output",
        default=None,
        help="also write the span tree(s) as JSON to this path",
    )
    # Subparser defaults clobber the global option's parse result, so
    # these overrides use private dests and main() resolves precedence
    # (subcommand flag > global flag > $REPRO_RUNTIME_BACKEND).
    trace.add_argument(
        "--backend",
        dest="trace_backend",
        choices=backend_choices,
        default=None,
        help="runtime backend for this trace run (overrides the global "
        f"--backend and ${BACKEND_ENV_VAR})",
    )
    trace.add_argument(
        "--workers",
        dest="trace_workers",
        type=int,
        default=None,
        help="worker count for this trace run (overrides the global "
        "--workers)",
    )

    curve = subparsers.add_parser(
        "curve", help="cost-benefit curve of a scenario (§7 extension)"
    )
    curve.add_argument("scenario", help="scenario name (see `efes list`)")

    save = subparsers.add_parser(
        "save", help="export a scenario to the on-disk format"
    )
    save.add_argument("scenario", help="scenario name (see `efes list`)")
    save.add_argument("directory", help="output directory")

    experiments = subparsers.add_parser(
        "experiments", help="reproduce Figures 6 and 7"
    )
    experiments.add_argument(
        "--output",
        default=None,
        help="write a markdown report to this path instead of printing",
    )
    experiments.add_argument(
        "--trace-dir",
        default=None,
        help="write one <scenario>.trace.json span tree per scenario "
        "into this directory",
    )

    serve = subparsers.add_parser(
        "serve", help="run the HTTP assessment service"
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8765, help="bind port")
    serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="concurrent job slots (default: 2)",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded queue capacity before backpressure (default: 64)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="default per-job timeout in seconds (default: none)",
    )
    serve.add_argument(
        "--spool",
        default=None,
        help="report-store spool directory (default: in-memory only)",
    )
    serve.add_argument(
        "--journal-dir",
        default=None,
        help="write-ahead job journal directory: acknowledged jobs "
        "survive crashes and are recovered on restart (default: off)",
    )
    serve.add_argument(
        "--journal-fsync",
        default="batch",
        help="journal flush policy: strict, batch, batch:N, or none "
        "(default: batch — acks fsync, advisory records group-commit)",
    )

    recover = subparsers.add_parser(
        "recover", help="replay a job journal offline (inspect or compact)"
    )
    recover.add_argument(
        "journal_dir",
        help="journal directory to replay (with --fleet: the fleet "
        "directory holding workers/ and spool/)",
    )
    recover.add_argument(
        "--spool",
        default=None,
        help="report-store spool to check results against (optional)",
    )
    recover.add_argument(
        "--dry-run",
        action="store_true",
        help="report what recovery would do without writing anything",
    )
    recover.add_argument(
        "--fleet",
        action="store_true",
        help="treat the directory as a fleet dir: print one combined "
        "unsettled-jobs table over every worker journal, live and "
        "fenced, strictly read-only",
    )

    fleet = subparsers.add_parser(
        "fleet", help="run or inspect a supervised worker fleet"
    )
    fleet_sub = fleet.add_subparsers(dest="fleet_command", required=True)
    fleet_serve = fleet_sub.add_parser(
        "serve",
        help="run N supervised worker processes behind one HTTP front "
        "end (heartbeats, failover, exactly-once re-dispatch)",
    )
    fleet_serve.add_argument(
        "--host", default="127.0.0.1", help="front-end bind address"
    )
    fleet_serve.add_argument(
        "--port", type=int, default=8765, help="front-end bind port"
    )
    # Private dest: the global --workers (runtime pool size) must keep
    # its parse result; main() never looks at fleet_workers.
    fleet_serve.add_argument(
        "--workers",
        dest="fleet_workers",
        type=int,
        default=2,
        help="supervised worker processes (default: 2)",
    )
    fleet_serve.add_argument(
        "--fleet-dir",
        default="fleet",
        help="fleet state directory: per-worker journals + the shared "
        "result spool (default: ./fleet)",
    )
    fleet_serve.add_argument(
        "--job-workers",
        type=int,
        default=2,
        help="concurrent job slots per worker (default: 2)",
    )
    fleet_serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="per-worker queue capacity before backpressure (default: 64)",
    )
    fleet_serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.5,
        help="worker heartbeat cadence in seconds (default: 0.5; the "
        "liveness deadline is 6x this)",
    )
    fleet_serve.add_argument(
        "--journal-fsync",
        default="batch",
        help="worker journal flush policy: strict, batch, batch:N, or "
        "none (default: batch)",
    )
    fleet_serve.add_argument(
        "--no-restart",
        action="store_true",
        help="do not respawn dead workers (the fleet shrinks instead)",
    )
    fleet_status = fleet_sub.add_parser(
        "status", help="show a running fleet's workers, jobs, and health"
    )
    fleet_status.add_argument(
        "--url",
        default=None,
        help=f"fleet front-end URL (default: ${SERVICE_URL_ENV_VAR} or "
        "http://127.0.0.1:8765)",
    )
    fleet_status.add_argument(
        "--json",
        action="store_true",
        help="print the raw /fleet/status document instead of a table",
    )

    submit = subparsers.add_parser(
        "submit", help="submit a job to a running service"
    )
    submit.add_argument("scenario", help="scenario name or directory")
    submit.add_argument(
        "--url",
        default=None,
        help=f"service URL (default: ${SERVICE_URL_ENV_VAR} or "
        "http://127.0.0.1:8765)",
    )
    submit.add_argument(
        "--kind",
        choices=("assess", "estimate"),
        default="estimate",
        help="job kind (default: estimate)",
    )
    submit.add_argument(
        "--quality",
        choices=("low", "high"),
        default="high",
        help="expected result quality for estimate jobs",
    )
    submit.add_argument(
        "--priority", type=int, default=0, help="job priority (higher first)"
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job timeout in seconds",
    )
    submit.add_argument(
        "--deadline",
        type=float,
        default=120.0,
        help="end-to-end deadline in seconds: sent as X-Deadline-Ms so "
        "the server bounds execution, and bounds the local wait for the "
        "result (default: 120)",
    )
    submit.add_argument(
        "--no-wait",
        action="store_true",
        help="print the job id and return without waiting for the result",
    )

    slo = subparsers.add_parser(
        "slo", help="show a running service's SLO burn rates"
    )
    slo.add_argument(
        "--url",
        default=None,
        help=f"service URL (default: ${SERVICE_URL_ENV_VAR} or "
        "http://127.0.0.1:8765)",
    )
    slo.add_argument(
        "--json",
        action="store_true",
        help="print the raw /slo document instead of a table",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    backend = getattr(args, "trace_backend", None) or args.backend
    workers = (
        getattr(args, "trace_workers", None)
        if getattr(args, "trace_workers", None) is not None
        else args.workers
    )
    if workers is not None and workers < 1:
        parser.error(f"argument --workers: must be positive, got {workers}")
    try:
        # Validate the fault plan up front: a typo in a chaos run must be
        # a one-line error, not a silently disabled injection campaign.
        fault_plan_from_env()
    except ValueError as exc:
        print(f"efes: invalid ${FAULT_PLAN_ENV_VAR}: {exc}", file=sys.stderr)
        return 2
    # One runtime per invocation: every command (and the profiling
    # underneath it) executes on the selected backend and records its
    # instrumentation here.
    runtime = Runtime(backend=backend, max_workers=workers)
    set_default_runtime(runtime)
    commands = {
        "list": cmd_list,
        "assess": cmd_assess,
        "estimate": cmd_estimate,
        "measure": cmd_measure,
        "trace": cmd_trace,
        "curve": cmd_curve,
        "save": cmd_save,
        "experiments": cmd_experiments,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "slo": cmd_slo,
        "recover": cmd_recover,
        "fleet": cmd_fleet,
    }
    try:
        status = commands[args.command](args)
    except (UnknownScenarioError, ScenarioFormatError) as exc:
        # A one-line diagnostic, not a traceback: unknown names and
        # malformed scenario data (the message carries file:line) are
        # user errors, not crashes.
        print(f"efes: {exc}", file=sys.stderr)
        status = 2
    except FaultError as exc:
        # Strict mode turns an injected fault into fail-fast: report it
        # as one line (chaos CI asserts this exit), not a traceback.
        print(f"efes: aborted by injected fault: {exc}", file=sys.stderr)
        status = 1
    finally:
        set_default_runtime(None)
        runtime.close()
    if args.metrics:
        print()
        print(runtime.metrics.render())
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
