"""Command-line interface: ``efes <command>``.

Mirrors the paper prototype's command-line interface (Section 6.1) on top
of the shipped scenarios:

* ``efes assess <scenario>``   — print the data complexity reports,
* ``efes estimate <scenario>`` — print the task list and effort estimate,
* ``efes measure <scenario>``  — run the practitioner simulator,
* ``efes experiments``         — reproduce Figures 6 and 7 + rmse,
* ``efes list``                — list the available scenarios.
"""

from __future__ import annotations

import argparse
import os
import sys

from .core import ResultQuality, default_efes
from .core.tasks import TaskCategory
from .practitioner import PractitionerSimulator
from .reporting import render_domain_figure, render_table
from .runtime import BACKEND_ENV_VAR, Runtime, set_default_runtime
from .scenarios import (
    bibliographic_scenarios,
    example_scenario,
    music_scenarios,
)


def _scenarios(seed: int):
    catalogue = {"example": example_scenario()}
    for scenario in bibliographic_scenarios(seed) + music_scenarios(seed):
        catalogue[scenario.name] = scenario
    return catalogue


def _resolve_scenario(name: str, seed: int):
    """A shipped scenario by name, or a directory in the on-disk format."""
    from pathlib import Path

    catalogue = _scenarios(seed)
    if name in catalogue:
        return catalogue[name]
    if Path(name).is_dir():
        from .scenarios.io import load_scenario

        return load_scenario(name)
    raise KeyError(
        f"unknown scenario {name!r}; run `efes list` or pass a scenario "
        "directory (see repro.scenarios.io)"
    )


def _quality(name: str) -> ResultQuality:
    return (
        ResultQuality.HIGH_QUALITY
        if name in ("high", "high_quality", "hq")
        else ResultQuality.LOW_EFFORT
    )


def cmd_list(args: argparse.Namespace) -> int:
    for name in _scenarios(args.seed):
        print(name)
    return 0


def cmd_assess(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args.scenario, args.seed)
    efes = default_efes()
    reports = efes.assess(scenario)
    mapping = reports["mapping"]
    print(
        render_table(
            ["Target table", "Source tables", "Attributes", "Primary key"],
            [connection.as_row() for connection in mapping.connections],
            title="Mapping complexity report",
        )
    )
    print()
    structure = reports["structure"]
    print(
        render_table(
            ["Constraint in target schema", "Conflict", "Violations"],
            [
                (
                    f"κ({v.target_relationship}) = {v.prescribed}",
                    v.conflict.value,
                    v.violation_count,
                )
                for v in structure.violations
            ],
            title="Structure conflict report",
        )
    )
    print()
    values = reports["values"]
    print(
        render_table(
            ["Value heterogeneity", "Attributes", "Parameters"],
            [
                (
                    f.heterogeneity.value,
                    f"{f.source_attribute} -> {f.target_attribute}",
                    ", ".join(
                        f"{k}={v:g}" for k, v in sorted(f.parameters.items())
                    ),
                )
                for f in values.findings
            ],
            title="Value heterogeneity report",
        )
    )
    return 0


def cmd_estimate(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args.scenario, args.seed)
    efes = default_efes()
    estimate = efes.estimate(scenario, _quality(args.quality))
    print(
        render_table(
            ["Task", "Category", "Effort [min]"],
            [
                (
                    entry.task.describe(),
                    entry.task.category.value,
                    round(entry.minutes, 1),
                )
                for entry in estimate.entries
            ],
            title=f"Effort estimate for {scenario.name} ({args.quality})",
        )
    )
    totals = estimate.by_category()
    print()
    for category in TaskCategory:
        print(f"{category.value:22s} {totals[category]:8.1f} min")
    print(f"{'Total':22s} {estimate.total_minutes:8.1f} min")
    return 0


def cmd_measure(args: argparse.Namespace) -> int:
    scenario = _resolve_scenario(args.scenario, args.seed)
    simulator = PractitionerSimulator()
    result = simulator.integrate(scenario, _quality(args.quality))
    print(
        render_table(
            ["Action", "Subject", "Count", "Minutes"],
            [
                (a.action, a.subject, a.count, round(a.minutes, 1))
                for a in result.actions
            ],
            title=f"Measured integration of {scenario.name} ({args.quality})",
        )
    )
    print()
    for category, minutes in result.breakdown().items():
        print(f"{category:22s} {minutes:8.1f} min")
    print(f"{'Total':22s} {result.total_minutes:8.1f} min")
    return 0


def cmd_curve(args: argparse.Namespace) -> int:
    from .extensions import cost_benefit_curve

    scenario = _resolve_scenario(args.scenario, args.seed)
    curve = cost_benefit_curve(default_efes(), scenario)
    print(
        render_table(
            ["Quality", "Estimated effort [min]", "Retained information"],
            [
                (
                    point.quality.label,
                    round(point.effort_minutes, 1),
                    f"{point.benefit:.1%}",
                )
                for point in curve
            ],
            title=f"Cost-benefit curve for {scenario.name}",
        )
    )
    return 0


def cmd_save(args: argparse.Namespace) -> int:
    from .scenarios.io import save_scenario

    scenario = _resolve_scenario(args.scenario, args.seed)
    directory = save_scenario(scenario, args.directory)
    print(f"wrote scenario {scenario.name!r} to {directory}")
    return 0


def cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments import run_experiments
    from .reporting import render_experiment_markdown

    report = run_experiments(seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(render_experiment_markdown(report))
        print(f"wrote {args.output}")
        return 0
    print(render_domain_figure(report.bibliographic))
    print()
    print(render_domain_figure(report.music))
    print()
    print(
        f"Overall rmse: Efes={report.overall_efes_rmse:.2f} "
        f"Counting={report.overall_counting_rmse:.2f} "
        f"(improvement ×{report.overall_improvement:.1f})"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="efes",
        description="EFES: effort estimation for data integration & cleaning",
    )
    parser.add_argument("--seed", type=int, default=1, help="scenario seed")
    # $REPRO_RUNTIME_BACKEND sets the default; an unknown value falls
    # back to serial because argparse only validates explicit arguments.
    env_backend = os.environ.get(BACKEND_ENV_VAR)
    parser.add_argument(
        "--backend",
        choices=("serial", "threads", "auto"),
        default=env_backend if env_backend in ("serial", "threads", "auto") else "serial",
        help=f"assessment runtime backend (default: serial, or ${BACKEND_ENV_VAR})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="thread count for the threaded backend (default: auto-sized)",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="print runtime instrumentation (timings, cache, task counts)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available scenarios")

    for name, needs_quality in (
        ("assess", False),
        ("estimate", True),
        ("measure", True),
    ):
        sub = subparsers.add_parser(name)
        sub.add_argument("scenario", help="scenario name (see `efes list`)")
        if needs_quality:
            sub.add_argument(
                "--quality",
                choices=("low", "high"),
                default="high",
                help="expected result quality",
            )

    curve = subparsers.add_parser(
        "curve", help="cost-benefit curve of a scenario (§7 extension)"
    )
    curve.add_argument("scenario", help="scenario name (see `efes list`)")

    save = subparsers.add_parser(
        "save", help="export a scenario to the on-disk format"
    )
    save.add_argument("scenario", help="scenario name (see `efes list`)")
    save.add_argument("directory", help="output directory")

    experiments = subparsers.add_parser(
        "experiments", help="reproduce Figures 6 and 7"
    )
    experiments.add_argument(
        "--output",
        default=None,
        help="write a markdown report to this path instead of printing",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.workers is not None and args.workers < 1:
        parser.error(f"argument --workers: must be positive, got {args.workers}")
    # One runtime per invocation: every command (and the profiling
    # underneath it) executes on the selected backend and records its
    # instrumentation here.
    runtime = Runtime(backend=args.backend, max_workers=args.workers)
    set_default_runtime(runtime)
    commands = {
        "list": cmd_list,
        "assess": cmd_assess,
        "estimate": cmd_estimate,
        "measure": cmd_measure,
        "curve": cmd_curve,
        "save": cmd_save,
        "experiments": cmd_experiments,
    }
    try:
        status = commands[args.command](args)
    finally:
        set_default_runtime(None)
        runtime.close()
    if args.metrics:
        print()
        print(runtime.metrics.render())
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
