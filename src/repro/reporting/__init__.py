"""Rendering of complexity reports, effort estimates, and figures."""

from .figures import render_bar, render_domain_figure
from .markdown import render_experiment_markdown
from .tables import render_table

__all__ = [
    "render_bar",
    "render_domain_figure",
    "render_experiment_markdown",
    "render_table",
]
