"""ASCII renderings of Figures 6 and 7: grouped, stacked effort bars.

Each (scenario, quality) cell shows three bars — Efes, Measured, Counting
— stacked by effort category, exactly like the paper's figures, but as
horizontal text bars so they render anywhere (benchmark output, logs,
EXPERIMENTS.md).
"""

from __future__ import annotations

from ..core.calibration import DomainResult

#: Stable category → glyph mapping for the stacked segments.
SEGMENT_GLYPHS = {
    "Mapping": "M",
    "Cleaning (Structure)": "S",
    "Cleaning (Values)": "V",
    "Cleaning": "C",
}


def render_bar(breakdown: dict[str, float], scale: float, width: int) -> str:
    """One stacked horizontal bar; ``scale`` is minutes per character."""
    segments: list[str] = []
    for category in ("Mapping", "Cleaning (Structure)", "Cleaning (Values)", "Cleaning"):
        minutes = breakdown.get(category, 0.0)
        if minutes <= 0:
            continue
        glyph = SEGMENT_GLYPHS.get(category, "?")
        length = max(1, round(minutes / scale)) if minutes > 0 else 0
        segments.append(glyph * length)
    bar = "".join(segments)[:width]
    return bar


def render_domain_figure(result: DomainResult, width: int = 60) -> str:
    """The full figure for one domain (Figure 6 or 7)."""
    peak = max(
        (
            max(
                row.efes.total_minutes,
                row.measured.total_minutes,
                row.counting.total_minutes,
            )
            for row in result.rows
        ),
        default=1.0,
    )
    scale = max(peak / width, 1e-9)
    lines = [
        f"Effort estimates ({result.domain} domain) — minutes; "
        f"M=mapping, S=structure cleaning, V=value cleaning, C=cleaning",
        "",
    ]
    for row in result.rows:
        lines.append(f"{row.scenario_name} ({row.quality_label})")
        for summary in (row.efes, row.measured, row.counting):
            bar = render_bar(summary.breakdown, scale, width)
            lines.append(
                f"  {summary.estimator:9s} {summary.total_minutes:8.1f} |{bar}"
            )
        lines.append("")
    lines.append(
        f"rmse: Efes={result.efes_rmse:.2f}  "
        f"Counting={result.counting_rmse:.2f}  "
        f"(improvement ×{result.improvement_factor:.1f})"
    )
    return "\n".join(lines)
