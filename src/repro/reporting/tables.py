"""Plain-text table rendering for reports and benchmark output."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A minimal fixed-width table (no external dependencies)."""
    columns = len(headers)
    normalised_rows = [
        [_cell(value) for value in row] for row in rows
    ]
    for row in normalised_rows:
        if len(row) != columns:
            raise ValueError(
                f"row arity {len(row)} does not match header arity {columns}"
            )
    widths = [
        max(
            len(str(headers[index])),
            *(len(row[index]) for row in normalised_rows),
        )
        if normalised_rows
        else len(str(headers[index]))
        for index in range(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(
        str(header).ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("-+-".join("-" * width for width in widths))
    for row in normalised_rows:
        lines.append(
            " | ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.2f}".rstrip("0").rstrip(".")
    return str(value)
