"""Markdown rendering of a full experiment report.

``efes experiments --output report.md`` uses this to produce a
shareable, EXPERIMENTS.md-style document from a live run — handy for
tracking reproduction numbers across machines or code changes.
"""

from __future__ import annotations

from ..core.calibration import DomainResult
from .figures import render_domain_figure


def _domain_table(result: DomainResult) -> list[str]:
    lines = [
        "| Scenario | Quality | Efes [min] | Measured [min] | Counting [min] |",
        "|---|---|---|---|---|",
    ]
    for row in result.rows:
        lines.append(
            f"| {row.scenario_name} | {row.quality_label} "
            f"| {row.efes.total_minutes:.1f} "
            f"| {row.measured.total_minutes:.1f} "
            f"| {row.counting.total_minutes:.1f} |"
        )
    return lines


def render_experiment_markdown(report) -> str:
    """Render an :class:`~repro.experiments.ExperimentReport` as markdown."""
    lines: list[str] = [
        "# EFES experiment report",
        "",
        "Cross-domain-calibrated estimates vs simulated ground truth "
        "(Section 6 of the paper).",
        "",
        "## Summary",
        "",
        "| Domain | Efes rmse | Counting rmse | Improvement |",
        "|---|---|---|---|",
    ]
    for result in (report.bibliographic, report.music):
        lines.append(
            f"| {result.domain} | {result.efes_rmse:.2f} "
            f"| {result.counting_rmse:.2f} "
            f"| ×{result.improvement_factor:.1f} |"
        )
    lines.append(
        f"| **overall** | **{report.overall_efes_rmse:.2f}** "
        f"| **{report.overall_counting_rmse:.2f}** "
        f"| **×{report.overall_improvement:.1f}** |"
    )
    for result, figure_name in (
        (report.bibliographic, "Figure 6"),
        (report.music, "Figure 7"),
    ):
        lines.extend(
            [
                "",
                f"## {figure_name} — {result.domain} domain",
                "",
                *_domain_table(result),
                "",
                "```",
                render_domain_figure(result),
                "```",
            ]
        )
    lines.append("")
    return "\n".join(lines)
