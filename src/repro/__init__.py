"""EFES — Estimating Data Integration and Cleaning Effort.

A faithful, from-scratch reproduction of Kruse, Papotti, Naumann:
*Estimating Data Integration and Cleaning Effort* (EDBT 2015).

Quickstart::

    from repro import default_efes, ResultQuality
    from repro.scenarios import example_scenario

    scenario = example_scenario()
    efes = default_efes()
    reports = efes.assess(scenario)           # phase 1: complexity
    estimate = efes.estimate(scenario, ResultQuality.HIGH_QUALITY)
    print(estimate.total_minutes, estimate.by_category())

Subpackages: :mod:`repro.relational` (in-memory relational engine),
:mod:`repro.profiling` (statistics + dependency discovery),
:mod:`repro.matching` (schema matchers), :mod:`repro.csg`
(cardinality-constrained schema graphs), :mod:`repro.core` (the EFES
framework and its three modules), :mod:`repro.scenarios` (the running
example + both case-study domains), :mod:`repro.practitioner` (ground-
truth simulator), :mod:`repro.experiments` (Section 6 evaluation),
:mod:`repro.reporting` (tables and ASCII figures).
"""

from .core import (
    AttributeCountingBaseline,
    Efes,
    EffortEstimate,
    ExecutionSettings,
    ResultQuality,
    default_efes,
    default_execution_settings,
    default_modules,
    tool_assisted_settings,
)
from .runtime import Runtime, RuntimeMetrics, default_runtime, get_runtime

__version__ = "1.1.0"

__all__ = [
    "AttributeCountingBaseline",
    "Efes",
    "EffortEstimate",
    "ExecutionSettings",
    "ResultQuality",
    "Runtime",
    "RuntimeMetrics",
    "__version__",
    "default_efes",
    "default_execution_settings",
    "default_modules",
    "default_runtime",
    "get_runtime",
    "tool_assisted_settings",
]
