"""Instance-based schema matching.

Scores attribute pairs by how similar their *data* looks: value overlap
for discrete columns, pattern/length/range overlap otherwise.  Reuses the
profiling statistics, so the instance matcher is exactly "value fit"
turned into a matcher — the paper notes this dual use of statistics for
both matching and complexity assessment.
"""

from __future__ import annotations

from ..relational.database import Database
from ..profiling.profiler import ColumnProfile, profile_database
from .correspondence import Correspondence


def profile_similarity(source: ColumnProfile, target: ColumnProfile) -> float:
    """Similarity of two column profiles in [0, 1].

    The importance-weighted average of the per-statistic fit values, run in
    both directions and averaged, so the measure is symmetric (a matcher
    needs symmetry; the value-fit detector deliberately does not).
    """
    forward = _directed_fit(source, target)
    backward = _directed_fit(target, source)
    return (forward + backward) / 2.0


def _directed_fit(source: ColumnProfile, target: ColumnProfile) -> float:
    total_weight = 0.0
    weighted_fit = 0.0
    for name, target_statistic in target.statistics.items():
        source_statistic = source.statistics.get(name)
        if source_statistic is None:
            continue
        importance = target_statistic.importance()
        if importance <= 0.0:
            continue
        weighted_fit += importance * target_statistic.fit(source_statistic)
        total_weight += importance
    if total_weight == 0.0:
        return 0.0
    return weighted_fit / total_weight


class InstanceMatcher:
    """Generate attribute correspondences from data similarity alone."""

    def __init__(self, threshold: float = 0.75) -> None:
        self.threshold = threshold

    def score(
        self, source: Database, target: Database
    ) -> dict[tuple[str, str, str, str], float]:
        source_profiles = profile_database(source)
        target_profiles = profile_database(target)
        scores: dict[tuple[str, str, str, str], float] = {}
        for (s_rel, s_attr), s_profile in source_profiles.items():
            for (t_rel, t_attr), t_profile in target_profiles.items():
                if s_profile.datatype.is_numeric != t_profile.datatype.is_numeric:
                    # Different statistic families — compare only fill/constancy.
                    score = 0.5 * (
                        1.0
                        - abs(
                            s_profile.constancy.constancy
                            - t_profile.constancy.constancy
                        )
                    )
                else:
                    score = profile_similarity(s_profile, t_profile)
                scores[(s_rel, s_attr, t_rel, t_attr)] = score
        return scores

    def match(self, source: Database, target: Database) -> list[Correspondence]:
        scores = self.score(source, target)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        taken_source: set[tuple[str, str]] = set()
        taken_target: set[tuple[str, str]] = set()
        result: list[Correspondence] = []
        for (s_rel, s_attr, t_rel, t_attr), score in ranked:
            if score < self.threshold:
                break
            if (s_rel, s_attr) in taken_source or (t_rel, t_attr) in taken_target:
                continue
            taken_source.add((s_rel, s_attr))
            taken_target.add((t_rel, t_attr))
            result.append(
                Correspondence(s_rel, s_attr, t_rel, t_attr, confidence=score)
            )
        return result
