"""Composite matcher: combine name-, instance-, and structure-based scores."""

from __future__ import annotations

from ..relational.database import Database
from .correspondence import Correspondence
from .instance_matcher import InstanceMatcher
from .name_matcher import NameMatcher


class CompositeMatcher:
    """Weighted combination of the name and instance matchers.

    The weights are exposed so the source-selection example can trade
    schema evidence against data evidence.
    """

    def __init__(
        self,
        name_weight: float = 0.6,
        instance_weight: float = 0.4,
        threshold: float = 0.6,
    ) -> None:
        if name_weight < 0 or instance_weight < 0:
            raise ValueError("matcher weights must be non-negative")
        total = name_weight + instance_weight
        if total == 0:
            raise ValueError("at least one matcher weight must be positive")
        self.name_weight = name_weight / total
        self.instance_weight = instance_weight / total
        self.threshold = threshold
        self._name_matcher = NameMatcher(threshold=0.0)
        self._instance_matcher = InstanceMatcher(threshold=0.0)

    def score(
        self, source: Database, target: Database
    ) -> dict[tuple[str, str, str, str], float]:
        name_scores = self._name_matcher.score(source.schema, target.schema)
        instance_scores = self._instance_matcher.score(source, target)
        combined: dict[tuple[str, str, str, str], float] = {}
        for key, name_score in name_scores.items():
            combined[key] = (
                self.name_weight * name_score
                + self.instance_weight * instance_scores.get(key, 0.0)
            )
        return combined

    def match(self, source: Database, target: Database) -> list[Correspondence]:
        scores = self.score(source, target)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))
        taken_source: set[tuple[str, str]] = set()
        taken_target: set[tuple[str, str]] = set()
        result: list[Correspondence] = []
        for (s_rel, s_attr, t_rel, t_attr), score in ranked:
            if score < self.threshold:
                break
            if (s_rel, s_attr) in taken_source or (t_rel, t_attr) in taken_target:
                continue
            taken_source.add((s_rel, s_attr))
            taken_target.add((t_rel, t_attr))
            result.append(
                Correspondence(s_rel, s_attr, t_rel, t_attr, confidence=score)
            )
        return result
