"""Schema matching substrate.

EFES assumes correspondences are given ("they can be automatically
discovered with schema matching tools", Section 3.1); this package builds
those tools: a name matcher, an instance matcher on profiling statistics,
similarity flooding [19] with its match-accuracy effort measure, and a
composite matcher.
"""

from .correspondence import (
    Correspondence,
    CorrespondenceSet,
    attribute_correspondence,
    relation_correspondence,
)
from .instance_matcher import InstanceMatcher, profile_similarity
from .matcher import CompositeMatcher
from .name_matcher import (
    NameMatcher,
    levenshtein,
    name_similarity,
    normalise,
    trigram_similarity,
)
from .similarity_flooding import (
    FloodingResult,
    SimilarityFlooding,
    match_accuracy,
)

__all__ = [
    "CompositeMatcher",
    "Correspondence",
    "CorrespondenceSet",
    "FloodingResult",
    "InstanceMatcher",
    "NameMatcher",
    "SimilarityFlooding",
    "attribute_correspondence",
    "levenshtein",
    "match_accuracy",
    "name_similarity",
    "normalise",
    "profile_similarity",
    "relation_correspondence",
    "trigram_similarity",
]
