"""Name-based schema matching.

Scores attribute pairs by the similarity of their (normalised) names using
trigram Jaccard similarity plus a Levenshtein fallback for short names.
Used to bootstrap correspondences when none are hand-made (the paper
assumes given correspondences but points to matchers [10] for automation).
"""

from __future__ import annotations

from ..relational.schema import Schema
from .correspondence import Correspondence

_SYNONYMS = {
    # Tiny thesaurus of the vocabulary our scenario domains use; real
    # matchers plug in WordNet or domain ontologies here.
    "title": {"name", "label"},
    "name": {"title", "label"},
    "length": {"duration", "runtime"},
    "duration": {"length", "runtime"},
    "artist": {"performer", "musician"},
    "author": {"writer", "creator"},
    "record": {"album", "release"},
    "album": {"record", "release"},
    "song": {"track", "tune"},
    "track": {"song", "tune"},
    "year": {"date", "released"},
}


def normalise(name: str) -> str:
    """Lower-case and strip separators so ``artist_list`` ≈ ``artistList``."""
    result: list[str] = []
    for char in name:
        if char.isalnum():
            result.append(char.lower())
    return "".join(result)


def trigrams(text: str) -> set[str]:
    padded = f"##{text}##"
    return {padded[i : i + 3] for i in range(len(padded) - 2)}


def trigram_similarity(left: str, right: str) -> float:
    """Jaccard similarity of character trigrams of the normalised names."""
    left_norm, right_norm = normalise(left), normalise(right)
    if not left_norm or not right_norm:
        return 0.0
    if left_norm == right_norm:
        return 1.0
    left_set, right_set = trigrams(left_norm), trigrams(right_norm)
    union = left_set | right_set
    if not union:
        return 0.0
    return len(left_set & right_set) / len(union)


def levenshtein(left: str, right: str) -> int:
    """Classic edit distance, O(len(left)·len(right))."""
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for i, left_char in enumerate(left, start=1):
        current = [i]
        for j, right_char in enumerate(right, start=1):
            cost = 0 if left_char == right_char else 1
            current.append(
                min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            )
        previous = current
    return previous[-1]


def name_similarity(left: str, right: str) -> float:
    """Blend trigram similarity, edit distance, and the synonym table."""
    left_norm, right_norm = normalise(left), normalise(right)
    if left_norm and left_norm == right_norm:
        return 1.0
    if right_norm in _SYNONYMS.get(left_norm, ()):  # symmetric table
        return 0.9
    tri = trigram_similarity(left, right)
    if max(len(left_norm), len(right_norm)) == 0:
        return 0.0
    edit = 1.0 - levenshtein(left_norm, right_norm) / max(
        len(left_norm), len(right_norm)
    )
    return max(tri, edit * 0.8)


class NameMatcher:
    """Generate attribute correspondences by name similarity."""

    def __init__(self, threshold: float = 0.55) -> None:
        self.threshold = threshold

    def score(
        self,
        source: Schema,
        target: Schema,
    ) -> dict[tuple[str, str, str, str], float]:
        """Similarity score for every attribute pair.

        Keys are ``(source_relation, source_attribute, target_relation,
        target_attribute)``.  The relation-name similarity contributes a
        small context bonus, so ``albums.name`` prefers ``records.title``
        over ``tracks.title``.
        """
        scores: dict[tuple[str, str, str, str], float] = {}
        for source_relation in source.relations:
            for target_relation in target.relations:
                context = name_similarity(
                    source_relation.name, target_relation.name
                )
                for source_attribute in source_relation.attributes:
                    for target_attribute in target_relation.attributes:
                        base = name_similarity(
                            source_attribute.name, target_attribute.name
                        )
                        key = (
                            source_relation.name,
                            source_attribute.name,
                            target_relation.name,
                            target_attribute.name,
                        )
                        scores[key] = min(1.0, 0.85 * base + 0.15 * context)
        return scores

    def match(self, source: Schema, target: Schema) -> list[Correspondence]:
        """Stable-greedy 1:1 matching of attribute pairs above the threshold."""
        scores = self.score(source, target)
        ranked = sorted(
            scores.items(), key=lambda item: (-item[1], item[0])
        )
        taken_source: set[tuple[str, str]] = set()
        taken_target: set[tuple[str, str]] = set()
        result: list[Correspondence] = []
        for (s_rel, s_attr, t_rel, t_attr), score in ranked:
            if score < self.threshold:
                break
            if (s_rel, s_attr) in taken_source or (t_rel, t_attr) in taken_target:
                continue
            taken_source.add((s_rel, s_attr))
            taken_target.add((t_rel, t_attr))
            result.append(
                Correspondence(s_rel, s_attr, t_rel, t_attr, confidence=score)
            )
        return result
