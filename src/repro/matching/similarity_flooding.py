"""Similarity flooding (Melnik, Garcia-Molina, Rahm; ICDE 2002) [19].

The paper leans on similarity flooding twice: as a representative matcher
for bootstrapping correspondences and for its *match accuracy* measure —
"how much effort it costs the user to modify the proposed match result
into the intended result" in terms of additions and deletions — which the
conclusions recommend as the starting point for pricing correspondence
creation.  Both are implemented here.

The algorithm: build a *pairwise connectivity graph* whose nodes are pairs
(source element, target element) connected whenever both components are
connected by the same edge label in their schema graphs; then propagate
initial (name-based) similarities along the connectivity graph with the
"basic" fixpoint formula until convergence.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from ..relational.schema import Schema
from .correspondence import Correspondence
from .name_matcher import name_similarity

PairNode = tuple[str, str]

#: Edge labels of the schema-as-graph view.
_ATTRIBUTE_EDGE = "attribute"
_TYPE_EDGE = "type"


def _schema_edges(schema: Schema) -> list[tuple[str, str, str]]:
    """The schema as labelled edges: relation --attribute--> attribute node,
    attribute --type--> datatype node."""
    edges: list[tuple[str, str, str]] = []
    for relation in schema.relations:
        for attribute in relation.attributes:
            attribute_node = f"{relation.name}.{attribute.name}"
            edges.append((relation.name, _ATTRIBUTE_EDGE, attribute_node))
            edges.append(
                (attribute_node, _TYPE_EDGE, f"type:{attribute.datatype.value}")
            )
    return edges


def _initial_similarity(node_a: str, node_b: str) -> float:
    if node_a.startswith("type:") or node_b.startswith("type:"):
        return 1.0 if node_a == node_b else 0.0
    # Compare the trailing name component (attribute or relation name).
    return name_similarity(node_a.rsplit(".", 1)[-1], node_b.rsplit(".", 1)[-1])


@dataclasses.dataclass
class FloodingResult:
    """The fixpoint similarities plus the filtered correspondences."""

    similarities: dict[PairNode, float]
    correspondences: list[Correspondence]
    iterations: int


class SimilarityFlooding:
    """The basic similarity-flooding fixpoint with 1:1 filtering."""

    def __init__(
        self,
        threshold: float = 0.35,
        max_iterations: int = 100,
        epsilon: float = 1e-4,
    ) -> None:
        self.threshold = threshold
        self.max_iterations = max_iterations
        self.epsilon = epsilon

    def run(self, source: Schema, target: Schema) -> FloodingResult:
        source_edges = _schema_edges(source)
        target_edges = _schema_edges(target)

        # Pairwise connectivity graph with propagation coefficients.
        neighbours: dict[PairNode, list[tuple[PairNode, float]]] = defaultdict(list)
        by_label_source = defaultdict(list)
        by_label_target = defaultdict(list)
        for a, label, b in source_edges:
            by_label_source[label].append((a, b))
        for a, label, b in target_edges:
            by_label_target[label].append((a, b))
        out_degree: dict[PairNode, int] = defaultdict(int)
        pcg_edges: list[tuple[PairNode, PairNode]] = []
        for label, source_pairs in by_label_source.items():
            for (sa, sb) in source_pairs:
                for (ta, tb) in by_label_target.get(label, ()):  # same label
                    pcg_edges.append(((sa, ta), (sb, tb)))
                    pcg_edges.append(((sb, tb), (sa, ta)))
        for origin, _ in pcg_edges:
            out_degree[origin] += 1
        for origin, destination in pcg_edges:
            neighbours[origin].append((destination, 1.0 / out_degree[origin]))

        nodes: set[PairNode] = set(neighbours)
        for origin, targets in list(neighbours.items()):
            nodes.update(destination for destination, _ in targets)

        sigma0 = {node: _initial_similarity(*node) for node in nodes}
        sigma = dict(sigma0)
        iterations = 0
        for iterations in range(1, self.max_iterations + 1):
            incoming: dict[PairNode, float] = defaultdict(float)
            for origin, targets in neighbours.items():
                contribution = sigma[origin]
                for destination, weight in targets:
                    incoming[destination] += contribution * weight
            updated = {
                node: sigma0[node] + incoming.get(node, 0.0) for node in nodes
            }
            peak = max(updated.values(), default=1.0)
            if peak > 0:
                updated = {node: value / peak for node, value in updated.items()}
            delta = max(
                abs(updated[node] - sigma[node]) for node in nodes
            ) if nodes else 0.0
            sigma = updated
            if delta < self.epsilon:
                break

        correspondences = self._filter(source, target, sigma)
        return FloodingResult(sigma, correspondences, iterations)

    def _filter(
        self, source: Schema, target: Schema, sigma: dict[PairNode, float]
    ) -> list[Correspondence]:
        """Stable-greedy 1:1 selection over attribute pairs."""
        candidates: list[tuple[float, str, str]] = []
        for (node_a, node_b), value in sigma.items():
            if "." in node_a and "." in node_b and not node_a.startswith("type:"):
                candidates.append((value, node_a, node_b))
        candidates.sort(key=lambda item: (-item[0], item[1], item[2]))
        taken_source: set[str] = set()
        taken_target: set[str] = set()
        result: list[Correspondence] = []
        for value, node_a, node_b in candidates:
            if value < self.threshold:
                break
            if node_a in taken_source or node_b in taken_target:
                continue
            s_rel, s_attr = node_a.split(".", 1)
            t_rel, t_attr = node_b.split(".", 1)
            if not (source.has_relation(s_rel) and target.has_relation(t_rel)):
                continue
            taken_source.add(node_a)
            taken_target.add(node_b)
            result.append(
                Correspondence(s_rel, s_attr, t_rel, t_attr,
                               confidence=min(1.0, value))
            )
        return result


def match_accuracy(
    proposed: list[Correspondence], intended: list[Correspondence]
) -> float:
    """Melnik et al.'s accuracy: 1 - (additions + deletions) / |intended|.

    Measures "how much effort it costs the user to modify the proposed
    match result into the intended result".  Can be negative when fixing
    the proposal costs more than matching from scratch.
    """
    def key(c: Correspondence) -> tuple:
        return (
            c.source_relation,
            c.source_attribute,
            c.target_relation,
            c.target_attribute,
        )

    proposed_keys = {key(c) for c in proposed}
    intended_keys = {key(c) for c in intended}
    if not intended_keys:
        return 1.0 if not proposed_keys else 0.0
    additions = len(intended_keys - proposed_keys)
    deletions = len(proposed_keys - intended_keys)
    return 1.0 - (additions + deletions) / len(intended_keys)
