"""Correspondences between source and target schema elements (Section 3.1).

A correspondence connects "a source schema element with the target schema
element, into which its contents should be integrated" — either two
relations or two attributes.  Correspondences are *not* executable
mappings, but they carry enough information for the complexity assessment.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator

from ..relational.schema import Schema


@dataclasses.dataclass(frozen=True)
class Correspondence:
    """One source→target element correspondence.

    Attribute-level correspondences set both ``source_attribute`` and
    ``target_attribute``; relation-level ones leave both as ``None``.
    ``confidence`` is 1.0 for hand-made correspondences and the matcher
    score for generated ones.
    """

    source_relation: str
    source_attribute: str | None
    target_relation: str
    target_attribute: str | None
    confidence: float = 1.0

    def __post_init__(self) -> None:
        if (self.source_attribute is None) != (self.target_attribute is None):
            raise ValueError(
                "a correspondence links either two relations or two "
                "attributes, not a mix"
            )
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence out of range: {self.confidence}")

    @property
    def is_attribute_level(self) -> bool:
        return self.source_attribute is not None

    @property
    def source(self) -> str:
        if self.is_attribute_level:
            return f"{self.source_relation}.{self.source_attribute}"
        return self.source_relation

    @property
    def target(self) -> str:
        if self.is_attribute_level:
            return f"{self.target_relation}.{self.target_attribute}"
        return self.target_relation

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.source} => {self.target} ({self.confidence:.2f})"


def attribute_correspondence(
    source: str, target: str, confidence: float = 1.0
) -> Correspondence:
    """Build an attribute correspondence from dotted names
    (``"albums.name" => "records.title"``)."""
    source_relation, source_attribute = source.split(".", 1)
    target_relation, target_attribute = target.split(".", 1)
    return Correspondence(
        source_relation,
        source_attribute,
        target_relation,
        target_attribute,
        confidence,
    )


def relation_correspondence(
    source: str, target: str, confidence: float = 1.0
) -> Correspondence:
    """Build a relation correspondence from bare relation names."""
    return Correspondence(source, None, target, None, confidence)


class CorrespondenceSet:
    """An indexed collection of correspondences for one scenario pair."""

    def __init__(self, correspondences: Iterable[Correspondence] = ()) -> None:
        self._correspondences: list[Correspondence] = []
        for correspondence in correspondences:
            self.add(correspondence)

    def add(self, correspondence: Correspondence) -> None:
        self._correspondences.append(correspondence)

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self._correspondences)

    def __len__(self) -> int:
        return len(self._correspondences)

    # ------------------------------------------------------------------
    # Lookups used by the detectors
    # ------------------------------------------------------------------

    def attribute_correspondences(self) -> tuple[Correspondence, ...]:
        return tuple(c for c in self._correspondences if c.is_attribute_level)

    def relation_correspondences(self) -> tuple[Correspondence, ...]:
        """Relation-level correspondences, both declared and implied.

        A target relation that only has attribute correspondences still
        corresponds to the source relations those attributes live in.
        """
        explicit = [
            c for c in self._correspondences if not c.is_attribute_level
        ]
        seen = {(c.source_relation, c.target_relation) for c in explicit}
        implied: list[Correspondence] = []
        for c in self.attribute_correspondences():
            key = (c.source_relation, c.target_relation)
            if key not in seen:
                seen.add(key)
                implied.append(
                    Correspondence(
                        c.source_relation, None, c.target_relation, None,
                        c.confidence,
                    )
                )
        return tuple(explicit + implied)

    def sources_of_attribute(
        self, target_relation: str, target_attribute: str
    ) -> tuple[Correspondence, ...]:
        return tuple(
            c
            for c in self.attribute_correspondences()
            if c.target_relation == target_relation
            and c.target_attribute == target_attribute
        )

    def explicit_relation_correspondences(self) -> tuple[Correspondence, ...]:
        """Only the relation correspondences the user actually declared."""
        return tuple(
            c for c in self._correspondences if not c.is_attribute_level
        )

    def sources_of_relation(self, target_relation: str) -> tuple[str, ...]:
        """Source relations feeding a target relation, in stable order."""
        seen: list[str] = []
        for c in self.relation_correspondences():
            if c.target_relation == target_relation:
                if c.source_relation not in seen:
                    seen.append(c.source_relation)
        return tuple(seen)

    def identity_sources_of_relation(self, target_relation: str) -> tuple[str, ...]:
        """The source relation(s) providing a target relation's *identity*.

        Explicit relation correspondences (the solid relation arrows of
        Fig. 2a) take precedence; implied ones are a fallback for
        correspondence sets that only declare attribute arrows.
        """
        explicit = [
            c.source_relation
            for c in self.explicit_relation_correspondences()
            if c.target_relation == target_relation
        ]
        if explicit:
            seen: list[str] = []
            for name in explicit:
                if name not in seen:
                    seen.append(name)
            return tuple(seen)
        return self.sources_of_relation(target_relation)

    def target_relations(self) -> tuple[str, ...]:
        """All target relations that receive data, in stable order."""
        seen: list[str] = []
        for c in self._correspondences:
            if c.target_relation not in seen:
                seen.append(c.target_relation)
        return tuple(seen)

    def mapped_target_attributes(
        self, target_relation: str
    ) -> tuple[str, ...]:
        seen: list[str] = []
        for c in self.attribute_correspondences():
            if c.target_relation == target_relation:
                if c.target_attribute not in seen:
                    seen.append(c.target_attribute)
        return tuple(seen)

    def validate_against(self, source: Schema, target: Schema) -> None:
        """Raise if any correspondence references unknown schema elements."""
        for c in self._correspondences:
            source_relation = source.relation(c.source_relation)
            target_relation = target.relation(c.target_relation)
            if c.is_attribute_level:
                source_relation.attribute(c.source_attribute)
                target_relation.attribute(c.target_attribute)
