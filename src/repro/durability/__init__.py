"""Durability: a write-ahead job journal and crash recovery.

PR 4 made the assessment service resilient to *partial* failures —
injected exceptions, torn store files, tripped breakers.  This package
closes the remaining gap: **process death**.  A ``kill -9`` of ``efes
serve`` used to lose every queued and running job; with a journal
directory configured, every acknowledged job survives a crash and is
settled exactly once after restart.

* :class:`JobJournal` — a checksummed, segment-rotating JSONL
  write-ahead log (records ``submitted``/``dispatched``/``settled``,
  codecs in :mod:`repro.core.serialize`) with configurable fsync
  batching (:class:`FlushPolicy`) and named fault-injection sites
  ``journal.append`` / ``journal.fsync`` / ``journal.replay``,
* :class:`RecoveryManager` — startup replay of the journal against the
  :class:`~repro.service.ReportStore`: jobs that never settled are
  re-enqueued (interrupted ``RUNNING`` jobs are marked for idempotent
  re-execution), jobs whose result is already spooled settle instantly
  from the store, the idempotency-key dedup window is rebuilt so a
  client retrying a ``submit`` after a crash neither loses nor
  double-runs work, and fully-settled segments are compacted away.

The proof is the deterministic crash-simulation harness in
``tests/sim/``: a seeded :class:`CrashSchedule` kills the
scheduler+store+journal stack at arbitrary record boundaries (including
mid-append torn writes) and asserts the exactly-once-settlement
invariant across hundreds of seeds, FoundationDB-style.
"""

from .journal import (
    FlushPolicy,
    JobJournal,
    JournalCrashed,
    JournalError,
    dispatched_record,
    settled_record,
    submitted_record,
)
from .recovery import JournalReplay, RecoveryManager, ReplayedJob

__all__ = [
    "FlushPolicy",
    "JobJournal",
    "JournalCrashed",
    "JournalError",
    "JournalReplay",
    "RecoveryManager",
    "ReplayedJob",
    "dispatched_record",
    "settled_record",
    "submitted_record",
]
