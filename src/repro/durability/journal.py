"""The write-ahead job journal.

A :class:`JobJournal` is an append-only JSONL log split into rotating
segment files (``journal-00000001.wal``, ``journal-00000002.wal``, …).
Each line is a checksummed record (codec in
:mod:`repro.core.serialize`): a torn write — the process killed mid
``write(2)`` — leaves a line that fails its CRC or lacks its newline,
and replay stops exactly there, WAL-style, instead of trusting garbage.

Three record types cover the scheduler's terminal-relevant transitions:

* ``submitted`` — written (and fsynced, under the default
  :class:`FlushPolicy`) **before** the submission is acknowledged; this
  is the write-ahead contract that makes "every acknowledged job is
  eventually settled" provable,
* ``dispatched`` — advisory: the job entered a worker slot, so a crash
  now means an *interrupted* job (re-executed idempotently) rather than
  a merely queued one,
* ``settled`` — the job reached a terminal state; written after the
  result document is durably in the report store, so a settled-done
  record always has its result behind it.

``dispatched``/``settled`` records ride the batching policy — losing
them merely causes an idempotent re-execution — while ``submitted``
records are fsynced before the ack returns (``fsync_on_ack``).

Fault sites: ``journal.append``, ``journal.fsync``, ``journal.replay``
(:func:`repro.resilience.fault_point`), and append payloads pass through
:func:`~repro.resilience.corrupt_text` so chaos plans can tear records
without a process kill.  The crash-simulation harness injects real
mid-append kills through the ``failpoint`` hook instead: a
FoundationDB-style buggify point that can truncate the line being
written and poison the journal (every later call raises
:class:`JournalCrashed`), modelling a ``kill -9`` precisely at a record
boundary.
"""

from __future__ import annotations

import dataclasses
import os
import threading
import time
from collections.abc import Callable
from pathlib import Path

from ..core.serialize import decode_journal_text, journal_record_to_line
from ..resilience import corrupt_text, fault_point

#: Segment file name pattern; the numeric part orders replay.
SEGMENT_PATTERN = "journal-{index:08d}.wal"
SEGMENT_GLOB = "journal-*.wal"


class JournalError(OSError):
    """The journal could not append or flush (submission must not ack)."""


class JournalCrashed(JournalError):
    """A simulated crash killed this journal; every later call raises.

    Raised by the crash-simulation ``failpoint`` and then persistently:
    a crashed journal is fenced out exactly like a dead process — the
    abandoned scheduler threads of a "killed" epoch cannot write into
    the epoch that recovers after them.
    """


@dataclasses.dataclass(frozen=True)
class FlushPolicy:
    """When the journal fsyncs: the durability/throughput dial.

    * ``fsync_on_ack`` — ``submitted`` records fsync before the append
      returns, so an acknowledged job is on disk.  Disabling it trades
      the exactly-once guarantee for latency (documented, not default).
    * ``fsync_every_records`` — batch size for advisory records
      (``dispatched``/``settled``): fsync once this many appends are
      pending.  ``1`` = every record, ``0`` = never auto-fsync (rotate,
      flush, and close still do).
    * ``fsync_every_seconds`` — also fsync when this much time passed
      since the last one (checked at append; no timer thread).
    """

    fsync_on_ack: bool = True
    fsync_every_records: int = 8
    fsync_every_seconds: float | None = 0.05

    @classmethod
    def strict(cls) -> "FlushPolicy":
        """fsync every single record (the crash-sim worst case)."""
        return cls(fsync_on_ack=True, fsync_every_records=1,
                   fsync_every_seconds=None)

    @classmethod
    def batched(cls, records: int = 8,
                seconds: float | None = 0.05) -> "FlushPolicy":
        """Group-commit advisory records; acks still fsync (default)."""
        return cls(fsync_on_ack=True, fsync_every_records=records,
                   fsync_every_seconds=seconds)

    @classmethod
    def relaxed(cls) -> "FlushPolicy":
        """Never auto-fsync: the OS decides.  Fastest, weakest."""
        return cls(fsync_on_ack=False, fsync_every_records=0,
                   fsync_every_seconds=None)

    @classmethod
    def parse(cls, value: str) -> "FlushPolicy":
        """CLI spelling: ``strict`` | ``batch`` | ``batch:N`` | ``none``."""
        text = value.strip().lower()
        if text == "strict":
            return cls.strict()
        if text == "none":
            return cls.relaxed()
        if text == "batch":
            return cls.batched()
        if text.startswith("batch:"):
            try:
                records = int(text.split(":", 1)[1])
            except ValueError:
                raise ValueError(
                    f"invalid flush policy {value!r}: batch:N needs an "
                    "integer N"
                ) from None
            if records < 1:
                raise ValueError(
                    f"invalid flush policy {value!r}: N must be positive"
                )
            return cls.batched(records=records)
        raise ValueError(
            f"invalid flush policy {value!r}; expected strict, batch, "
            "batch:N, or none"
        )


# ----------------------------------------------------------------------
# Record constructors — the only shapes the scheduler writes.
# ----------------------------------------------------------------------


def submitted_record(
    job,
    *,
    scenario_ref: str | None = None,
    seed: int | None = None,
    payload_ref: str | None = None,
    recovered: bool = False,
) -> dict:
    """The write-ahead record acknowledging one job submission.

    Carries everything recovery needs to rebuild the job: the scenario
    reference + seed for assess/estimate jobs, or a ``payload_ref`` the
    recovery payload resolver understands for callable jobs.
    """
    record = {
        "type": "submitted",
        "job_id": job.id,
        "kind": job.kind,
        "scenario": job.scenario_name,
        "quality": job.quality,
        "priority": job.priority,
        "timeout": job.timeout,
        "store_key": job.store_key,
        "correlation_id": job.correlation_id,
        "idempotency_key": job.idempotency_key,
        "ts": time.time(),
    }
    if scenario_ref is not None:
        record["scenario_ref"] = scenario_ref
    if seed is not None:
        record["seed"] = seed
    if payload_ref is not None:
        record["payload_ref"] = payload_ref
    if recovered:
        record["recovered"] = True
    return record


def dispatched_record(job_id: str) -> dict:
    return {"type": "dispatched", "job_id": job_id, "ts": time.time()}


def settled_record(
    job_id: str,
    state: str,
    *,
    error: str | None = None,
    store_key: str | None = None,
    from_store: bool = False,
    idempotency_key: str | None = None,
    kind: str | None = None,
    scenario: str | None = None,
    checkpoint: bool = False,
) -> dict:
    """A terminal transition; ``checkpoint=True`` marks the compacted
    re-statement recovery writes so the dedup window survives restarts."""
    record: dict = {
        "type": "settled",
        "job_id": job_id,
        "state": state,
        "ts": time.time(),
    }
    if error is not None:
        record["error"] = error
    if store_key is not None:
        record["store_key"] = store_key
    if from_store:
        record["from_store"] = True
    if idempotency_key is not None:
        record["idempotency_key"] = idempotency_key
    if kind is not None:
        record["kind"] = kind
    if scenario is not None:
        record["scenario"] = scenario
    if checkpoint:
        record["checkpoint"] = True
    return record


class JobJournal:
    """Checksummed, segment-rotating JSONL write-ahead log of job state.

    Opening a journal never writes: the active segment is created
    lazily on the first append, always as a **fresh** segment (one
    index past the highest on disk) — appending after a torn tail would
    bury every later record behind the damage, so a restarted journal
    leaves old segments read-only for replay and compaction.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        flush: FlushPolicy | None = None,
        segment_max_records: int = 1024,
        metrics=None,
        clock: Callable[[], float] = time.monotonic,
        failpoint: Callable[[int, str], tuple[str, int]] | None = None,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError(
                f"segment_max_records must be positive, "
                f"got {segment_max_records}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.flush_policy = flush if flush is not None else FlushPolicy()
        self.segment_max_records = segment_max_records
        self.metrics = metrics
        self._clock = clock
        #: Crash-simulation hook: ``failpoint(append_index, line)``
        #: returns ``("ok", 0)`` to proceed, ``("crash", 0)`` to die
        #: before writing, or ``("torn", keep_bytes)`` to write a
        #: durable prefix of the line and then die.
        self.failpoint = failpoint
        self.crashed = False

        self._lock = threading.RLock()
        self._handle = None
        self._active_index: int | None = None
        self._active_records = 0
        #: Segments present when this journal was opened — the replay
        #: set, and exactly what :meth:`compact` may delete.
        self.stale_segments: list[Path] = self.segments()

        self.appended_records = 0
        self.fsync_count = 0
        self._pending_records = 0
        self._last_fsync_at = self._clock()
        self.rotations = 0
        self.append_failures = 0
        self.closed = False

    # -- segment plumbing --------------------------------------------------

    def segments(self) -> list[Path]:
        """All segment files on disk, in replay order."""
        return sorted(self.directory.glob(SEGMENT_GLOB))

    def _segment_path(self, index: int) -> Path:
        return self.directory / SEGMENT_PATTERN.format(index=index)

    def _next_index(self) -> int:
        highest = 0
        for path in self.segments():
            try:
                highest = max(highest, int(path.stem.split("-", 1)[1]))
            except (IndexError, ValueError):  # pragma: no cover - foreign file
                continue
        return highest + 1

    def _ensure_open_locked(self) -> None:
        if self.crashed:
            raise JournalCrashed("journal crashed (simulated kill)")
        if self.closed:
            raise JournalError("journal is closed")
        if self._handle is None:
            self._active_index = self._next_index()
            self._active_records = 0
            self._handle = open(  # noqa: SIM115 - held across appends
                self._segment_path(self._active_index),
                "a",
                encoding="utf-8",
            )

    def _rotate_locked(self) -> None:
        self._fsync_locked()
        self._handle.close()
        self._handle = None
        self.rotations += 1
        self._ensure_open_locked()

    # -- appending ---------------------------------------------------------

    def append(self, record: dict, *, durable: bool | None = None) -> None:
        """Append one record; raises :class:`JournalError` on failure.

        ``durable=True`` forces an fsync before returning (the
        ``submitted`` ack path under ``fsync_on_ack``); ``durable=False``
        lets the record ride the batching policy; ``None`` picks based
        on the record type.
        """
        if durable is None:
            durable = (
                record.get("type") == "submitted"
                and self.flush_policy.fsync_on_ack
            )
        line = journal_record_to_line(record)
        line = corrupt_text(
            "journal.append", line, type=record.get("type", "")
        )
        with self._lock:
            self._ensure_open_locked()
            fault_point(
                "journal.append",
                type=record.get("type", ""),
                job_id=record.get("job_id", ""),
            )
            if self.failpoint is not None:
                action, keep = self.failpoint(self.appended_records, line)
                if action != "ok":
                    self.crashed = True
                    if action == "torn" and keep > 0:
                        # The torn prefix reaches the disk — the worst
                        # case a real kill -9 can leave behind.
                        self._handle.write(line[:keep])
                        self._handle.flush()
                        os.fsync(self._handle.fileno())
                    raise JournalCrashed(
                        f"simulated crash at append #{self.appended_records}"
                        f" ({action})"
                    )
            try:
                self._handle.write(line)
                self._handle.flush()
            except OSError as exc:
                self.append_failures += 1
                raise JournalError(f"journal append failed: {exc}") from exc
            self.appended_records += 1
            self._active_records += 1
            self._pending_records += 1
            if self.metrics is not None:
                self.metrics.increment("journal_appends")
            if durable or self._batch_due_locked():
                self._fsync_locked()
            if self._active_records >= self.segment_max_records:
                self._rotate_locked()

    def _batch_due_locked(self) -> bool:
        policy = self.flush_policy
        if (
            policy.fsync_every_records
            and self._pending_records >= policy.fsync_every_records
        ):
            return True
        return bool(
            policy.fsync_every_seconds is not None
            and self._clock() - self._last_fsync_at
            >= policy.fsync_every_seconds
        )

    def _fsync_locked(self) -> None:
        if self._handle is None or self._pending_records == 0:
            self._last_fsync_at = self._clock()
            return
        fault_point("journal.fsync", segment=self._active_index)
        try:
            os.fsync(self._handle.fileno())
        except OSError as exc:
            raise JournalError(f"journal fsync failed: {exc}") from exc
        self.fsync_count += 1
        self._pending_records = 0
        self._last_fsync_at = self._clock()
        if self.metrics is not None:
            self.metrics.increment("journal_fsyncs")

    def flush(self) -> None:
        """Force pending records to disk (drain, shutdown, checkpoints)."""
        with self._lock:
            if self.crashed:
                raise JournalCrashed("journal crashed (simulated kill)")
            self._fsync_locked()

    # -- replay + compaction ----------------------------------------------

    def replay(self) -> tuple[list[dict], dict]:
        """All decodable records across segments, oldest first.

        Returns ``(records, stats)`` where stats counts segments read
        and torn lines skipped.  Each segment is decoded with WAL
        truncation semantics (:func:`decode_journal_text`): a torn tail
        costs only the tail of its own segment — records in later
        segments (written after a restart) remain visible.
        """
        fault_point("journal.replay", directory=str(self.directory))
        records: list[dict] = []
        torn = 0
        segments = self.segments()
        for path in segments:
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:  # pragma: no cover - concurrent removal
                continue
            decoded, segment_torn = decode_journal_text(text)
            records.extend(decoded)
            torn += segment_torn
        if self.metrics is not None and torn:
            self.metrics.increment("journal_torn_records", torn)
        return records, {
            "segments": len(segments),
            "records": len(records),
            "torn_records": torn,
        }

    def compact(self) -> int:
        """Delete the segments that predate this journal instance.

        Recovery calls this **after** re-stating every live job into the
        fresh active segment, so the deleted segments contain only
        settled history (or re-stated copies).  Returns the number of
        segment files removed.
        """
        removed = 0
        with self._lock:
            for path in self.stale_segments:
                if (
                    self._active_index is not None
                    and path == self._segment_path(self._active_index)
                ):  # pragma: no cover - stale never contains active
                    continue
                try:
                    path.unlink()
                    removed += 1
                except OSError:  # pragma: no cover - concurrent cleanup
                    continue
            self.stale_segments = []
        if self.metrics is not None and removed:
            self.metrics.increment("journal_segments_compacted", removed)
        return removed

    # -- lifecycle + stats -------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self.closed:
                return
            if self._handle is not None and not self.crashed:
                try:
                    self._fsync_locked()
                except JournalError:  # pragma: no cover - dying disk
                    pass
                self._handle.close()
                self._handle = None
            self.closed = True

    def stats(self) -> dict:
        """The ``/healthz`` view: volume, lag, and segment shape."""
        with self._lock:
            return {
                "directory": str(self.directory),
                "segments": len(self.segments()),
                "active_segment": self._active_index,
                "active_segment_records": self._active_records,
                "appended_records": self.appended_records,
                "fsync_count": self.fsync_count,
                #: Records appended but not yet fsynced — the journal
                #: lag a crash right now would lose (advisory records
                #: only; acks are always behind an fsync).
                "lag_records": self._pending_records,
                "append_failures": self.append_failures,
                "crashed": self.crashed,
            }

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"JobJournal({str(self.directory)!r}, "
            f"{self.appended_records} record(s), "
            f"{len(self.segments())} segment(s))"
        )
