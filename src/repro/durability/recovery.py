"""Crash recovery: replay the job journal against the report store.

On startup a journal-backed :class:`~repro.service.JobScheduler` hands
its journal to a :class:`RecoveryManager`, which

1. **replays** every decodable record (torn tails are counted and
   skipped, WAL-style) into per-job state — last record wins, with a
   ``submitted`` re-statement resetting an earlier ``dispatched`` flag,
2. **settles from the store** any job that never journalled a terminal
   record but whose result document is already spooled (the crash hit
   between the store write and the ``settled`` append),
3. **re-enqueues** every other unsettled job — rebuilding assess/
   estimate payloads from the recorded scenario reference + seed, and
   callable payloads through the scheduler's payload resolver; jobs
   that were ``dispatched`` when the process died are marked
   *interrupted* and re-executed idempotently (results are
   content-addressed, so a duplicate execution converges on the same
   store entry),
4. **re-detects lost results**: a ``settled done`` record whose store
   entry has vanished (evicted, quarantined, deleted) is re-enqueued
   when its submission record still allows a rebuild,
5. **checkpoints and compacts**: live jobs are re-stated into the fresh
   active segment, a bounded window of settled jobs is re-stated so the
   idempotency-key dedup window survives the restart, and every
   pre-restart segment is deleted.

The manager also works **offline** — ``efes recover --dry-run`` calls
:meth:`inspect` (no writes at all) and ``efes recover`` calls
:meth:`compact_offline` to checkpoint + compact a journal without
starting a service.
"""

from __future__ import annotations

import dataclasses

from .journal import JobJournal, settled_record


@dataclasses.dataclass
class ReplayedJob:
    """The journal's net knowledge about one job after replay."""

    job_id: str
    submitted: dict | None = None
    dispatched: bool = False
    settled: dict | None = None

    @property
    def is_settled(self) -> bool:
        return self.settled is not None

    @property
    def store_key(self) -> str | None:
        for record in (self.settled, self.submitted):
            if record is not None and record.get("store_key"):
                return record["store_key"]
        return None

    @property
    def idempotency_key(self) -> str | None:
        for record in (self.settled, self.submitted):
            if record is not None and record.get("idempotency_key"):
                return record["idempotency_key"]
        return None

    def field(self, name: str, default=None):
        for record in (self.settled, self.submitted):
            if record is not None and record.get(name) is not None:
                return record[name]
        return default


@dataclasses.dataclass
class JournalReplay:
    """Replay output: ordered per-job state + damage statistics."""

    jobs: dict[str, ReplayedJob]
    records: int = 0
    segments: int = 0
    torn_records: int = 0


class RecoveryManager:
    """Replays a :class:`JobJournal` and re-enacts its live jobs."""

    def __init__(
        self,
        journal: JobJournal,
        store=None,
        *,
        settled_window: int = 256,
    ) -> None:
        self.journal = journal
        self.store = store
        #: How many settled jobs are re-stated at compaction so the
        #: idempotency dedup window (and ``GET /jobs/<id>``) survive a
        #: restart.  Older settlements fall back to the content-addressed
        #: store, which still makes their re-execution free.
        self.settled_window = settled_window
        self.last_summary: dict | None = None

    # -- replay ------------------------------------------------------------

    def replay(self) -> JournalReplay:
        records, stats = self.journal.replay()
        jobs: dict[str, ReplayedJob] = {}
        for record in records:
            job_id = record.get("job_id")
            kind = record.get("type")
            if not job_id or kind not in (
                "submitted", "dispatched", "settled"
            ):
                continue
            state = jobs.get(job_id)
            if state is None:
                state = jobs[job_id] = ReplayedJob(job_id)
            if state.is_settled:
                continue  # terminal is terminal; ignore stragglers
            if kind == "submitted":
                state.submitted = record
                # A re-statement after recovery means "queued again".
                state.dispatched = False
            elif kind == "dispatched":
                state.dispatched = True
            else:
                state.settled = record
        return JournalReplay(
            jobs=jobs,
            records=stats["records"],
            segments=stats["segments"],
            torn_records=stats["torn_records"],
        )

    # -- planning ----------------------------------------------------------

    def plan(self, replay: JournalReplay) -> dict:
        """Sort replayed jobs into the actions recovery will take."""
        resubmit: list[ReplayedJob] = []
        complete_from_store: list[ReplayedJob] = []
        terminal: list[ReplayedJob] = []
        results_lost = 0
        for state in replay.jobs.values():
            if state.is_settled:
                if (
                    state.settled.get("state") == "done"
                    and state.store_key
                    and self.store is not None
                    and not self.store.contains(state.store_key)
                    and state.submitted is not None
                ):
                    # The journal promised a result the store no longer
                    # has — recover it by re-executing.
                    results_lost += 1
                    resubmit.append(state)
                else:
                    terminal.append(state)
                continue
            if state.submitted is None:
                continue  # dispatched/settled orphan: nothing to rebuild
            if (
                state.store_key
                and self.store is not None
                and self.store.contains(state.store_key)
            ):
                complete_from_store.append(state)
            else:
                resubmit.append(state)
        # Only the most recent settlements are re-stated at compaction.
        checkpoint = terminal[-self.settled_window:] if (
            self.settled_window > 0
        ) else []
        return {
            "resubmit": resubmit,
            "complete_from_store": complete_from_store,
            "terminal": terminal,
            "checkpoint": checkpoint,
            "results_lost": results_lost,
        }

    # -- enactment ---------------------------------------------------------

    def recover(self, scheduler) -> dict:
        """Full startup recovery against a live scheduler.

        Journal writes here propagate on failure: the re-statements and
        checkpoints must be durably in the fresh segment before
        :meth:`JobJournal.compact` deletes the segments they came from,
        so a failing journal aborts recovery with the old segments — and
        therefore every job — intact for the next attempt.
        """
        replay = self.replay()
        plan = self.plan(replay)
        completed = resubmitted = interrupted = unrecoverable = 0
        for state in plan["checkpoint"]:
            scheduler._register_replayed_terminal(state)
            self.journal.append(self._checkpoint_record(state), durable=False)
        for state in plan["complete_from_store"] + plan["resubmit"]:
            if not state.is_settled and scheduler._complete_replayed_from_store(
                state
            ):
                completed += 1
                continue
            if scheduler._resubmit_replayed(state):
                resubmitted += 1
                if state.dispatched:
                    interrupted += 1
            else:
                unrecoverable += 1
        self.journal.flush()
        compacted = self.journal.compact()
        summary = self._summary(
            replay,
            plan,
            interrupted=interrupted,
            unrecoverable=unrecoverable,
            compacted=compacted,
            completed=completed,
            resubmitted=resubmitted,
        )
        self.last_summary = summary
        return summary

    def inspect(self) -> dict:
        """Dry run: replay + plan, zero writes (``efes recover --dry-run``)."""
        replay = self.replay()
        plan = self.plan(replay)
        summary = self._summary(
            replay,
            plan,
            interrupted=sum(
                1 for state in plan["resubmit"] if state.dispatched
            ),
            unrecoverable=0,
            compacted=0,
            dry_run=True,
        )
        self.last_summary = summary
        return summary

    def compact_offline(self) -> dict:
        """Checkpoint + compact without a scheduler (``efes recover``).

        Live jobs are re-stated as ``submitted`` records (still marked
        recovered, still unsettled — the next ``efes serve`` will run
        them), the settled window is re-stated, and stale segments are
        deleted.
        """
        replay = self.replay()
        plan = self.plan(replay)
        for state in plan["checkpoint"]:
            self.journal.append(
                self._checkpoint_record(state), durable=False
            )
        for state in plan["resubmit"] + plan["complete_from_store"]:
            record = dict(state.submitted)
            record["recovered"] = True
            self.journal.append(record, durable=False)
        self.journal.flush()
        compacted = self.journal.compact()
        summary = self._summary(
            replay,
            plan,
            interrupted=sum(
                1 for state in plan["resubmit"] if state.dispatched
            ),
            unrecoverable=0,
            compacted=compacted,
        )
        self.last_summary = summary
        return summary

    @staticmethod
    def _checkpoint_record(state: ReplayedJob) -> dict:
        settled = state.settled or {}
        return settled_record(
            state.job_id,
            settled.get("state", "failed"),
            error=settled.get("error"),
            store_key=state.store_key,
            from_store=bool(settled.get("from_store")),
            idempotency_key=state.idempotency_key,
            kind=state.field("kind"),
            scenario=state.field("scenario"),
            checkpoint=True,
        )

    def _summary(
        self,
        replay: JournalReplay,
        plan: dict,
        *,
        interrupted: int,
        unrecoverable: int,
        compacted: int,
        completed: int | None = None,
        resubmitted: int | None = None,
        dry_run: bool = False,
    ) -> dict:
        return {
            "segments": replay.segments,
            "records": replay.records,
            "torn_records": replay.torn_records,
            "jobs_seen": len(replay.jobs),
            "settled": len(plan["terminal"]),
            "resubmitted": (
                resubmitted
                if resubmitted is not None
                else len(plan["resubmit"])
            ),
            "interrupted": interrupted,
            "completed_from_store": (
                completed
                if completed is not None
                else len(plan["complete_from_store"])
            ),
            "results_lost": plan["results_lost"],
            "unrecoverable": unrecoverable,
            "checkpointed": len(plan["checkpoint"]),
            "compacted_segments": compacted,
            "dry_run": dry_run,
        }
