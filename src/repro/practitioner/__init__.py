"""The integration practitioner simulator (ground-truth effort).

See DESIGN.md §1: the paper's measured ground truth (a human integrating
with SQL + pgAdmin, timed) is substituted by a simulator that *executes*
the integration on the actual instances and charges an independent human
cost model, so the estimation error of EFES and the counting baseline is
meaningful.
"""

from .cost_model import HumanCostModel, NoisyClock
from .simulator import (
    MAPPING,
    STRUCTURE,
    VALUES,
    ActionRecord,
    IntegrationResult,
    PractitionerSimulator,
)

__all__ = [
    "ActionRecord",
    "HumanCostModel",
    "IntegrationResult",
    "MAPPING",
    "NoisyClock",
    "PractitionerSimulator",
    "STRUCTURE",
    "VALUES",
]
