"""The integration practitioner simulator: ground-truth effort measurement.

The paper obtained ground truth by *actually integrating* the scenarios
with SQL scripts and pgAdmin, measuring the execution time of each task
(Section 6.1).  This simulator plays that practitioner: it executes the
integration — materialises the mapping queries, converts value
representations with the transformations a human would know how to
script, repairs structural conflicts on the real rows, resolves
references, generates keys, and validates the result — and charges every
action to a :class:`~repro.practitioner.cost_model.HumanCostModel` clock.

The resulting :class:`IntegrationResult` carries both the measured minutes
(broken down like Figures 6/7) and the integrated target database, which
is checked to satisfy all target constraints — the paper's definition of a
completed cleaning (Section 3.4).

Pipeline per (source, target table):

1. *mapping* — study the joined source relations, write the query,
   materialise one entity per base tuple (cells hold value *sets*; the
   intermediate result is deliberately not in 1NF, cf. Example 3.2);
2. *detached values* — source values no entity carries get enclosing
   tuples (high quality only);
3. *value cleaning* — convert/drop representations that do not match the
   target column (conversion scripts are written once per correspondence);
4. *structure cleaning* — collapse multi-valued cells, fill or reject
   missing mandatory values (every NOT NULL attribute, mapped or not);
5. *insert* — generate primary keys, resolve references via the key maps
   of previously integrated tables, skip dangling references;
6. *finalise* — validate the target and repair leftovers by deletion.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import Counter

from ..core.quality import ResultQuality
from ..core.modules.mapping import join_closure
from ..csg.convert import database_to_csg
from ..csg.paths import match_endpoints
from ..matching.correspondence import Correspondence, CorrespondenceSet
from ..profiling.patterns import extract_pattern, generalize_pattern
from ..relational.database import Database
from ..relational.datatypes import DataType, can_cast, cast
from ..relational.errors import TypeCastError
from ..relational.validation import validate
from ..scenarios.scenario import IntegrationScenario
from .cost_model import HumanCostModel, NoisyClock
from .sql_render import render_mapping_script

MAPPING = "Mapping"
STRUCTURE = "Cleaning (Structure)"
VALUES = "Cleaning (Values)"


@dataclasses.dataclass(frozen=True)
class ActionRecord:
    """One executed practitioner action with its (noisy) duration."""

    category: str
    action: str
    subject: str
    count: int
    minutes: float


@dataclasses.dataclass
class IntegrationResult:
    """The outcome of one simulated integration run."""

    scenario_name: str
    quality: ResultQuality
    actions: list[ActionRecord]
    target: Database
    rejected_rows: int = 0
    #: The mapping queries the practitioner "wrote", as real SQL
    #: (``(target table, script)`` pairs; see sql_render).
    scripts: list[tuple[str, str]] = dataclasses.field(default_factory=list)

    @property
    def total_minutes(self) -> float:
        return sum(action.minutes for action in self.actions)

    def breakdown(self) -> dict[str, float]:
        totals = {MAPPING: 0.0, STRUCTURE: 0.0, VALUES: 0.0}
        for action in self.actions:
            totals[action.category] = (
                totals.get(action.category, 0.0) + action.minutes
            )
        return totals

    def actions_of(self, action: str) -> list[ActionRecord]:
        return [record for record in self.actions if record.action == action]


class _Entity:
    """One future target tuple: per-attribute lists of candidate values.

    Before cleaning, integrated data is conceptually not in 1NF (an album
    may carry several artists, Example 3.2); entities make that state
    explicit, exactly like virtual CSG instances do.
    """

    __slots__ = ("source_key", "cells", "base")

    def __init__(self, source_key: object, base: str = "") -> None:
        self.source_key = source_key
        self.base = base
        self.cells: dict[str, list[object]] = {}

    def values(self, attribute: str) -> list[object]:
        return self.cells.get(attribute, [])

    def first(self, attribute: str) -> object:
        values = self.cells.get(attribute)
        return values[0] if values else None

    def set_single(self, attribute: str, value: object) -> None:
        self.cells[attribute] = [] if value is None else [value]


class PractitionerSimulator:
    """Executes integrations and measures the human effort they take."""

    def __init__(
        self,
        cost_model: HumanCostModel | None = None,
        seed: int = 42,
    ) -> None:
        self.cost_model = cost_model or HumanCostModel()
        self.seed = seed

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def integrate(
        self, scenario: IntegrationScenario, quality: ResultQuality
    ) -> IntegrationResult:
        # Python's str hash is salted per process; a stable digest keeps
        # measured efforts reproducible across runs and machines.
        digest = hashlib.md5(
            f"{self.seed}:{scenario.name}:{quality.value}".encode()
        ).digest()
        clock = NoisyClock(
            self.cost_model.noise_sigma,
            seed=int.from_bytes(digest[:4], "big"),
        )
        result = IntegrationResult(
            scenario.name, quality, [], scenario.target.copy()
        )
        transformations = getattr(scenario, "known_transformations", {})
        for source, correspondences in scenario.pairs():
            self._integrate_source(
                result, source, correspondences, quality, transformations, clock
            )
        self._finalize(result, clock)
        return result

    def _charge(
        self,
        result: IntegrationResult,
        clock: NoisyClock,
        category: str,
        action: str,
        subject: str,
        minutes: float,
        count: int = 1,
    ) -> None:
        result.actions.append(
            ActionRecord(category, action, subject, count, clock.charge(minutes))
        )

    # ------------------------------------------------------------------
    # Per-source integration
    # ------------------------------------------------------------------

    def _integrate_source(
        self,
        result: IntegrationResult,
        source: Database,
        correspondences: CorrespondenceSet,
        quality: ResultQuality,
        transformations: dict,
        clock: NoisyClock,
    ) -> None:
        source_graph, source_instance = database_to_csg(source)
        target_schema = result.target.schema
        populated = list(correspondences.target_relations())
        key_maps: dict[str, dict[object, object]] = {}

        for target_table in self._dependency_order(target_schema, populated):
            flat_correspondences = [
                c
                for attribute in correspondences.mapped_target_attributes(
                    target_table
                )
                for c in correspondences.sources_of_attribute(
                    target_table, attribute
                )
            ]
            fk_attributes = {
                attribute
                for fk in target_schema.foreign_keys_of(target_table)
                if fk.referenced in populated
                for attribute in fk.attributes
            }
            bases = correspondences.identity_sources_of_relation(target_table)
            self._charge_mapping(
                result, clock, source, correspondences, target_table,
                flat_correspondences, fk_attributes, bases,
            )
            copyable = [
                c
                for c in flat_correspondences
                if c.target_attribute not in fk_attributes
            ]
            if not copyable:
                continue  # pure link tables are wired inside other queries

            for base in bases:
                primary_key = source.schema.primary_key_of(base)
                group_key = (
                    primary_key.attributes[0]
                    if primary_key and len(primary_key.attributes) == 1
                    else None
                )
                script = render_mapping_script(
                    source.schema,
                    target_table,
                    [c.target_attribute for c in copyable],
                    base,
                    copyable,
                    group_key,
                )
                if script is not None:
                    result.scripts.append((target_table, script))

            entities, resolved = self._materialize(
                source, source_graph, source_instance, bases,
                flat_correspondences,
            )
            if not entities:
                continue
            if quality is ResultQuality.HIGH_QUALITY:
                self._create_detached_tuples(
                    result, clock, source_instance, target_table, entities,
                    [c for c in copyable if c in resolved],
                )
            self._clean_values(
                result, clock, result.target, target_table, entities,
                [c for c in copyable if c in resolved], transformations,
                quality,
            )
            self._clean_structure(
                result, clock, target_schema, target_table, entities,
                copyable, fk_attributes, quality,
            )
            self._insert(
                result, clock, target_table, entities, fk_attributes, key_maps,
            )

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------

    def _charge_mapping(
        self,
        result: IntegrationResult,
        clock: NoisyClock,
        source: Database,
        correspondences: CorrespondenceSet,
        target_table: str,
        flat_correspondences: list[Correspondence],
        fk_attributes: set[str],
        bases: tuple[str, ...],
    ) -> None:
        model = self.cost_model
        source_relations = {c.source_relation for c in flat_correspondences}
        source_relations.update(bases)
        resolution_relations: set[str] = set()
        lookups = 0
        for fk in result.target.schema.foreign_keys_of(target_table):
            if set(fk.attributes) & fk_attributes:
                lookups += 1
                resolution_relations.update(
                    correspondences.identity_sources_of_relation(fk.referenced)
                )
        closure = join_closure(
            source.schema, source_relations | resolution_relations
        )
        joins = sum(
            1
            for fk in source.schema.foreign_keys()
            if fk.relation in closure and fk.referenced in closure
        )
        copied = sum(
            1
            for c in flat_correspondences
            if c.target_attribute not in fk_attributes
        )
        primary_key = result.target.schema.primary_key_of(target_table)
        mapped_attributes = {c.target_attribute for c in flat_correspondences}
        needs_pk = primary_key is not None and any(
            attribute not in mapped_attributes
            for attribute in primary_key.attributes
        )
        minutes = (
            model.study_source_table * len(closure)
            + model.write_query_base * max(len(bases), 1)
            + model.per_join * joins
            + model.per_copied_attribute * copied
            + (model.generate_primary_key if needs_pk else 0.0)
            + model.resolve_reference * lookups
        )
        self._charge(
            result, clock, MAPPING, "write mapping query", target_table, minutes
        )

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def _materialize(
        self,
        source: Database,
        source_graph,
        source_instance,
        bases: tuple[str, ...],
        flat_correspondences: list[Correspondence],
    ) -> tuple[list[_Entity], list[Correspondence]]:
        """One entity per base tuple over all bases; returns the entities
        plus the correspondences that were reachable from some base."""
        entities: list[_Entity] = []
        resolved: list[Correspondence] = []
        for base in bases:
            base_table = source.table(base)
            base_entities = [
                _Entity(source_key=(base, index), base=base)
                for index in range(len(base_table))
            ]
            pk = source.schema.primary_key_of(base)
            if pk is not None and len(pk.attributes) == 1:
                for entity, key in zip(
                    base_entities, base_table.column(pk.attributes[0])
                ):
                    entity.source_key = key
            for correspondence in flat_correspondences:
                matched = match_endpoints(
                    source_graph, [base], [correspondence.source]
                )
                if matched is None:
                    continue
                if correspondence not in resolved:
                    resolved.append(correspondence)
                images = source_instance.image_sets(matched.path)
                for index, entity in enumerate(base_entities):
                    values = images.get((base, index), set())
                    if values:
                        entity.cells[correspondence.target_attribute] = sorted(
                            values,
                            key=lambda value: (str(type(value)), str(value)),
                        )
            entities.extend(base_entities)
        return entities, resolved

    # ------------------------------------------------------------------
    # Detached values (Example 3.7)
    # ------------------------------------------------------------------

    def _create_detached_tuples(
        self,
        result: IntegrationResult,
        clock: NoisyClock,
        source_instance,
        target_table: str,
        entities: list[_Entity],
        resolved: list[Correspondence],
    ) -> None:
        """Create enclosing tuples for source values no entity carries."""
        model = self.cost_model
        for correspondence in resolved:
            attribute = correspondence.target_attribute
            all_values = source_instance.elements(correspondence.source)
            reached: set[object] = set()
            for entity in entities:
                reached.update(entity.values(attribute))
            detached = sorted(
                (value for value in all_values if value not in reached), key=str
            )
            if not detached:
                continue
            self._charge(
                result, clock, STRUCTURE, "create tuples for detached values",
                f"{target_table}.{attribute}", model.create_tuple_statement,
                count=len(detached),
            )
            for offset, value in enumerate(detached):
                entity = _Entity(
                    source_key=("__detached__", attribute, offset),
                    base="__detached__",
                )
                entity.set_single(attribute, value)
                entities.append(entity)

    # ------------------------------------------------------------------
    # Value cleaning
    # ------------------------------------------------------------------

    def _clean_values(
        self,
        result: IntegrationResult,
        clock: NoisyClock,
        target: Database,
        target_table: str,
        entities: list[_Entity],
        resolved: list[Correspondence],
        transformations: dict,
        quality: ResultQuality,
    ) -> None:
        model = self.cost_model
        target_schema = target.schema
        for correspondence in resolved:
            attribute = correspondence.target_attribute
            datatype = target_schema.attribute(target_table, attribute).datatype
            values = [
                entity.first(attribute)
                for entity in entities
                if entity.values(attribute)
            ]
            if not values:
                continue
            uncastable = sum(
                1 for value in values if not can_cast(value, datatype)
            )
            pattern_conflict = self._pattern_conflict(
                target, target_table, attribute, datatype, values
            )
            if uncastable == 0 and not pattern_conflict:
                continue
            transformation = transformations.get(
                (correspondence.source, correspondence.target)
            )
            subject = f"{correspondence.source} -> {correspondence.target}"
            if quality is ResultQuality.HIGH_QUALITY:
                if transformation is not None:
                    self._charge(
                        result, clock, VALUES, "write conversion script",
                        subject, model.write_conversion_script,
                    )
                    self._charge(
                        result, clock, VALUES, "validate conversion",
                        subject, model.validate_conversion,
                    )
                    self._apply_transformation(
                        entities, attribute, transformation
                    )
                else:
                    distinct = {
                        str(entity.first(attribute))
                        for entity in entities
                        if entity.values(attribute)
                    }
                    self._charge(
                        result, clock, VALUES, "fix values manually",
                        subject, model.manual_value_fix * len(distinct),
                        count=len(distinct),
                    )
                    self._coerce(entities, attribute, datatype)
                remaining = [
                    entity
                    for entity in entities
                    if entity.values(attribute)
                    and not can_cast(entity.first(attribute), datatype)
                ]
                if remaining:
                    self._reject_uncastable(
                        result, clock, target_schema, target_table, attribute,
                        entities, remaining,
                    )
            elif uncastable:
                offending = [
                    entity
                    for entity in entities
                    if entity.values(attribute)
                    and not can_cast(entity.first(attribute), datatype)
                ]
                self._reject_uncastable(
                    result, clock, target_schema, target_table, attribute,
                    entities, offending,
                    charge_action="drop incompatible values",
                )
            # else: a pure format mismatch is simply ignored at low quality.

    def _pattern_conflict(
        self,
        target: Database,
        target_table: str,
        attribute: str,
        datatype: DataType,
        values: list[object],
    ) -> bool:
        """Eyeball-check the candidate values against existing target data."""
        target_values = [
            value
            for value in target.table(target_table).column(attribute)
            if value is not None
        ]
        if not target_values:
            return False
        if not datatype.is_textual:
            # Numeric check: an order-of-magnitude mean mismatch is visible.
            numeric = [
                float(cast(value, DataType.FLOAT))
                for value in values
                if can_cast(value, DataType.FLOAT)
            ]
            comparable = [
                float(cast(value, DataType.FLOAT))
                for value in target_values
                if can_cast(value, DataType.FLOAT)
            ]
            if not comparable or not numeric:
                return False
            target_mean = sum(comparable) / len(comparable)
            source_mean = sum(numeric) / len(numeric)
            if target_mean == 0 or source_mean == 0:
                return False
            ratio = source_mean / target_mean
            return ratio > 5 or ratio < 0.2

        def distribution(sample: list[object]) -> dict[str, float]:
            counts = Counter(
                generalize_pattern(extract_pattern(str(value)))
                for value in sample
            )
            total = sum(counts.values())
            if not total:
                return {}
            return {pattern: n / total for pattern, n in counts.items()}

        castable = [
            cast(value, datatype)
            for value in values
            if can_cast(value, datatype)
        ]
        source_distribution = distribution(castable)
        target_distribution = distribution(target_values)
        if not source_distribution or not target_distribution:
            return False
        overlap = sum(
            min(share, target_distribution.get(pattern, 0.0))
            for pattern, share in source_distribution.items()
        )
        return overlap < 0.75

    @staticmethod
    def _apply_transformation(entities, attribute: str, transformation) -> None:
        for entity in entities:
            values = entity.values(attribute)
            if not values:
                continue
            converted = []
            for value in values:
                try:
                    new_value = transformation(value)
                except Exception:
                    new_value = None
                if new_value is not None:
                    converted.append(new_value)
            entity.cells[attribute] = converted

    @staticmethod
    def _coerce(entities, attribute: str, datatype: DataType) -> None:
        for entity in entities:
            values = entity.values(attribute)
            if not values:
                continue
            coerced = []
            for value in values:
                try:
                    coerced.append(cast(value, datatype))
                except TypeCastError:
                    pass
            entity.cells[attribute] = coerced

    def _reject_uncastable(
        self,
        result: IntegrationResult,
        clock: NoisyClock,
        target_schema,
        target_table: str,
        attribute: str,
        entities: list[_Entity],
        offending: list[_Entity],
        charge_action: str = "reject unconvertible tuples",
    ) -> None:
        if not offending:
            return
        model = self.cost_model
        self._charge(
            result, clock, VALUES, charge_action,
            f"{target_table}.{attribute}", model.drop_values_statement,
            count=len(offending),
        )
        if target_schema.is_not_null(target_table, attribute):
            result.rejected_rows += len(offending)
            for entity in offending:
                entities.remove(entity)
        else:
            for entity in offending:
                entity.set_single(attribute, None)

    # ------------------------------------------------------------------
    # Structure cleaning
    # ------------------------------------------------------------------

    def _clean_structure(
        self,
        result: IntegrationResult,
        clock: NoisyClock,
        target_schema,
        target_table: str,
        entities: list[_Entity],
        copyable: list[Correspondence],
        fk_attributes: set[str],
        quality: ResultQuality,
    ) -> None:
        model = self.cost_model
        relation = target_schema.relation(target_table)

        # 1. Multiple values per single-valued attribute (Example 3.2).
        for correspondence in copyable:
            attribute = correspondence.target_attribute
            multi = [e for e in entities if len(e.values(attribute)) > 1]
            if not multi:
                continue
            if quality is ResultQuality.HIGH_QUALITY:
                self._charge(
                    result, clock, STRUCTURE, "merge values",
                    f"{target_table}.{attribute}", model.merge_value_group,
                    count=len(multi),
                )
                for entity in multi:
                    values = entity.values(attribute)
                    if all(isinstance(value, str) for value in values):
                        entity.set_single(attribute, ", ".join(values))
                    else:
                        entity.set_single(attribute, values[0])
            else:
                self._charge(
                    result, clock, STRUCTURE, "keep any value",
                    f"{target_table}.{attribute}", model.write_fix_statement,
                    count=len(multi),
                )
                for entity in multi:
                    entity.set_single(attribute, entity.values(attribute)[0])

        # 2. Missing values on every NOT NULL attribute (mapped or not).
        primary_key = target_schema.primary_key_of(target_table)
        pk_attributes = set(primary_key.attributes) if primary_key else set()
        for attribute_def in relation.attributes:
            attribute = attribute_def.name
            if attribute in pk_attributes or attribute in fk_attributes:
                continue  # generated / resolved at insert time
            if not target_schema.is_not_null(target_table, attribute):
                continue
            # Group the gap by base relation: a base that contributes *no*
            # data at all for this attribute gets a constant default in one
            # statement (the practitioner knows e.g. books have no venue);
            # partial gaps and new tuples for detached values need per-value
            # research (high quality) or tuple rejection (low effort).
            default_fill: list[_Entity] = []
            research: list[_Entity] = []
            bases_here = sorted({entity.base for entity in entities})
            for base in bases_here:
                group = [e for e in entities if e.base == base]
                missing = [e for e in group if not e.values(attribute)]
                if not missing:
                    continue
                if len(missing) == len(group) and base != "__detached__":
                    default_fill.extend(missing)
                else:
                    research.extend(missing)
            if default_fill:
                self._charge(
                    result, clock, STRUCTURE, "fill with default",
                    f"{target_table}.{attribute}", model.write_fix_statement,
                    count=len(default_fill),
                )
                for entity in default_fill:
                    entity.set_single(
                        attribute, self._placeholder(attribute_def.datatype, 0)
                    )
            if not research:
                continue
            if quality is ResultQuality.HIGH_QUALITY:
                self._charge(
                    result, clock, STRUCTURE, "add missing values",
                    f"{target_table}.{attribute}",
                    model.inspect_and_fill_value * len(research),
                    count=len(research),
                )
                for offset, entity in enumerate(research):
                    entity.set_single(
                        attribute,
                        self._placeholder(attribute_def.datatype, offset),
                    )
            else:
                self._charge(
                    result, clock, STRUCTURE, "reject tuples",
                    f"{target_table}.{attribute}", model.write_fix_statement,
                    count=len(research),
                )
                result.rejected_rows += len(research)
                for entity in research:
                    entities.remove(entity)

    @staticmethod
    def _placeholder(datatype: DataType, offset: int):
        """Pattern-neutral filler values (a human picks sensible defaults)."""
        if datatype.is_numeric:
            return 0
        if datatype is DataType.BOOLEAN:
            return False
        if datatype is DataType.DATE:
            return "1970-01-01"
        return "unknown" if offset == 0 else f"unknown{offset}"

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------

    def _insert(
        self,
        result: IntegrationResult,
        clock: NoisyClock,
        target_table: str,
        entities: list[_Entity],
        fk_attributes: set[str],
        key_maps: dict[str, dict[object, object]],
    ) -> None:
        target = result.target
        relation = target.relation(target_table)
        schema = target.schema
        primary_key = schema.primary_key_of(target_table)
        single_pk = (
            primary_key.attributes[0]
            if primary_key and len(primary_key.attributes) == 1
            else None
        )
        used_keys: set[object] = set()
        if single_pk is not None:
            used_keys.update(
                value
                for value in target.table(target_table).column(single_pk)
                if value is not None
            )
        next_id = 1 + max(
            (key for key in used_keys if isinstance(key, int)), default=0
        )
        key_map = key_maps.setdefault(target_table, {})
        fk_lookup: dict[str, dict[object, object]] = {}
        for fk in schema.foreign_keys_of(target_table):
            if set(fk.attributes) & fk_attributes and len(fk.attributes) == 1:
                fk_lookup[fk.attributes[0]] = key_maps.get(fk.referenced, {})

        dangling = 0
        for entity in entities:
            row: dict[str, object] = {}
            ok = True
            for attribute in relation.attribute_names:
                if attribute in fk_lookup:
                    resolved = fk_lookup[attribute].get(entity.first(attribute))
                    if resolved is None:
                        ok = False
                        break
                    row[attribute] = resolved
                else:
                    value = entity.first(attribute)
                    datatype = relation.attribute(attribute).datatype
                    row[attribute] = (
                        cast(value, datatype)
                        if value is not None and can_cast(value, datatype)
                        else None
                    )
            if not ok:
                dangling += 1
                continue
            if single_pk is not None:
                key = row.get(single_pk)
                if key is None or key in used_keys:
                    while next_id in used_keys:
                        next_id += 1
                    key = cast(next_id, relation.attribute(single_pk).datatype)
                    row[single_pk] = key
                    next_id += 1
                used_keys.add(key)
                key_map[entity.source_key] = key
            target.insert(target_table, row)

        if dangling:
            self._charge(
                result, clock, STRUCTURE, "skip dangling references",
                target_table, self.cost_model.write_fix_statement,
                count=dangling,
            )
            result.rejected_rows += dangling

    # ------------------------------------------------------------------
    # Finalisation
    # ------------------------------------------------------------------

    def _finalize(self, result: IntegrationResult, clock: NoisyClock) -> None:
        """Validate the integrated target; deduplicate / prune leftovers."""
        model = self.cost_model
        for relation in result.target.schema.relations:
            if len(result.target.table(relation.name)):
                self._charge(
                    result, clock, MAPPING, "validate result", relation.name,
                    model.final_validation,
                )
        for _ in range(5):
            violations = validate(result.target)
            if not violations:
                return
            for violation in violations:
                self._repair_violation(result, clock, violation)
        remaining = validate(result.target)
        if remaining:  # pragma: no cover - defensive
            raise RuntimeError(
                f"practitioner could not reach a valid target: {remaining[:3]}"
            )

    def _repair_violation(self, result, clock, violation) -> None:
        """Brute-force repair of a leftover violation by deletion."""
        from ..relational.constraints import (
            ForeignKey,
            FunctionalDependencyConstraint,
            NotNull,
            PrimaryKey,
            Unique,
        )

        model = self.cost_model
        constraint = violation.constraint
        table = result.target.table(constraint.relation)
        if isinstance(constraint, FunctionalDependencyConstraint):
            chosen: dict[object, object] = {}

            def breaks_fd(row: dict) -> bool:
                determinant = row[constraint.determinant]
                if determinant is None:
                    return False
                dependent = row[constraint.dependent]
                if determinant not in chosen:
                    chosen[determinant] = dependent
                    return False
                return chosen[determinant] != dependent

            deleted = table.delete_where(breaks_fd)
            if deleted:
                result.rejected_rows += deleted
                self._charge(
                    result, clock, STRUCTURE, "resolve fd conflicts",
                    constraint.relation, model.write_fix_statement,
                    count=deleted,
                )
            return
        if isinstance(constraint, NotNull):
            deleted = table.delete_where(
                lambda row: row[constraint.attribute] is None
            )
            action = "delete null tuples"
        elif isinstance(constraint, (PrimaryKey, Unique)):
            seen: set[tuple] = set()

            def is_duplicate(row: dict) -> bool:
                key = tuple(row[a] for a in constraint.attributes)
                if any(part is None for part in key):
                    return isinstance(constraint, PrimaryKey)
                if key in seen:
                    return True
                seen.add(key)
                return False

            deleted = table.delete_where(is_duplicate)
            action = "deduplicate tuples"
        elif isinstance(constraint, ForeignKey):
            referenced = result.target.table(constraint.referenced)
            indices = [
                referenced.relation.index_of(a)
                for a in constraint.referenced_attributes
            ]
            valid_keys = {tuple(row[i] for i in indices) for row in referenced}
            if result.quality is ResultQuality.HIGH_QUALITY:
                # Table 4: FK violated, high quality → add referenced values.
                missing: set[tuple] = set()
                for row in table.dicts():
                    key = tuple(row[a] for a in constraint.attributes)
                    if any(part is None for part in key):
                        continue
                    if key not in valid_keys:
                        missing.add(key)
                if missing:
                    schema = result.target.schema
                    for offset, key in enumerate(sorted(missing, key=str)):
                        skeleton: dict[str, object] = {}
                        for attribute, value in zip(
                            constraint.referenced_attributes, key
                        ):
                            skeleton[attribute] = value
                        for attr_def in referenced.relation.attributes:
                            if attr_def.name in skeleton:
                                continue
                            if schema.is_not_null(
                                constraint.referenced, attr_def.name
                            ):
                                skeleton[attr_def.name] = self._placeholder(
                                    attr_def.datatype, offset + 1
                                )
                        referenced.insert(skeleton)
                    self._charge(
                        result, clock, STRUCTURE, "add referenced values",
                        constraint.referenced,
                        model.create_tuple_statement
                        + model.inspect_and_fill_value * len(missing),
                        count=len(missing),
                    )
                return
            def is_dangling(row: dict) -> bool:
                key = tuple(row[a] for a in constraint.attributes)
                if any(part is None for part in key):
                    return False
                return key not in valid_keys

            deleted = table.delete_where(is_dangling)
            action = "delete dangling tuples"
        else:  # pragma: no cover - no other constraint kinds exist
            return
        if deleted:
            result.rejected_rows += deleted
            self._charge(
                result, clock, STRUCTURE, action, constraint.relation,
                model.write_fix_statement, count=deleted,
            )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _dependency_order(target_schema, populated: list[str]) -> list[str]:
        """Referenced target tables before referencing ones (stable)."""
        remaining = list(populated)
        ordered: list[str] = []
        while remaining:
            progressed = False
            for table in list(remaining):
                depends_on = {
                    fk.referenced
                    for fk in target_schema.foreign_keys_of(table)
                    if fk.referenced in remaining and fk.referenced != table
                }
                if not depends_on:
                    ordered.append(table)
                    remaining.remove(table)
                    progressed = True
            if not progressed:  # FK cycle: fall back to declaration order
                ordered.extend(remaining)
                break
        return ordered
