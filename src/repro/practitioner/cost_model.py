"""The human cost model of the (simulated) integration practitioner.

The paper measured ground truth as the wall-clock time of a human
performing the integration with hand-written SQL and a basic admin tool
(Section 6.1).  This module prices the simulator's *executed* actions with
a cost model that is deliberately **independent of the EFES execution
settings** (Table 9): different constants, different functional shapes
(e.g. mapping time grows with joins rather than tables, value fixes pay an
inspection overhead), plus seeded log-normal noise — so estimation error
against the simulated ground truth is meaningful rather than circular.
"""

from __future__ import annotations

import dataclasses
import math
import random


@dataclasses.dataclass(frozen=True)
class HumanCostModel:
    """Minutes charged per simulated practitioner action.

    All constants are exposed so experiments can model faster/slower
    practitioners or better tooling (the paper's execution-settings
    factors: expertise, familiarity, tool automation).
    """

    # -- mapping -----------------------------------------------------------
    study_source_table: float = 2.2       # read + understand one relation
    write_query_base: float = 4.5         # skeleton INSERT ... SELECT
    per_join: float = 2.8                 # each join condition
    per_copied_attribute: float = 0.9     # each SELECT list entry
    generate_primary_key: float = 3.5     # sequence/ROW_NUMBER plumbing
    resolve_reference: float = 3.0        # re-join to look up new ids

    # -- structure cleaning -------------------------------------------------
    write_fix_statement: float = 4.0      # one corrective SQL statement
    inspect_and_fill_value: float = 1.6   # research one missing value
    merge_value_group: float = 9.0        # design + validate a merge rule
    create_tuple_statement: float = 4.0   # INSERT for detached values
    dedup_statement: float = 5.5          # aggregate/duplicate elimination

    # -- value cleaning -------------------------------------------------------
    write_conversion_script: float = 8.0  # the transformation expression
    validate_conversion: float = 5.0      # spot-check converted output
    manual_value_fix: float = 1.8         # per value when no script exists
    drop_values_statement: float = 4.0

    # -- overheads -----------------------------------------------------------
    final_validation: float = 3.0         # per populated target table
    noise_sigma: float = 0.12             # log-normal noise on every action


class NoisyClock:
    """Accumulates charged minutes with seeded log-normal noise.

    One clock per integration run; the seed makes measured efforts
    reproducible while still decorrelating them from the estimates.
    """

    def __init__(self, sigma: float, seed: int) -> None:
        self.sigma = sigma
        self.random = random.Random(seed)

    def charge(self, minutes: float) -> float:
        """The noisy duration of an action priced at ``minutes``."""
        if minutes <= 0:
            return 0.0
        if self.sigma <= 0:
            return minutes
        factor = math.exp(self.random.gauss(0.0, self.sigma))
        return minutes * factor
