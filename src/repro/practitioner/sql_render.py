"""Render the practitioner's mapping queries as actual SQL.

The simulated practitioner "writes SQL" (Section 6.1); this module renders
those queries for real, from the same information the cost model prices:
the FK join closure connecting the base relation to every correspondence's
source relation.  The generated SELECT runs on the embedded SQL engine
(one row per base tuple, multi-valued attributes collapsed with
GROUP_CONCAT), and the full INSERT … SELECT script is what a human would
have typed into pgAdmin.
"""

from __future__ import annotations

from collections import deque

from ..matching.correspondence import Correspondence
from ..relational.schema import Schema


def _fk_edges(schema: Schema) -> dict[str, list[tuple[str, str, str]]]:
    """relation → [(neighbour, local attr, neighbour attr)] over unary FKs."""
    edges: dict[str, list[tuple[str, str, str]]] = {
        relation.name: [] for relation in schema.relations
    }
    for fk in schema.foreign_keys():
        if len(fk.attributes) != 1:
            continue
        edges[fk.relation].append(
            (fk.referenced, fk.attributes[0], fk.referenced_attributes[0])
        )
        edges[fk.referenced].append(
            (fk.relation, fk.referenced_attributes[0], fk.attributes[0])
        )
    return edges


def _join_tree(
    schema: Schema, base: str, targets: set[str]
) -> list[tuple[str, str, str, str]] | None:
    """Join steps [(existing rel, new rel, existing attr, new attr)] that
    connect ``base`` to every relation in ``targets`` via FK edges."""
    edges = _fk_edges(schema)
    joined = {base}
    steps: list[tuple[str, str, str, str]] = []
    pending = set(targets) - joined
    # Breadth-first growth of the joined set until all targets are in.
    while pending:
        frontier = deque(sorted(joined))
        parent: dict[str, tuple[str, str, str]] = {}
        visited = set(joined)
        found = None
        while frontier:
            current = frontier.popleft()
            for neighbour, local, remote in sorted(edges.get(current, ())):
                if neighbour in visited:
                    continue
                visited.add(neighbour)
                parent[neighbour] = (current, local, remote)
                if neighbour in pending:
                    found = neighbour
                    frontier.clear()
                    break
                frontier.append(neighbour)
        if found is None:
            return None  # disconnected: cannot render a single query
        # Unwind the path from the found target back into the joined set.
        chain: list[tuple[str, str, str, str]] = []
        node = found
        while node not in joined:
            origin, local, remote = parent[node]
            chain.append((origin, node, local, remote))
            node = origin
        for origin, new, local, remote in reversed(chain):
            steps.append((origin, new, local, remote))
            joined.add(new)
        pending -= joined
    return steps


def render_mapping_select(
    schema: Schema,
    base: str,
    correspondences: list[Correspondence],
    group_by_key: str | None,
) -> str | None:
    """The SELECT half of the mapping query for one base relation.

    ``group_by_key`` is the base relation's key attribute; when any
    correspondence reaches beyond the base relation the query groups by
    it and collapses multi-valued attributes with GROUP_CONCAT.  Returns
    None when the needed relations are not FK-connected.
    """
    relevant = [
        c
        for c in correspondences
        if schema.has_relation(c.source_relation)
    ]
    if not relevant:
        return None
    targets = {c.source_relation for c in relevant}
    steps = _join_tree(schema, base, targets - {base})
    if steps is None:
        return None

    needs_grouping = group_by_key is not None and any(
        c.source_relation != base for c in relevant
    )
    select_parts = []
    for c in relevant:
        column = f"{c.source_relation}.{c.source_attribute}"
        if needs_grouping and c.source_relation != base:
            column = f"GROUP_CONCAT(DISTINCT {column})"
        select_parts.append(f"{column} AS {c.target_attribute}")
    lines = [f"SELECT {', '.join(select_parts)}", f"FROM {base}"]
    for origin, new, local, remote in steps:
        lines.append(f"JOIN {new} ON {origin}.{local} = {new}.{remote}")
    if needs_grouping:
        lines.append(f"GROUP BY {base}.{group_by_key}")
    return "\n".join(lines)


def render_mapping_script(
    schema: Schema,
    target_table: str,
    target_attributes: list[str],
    base: str,
    correspondences: list[Correspondence],
    group_by_key: str | None,
) -> str | None:
    """The full INSERT … SELECT statement for one mapping connection."""
    select = render_mapping_select(schema, base, correspondences, group_by_key)
    if select is None:
        return None
    columns = ", ".join(target_attributes)
    return f"INSERT INTO {target_table} ({columns})\n{select};"
