"""Future-work extensions of the paper (Section 7), implemented.

* :mod:`~repro.extensions.correspondences` — effort estimation for
  correspondence creation via Melnik et al.'s match-accuracy measure,
* :mod:`~repro.extensions.cost_benefit` — cost-benefit curves and
  marginal-gain source ranking à la Dong et al. [9].
"""

from .correspondences import CorrespondenceModule, CorrespondenceReport
from .cost_benefit import (
    CostBenefitPoint,
    MarginalGain,
    cost_benefit_curve,
    marginal_gains,
    predicted_loss,
)

__all__ = [
    "CorrespondenceModule",
    "CorrespondenceReport",
    "CostBenefitPoint",
    "MarginalGain",
    "cost_benefit_curve",
    "marginal_gains",
    "predicted_loss",
]
