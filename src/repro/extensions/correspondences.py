"""Correspondence-creation effort — the paper's first technical future-work
item (Section 7).

"A rather technical challenge in our system is to drop the assumption
that correspondences among schemas are given. [...] The accuracy measure
as proposed [by] Melnik et al. [19] seems to be a good starting point to
tackle this issue."

This module implements exactly that: an estimation module whose detector
runs a schema matcher and measures, via the match-accuracy formula, how
far the proposal is from the scenario's (intended) correspondences; the
planner prices the additions and deletions the user must perform.
"""

from __future__ import annotations

import dataclasses

from ..core.framework import EstimationModule
from ..core.quality import ResultQuality
from ..core.reports import ComplexityReport
from ..core.tasks import Task, TaskType
from ..matching.correspondence import Correspondence
from ..matching.matcher import CompositeMatcher
from ..matching.similarity_flooding import match_accuracy
from ..scenarios.scenario import IntegrationScenario


@dataclasses.dataclass
class CorrespondenceReport(ComplexityReport):
    """How well a matcher's proposal fits the intended correspondences."""

    module: str = "correspondences"
    accuracy: float = 1.0
    additions: int = 0
    deletions: int = 0
    proposed: int = 0
    intended: int = 0

    def is_empty(self) -> bool:
        return self.additions == 0 and self.deletions == 0


class CorrespondenceModule(EstimationModule):
    """Estimate the effort of creating/fixing the correspondences.

    ``minutes_per_fix`` prices one addition or deletion of an attribute
    match (the unit of Melnik et al.'s effort measure); ``matcher`` is
    any object with a ``match(source_db, target_db)`` method.
    """

    name = "correspondences"

    def __init__(self, matcher=None, minutes_per_fix: float = 1.5) -> None:
        self.matcher = matcher or CompositeMatcher(threshold=0.55)
        self.minutes_per_fix = minutes_per_fix

    def assess(self, scenario: IntegrationScenario) -> CorrespondenceReport:
        additions = 0
        deletions = 0
        proposed_total = 0
        intended_total = 0
        accuracies: list[float] = []
        for source, correspondences in scenario.pairs():
            intended = list(correspondences.attribute_correspondences())
            proposed = [
                c
                for c in self.matcher.match(source, scenario.target)
                if c.is_attribute_level
            ]
            proposed_keys = {_key(c) for c in proposed}
            intended_keys = {_key(c) for c in intended}
            additions += len(intended_keys - proposed_keys)
            deletions += len(proposed_keys - intended_keys)
            proposed_total += len(proposed)
            intended_total += len(intended)
            accuracies.append(match_accuracy(proposed, intended))
        accuracy = (
            sum(accuracies) / len(accuracies) if accuracies else 1.0
        )
        return CorrespondenceReport(
            accuracy=accuracy,
            additions=additions,
            deletions=deletions,
            proposed=proposed_total,
            intended=intended_total,
        )

    def plan(
        self,
        scenario: IntegrationScenario,
        report: CorrespondenceReport,
        quality: ResultQuality,
    ) -> list[Task]:
        fixes = report.additions + report.deletions
        if not fixes:
            return []
        # Reviewing and fixing a proposed matching is mapping work; the
        # standard Write-mapping task type keeps it in the right Figure
        # 6/7 category, parameterised so a per-fix effort function can
        # price it (`attributes` carries the fix count).
        return [
            Task(
                type=TaskType.WRITE_MAPPING,
                quality=quality,
                subject="fix proposed correspondences",
                parameters={
                    "tables": 0.0,
                    "primary_keys": 0.0,
                    "foreign_keys": 0.0,
                    "attributes": fixes * self.minutes_per_fix,
                },
                module=self.name,
            )
        ]


def _key(c: Correspondence) -> tuple:
    return (
        c.source_relation,
        c.source_attribute,
        c.target_relation,
        c.target_attribute,
    )
