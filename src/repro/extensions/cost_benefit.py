"""Cost-benefit analysis — the paper's first future-work direction (§7).

"One possible general direction is to integrate EFES with approaches that
measure the benefit of the integration, such as the marginal gain [9].
This integration would allow to plot cost-benefit graphs for the
integration: the more effort, the better the quality of the result."

Two pieces are provided:

* :func:`cost_benefit_curve` — for one scenario, the (effort, benefit)
  point of each result-quality level, where *benefit* is the predicted
  fraction of source information that survives the integration (low
  effort discards violating tuples and incompatible values; high quality
  keeps them).  Benefits are derived purely from the phase-1 complexity
  reports — no integration is executed.
* :func:`marginal_gains` — greedy source selection à la Dong et al. [9]:
  order candidate sources by benefit-per-minute against a shared target.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from ..core import ResultQuality
from ..core.framework import Efes
from ..core.reports import (
    StructureComplexityReport,
    ValueComplexityReport,
)
from ..core.tasks import StructuralConflict, ValueHeterogeneity
from ..scenarios.scenario import IntegrationScenario

#: Conflict classes whose low-effort repair discards source tuples.
_TUPLE_DISCARDING = {
    StructuralConflict.NOT_NULL_VIOLATED,
    StructuralConflict.FK_VIOLATED,
}
#: Conflict classes whose low-effort repair discards detached values.
_VALUE_DISCARDING = {
    StructuralConflict.VALUE_WITHOUT_ENCLOSING_TUPLE,
}


@dataclasses.dataclass(frozen=True)
class CostBenefitPoint:
    """One point of a scenario's cost-benefit curve."""

    scenario_name: str
    quality: ResultQuality
    effort_minutes: float
    benefit: float  # predicted surviving fraction of source information

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.scenario_name} ({self.quality.label}): "
            f"{self.effort_minutes:.0f} min -> {self.benefit:.1%} retained"
        )


def predicted_loss(
    structure: StructureComplexityReport,
    values: ValueComplexityReport,
    total_source_rows: int,
    quality: ResultQuality,
) -> float:
    """The fraction of source information predicted to be discarded.

    High quality repairs instead of discarding, so its predicted loss is
    zero; low effort loses the violating tuples, the detached values and
    the critically incompatible values the reports enumerate.
    """
    if quality is ResultQuality.HIGH_QUALITY or total_source_rows <= 0:
        return 0.0
    lost = 0.0
    for violation in structure.violations:
        if violation.conflict in _TUPLE_DISCARDING | _VALUE_DISCARDING:
            lost += violation.violation_count
    for finding in values.findings:
        if finding.heterogeneity is (
            ValueHeterogeneity.DIFFERENT_REPRESENTATIONS_CRITICAL
        ):
            lost += finding.parameters.get("incompatible", 0.0)
    return min(1.0, lost / total_source_rows)


def cost_benefit_curve(
    efes: Efes, scenario: IntegrationScenario
) -> list[CostBenefitPoint]:
    """The scenario's cost-benefit curve over the quality levels.

    Reports are computed once; only planning and pricing differ per
    quality.  Points come out in increasing-effort order.
    """
    reports = efes.assess(scenario)
    total_rows = sum(source.total_rows() for source in scenario.sources)
    points = []
    for quality in (ResultQuality.LOW_EFFORT, ResultQuality.HIGH_QUALITY):
        tasks = efes.plan(scenario, quality, reports)
        from ..core.effort import price_tasks

        estimate = price_tasks(scenario.name, quality, tasks, efes.settings)
        benefit = 1.0 - predicted_loss(
            reports["structure"], reports["values"], total_rows, quality
        )
        points.append(
            CostBenefitPoint(
                scenario_name=scenario.name,
                quality=quality,
                effort_minutes=estimate.total_minutes,
                benefit=benefit,
            )
        )
    points.sort(key=lambda point: point.effort_minutes)
    return points


@dataclasses.dataclass(frozen=True)
class MarginalGain:
    """One step of greedy source selection."""

    scenario_name: str
    effort_minutes: float
    benefit: float
    gain_per_hour: float


def marginal_gains(
    efes: Efes,
    scenarios: Sequence[IntegrationScenario],
    quality: ResultQuality = ResultQuality.HIGH_QUALITY,
) -> list[MarginalGain]:
    """Rank candidate integrations by benefit per hour of estimated effort.

    Each scenario is one candidate source (against a common target); the
    result is the greedy "integrate the best-value source next" order of
    Dong et al.'s less-is-more principle [9].
    """
    ranked = []
    for scenario in scenarios:
        points = {
            point.quality: point for point in cost_benefit_curve(efes, scenario)
        }
        point = points[quality]
        effort_hours = max(point.effort_minutes / 60.0, 1e-9)
        ranked.append(
            MarginalGain(
                scenario_name=scenario.name,
                effort_minutes=point.effort_minutes,
                benefit=point.benefit,
                gain_per_hour=point.benefit / effort_hours,
            )
        )
    ranked.sort(key=lambda gain: -gain.gain_per_hour)
    return ranked
