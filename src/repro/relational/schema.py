"""Relational schemas: attributes, relations, and whole-schema catalogs.

A :class:`Schema` is the static half of a database — relation definitions
plus constraints.  The dynamic half (tuples) lives in
:mod:`repro.relational.instance`; both halves are combined by
:class:`repro.relational.database.Database`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Iterable, Iterator, Sequence

from .constraints import (
    Constraint,
    ForeignKey,
    FunctionalDependencyConstraint,
    NotNull,
    PrimaryKey,
    Unique,
)
from .datatypes import DataType
from .errors import (
    ConstraintError,
    SchemaError,
    UnknownAttributeError,
    UnknownRelationError,
)


@dataclasses.dataclass(frozen=True)
class Attribute:
    """A typed column of a relation."""

    name: str
    datatype: DataType = DataType.STRING

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute names must be non-empty")


class Relation:
    """An ordered collection of uniquely named attributes."""

    def __init__(self, name: str, attributes: Sequence[Attribute]) -> None:
        if not name:
            raise SchemaError("relation names must be non-empty")
        names = [attribute.name for attribute in attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in relation {name!r}")
        self.name = name
        self._attributes: tuple[Attribute, ...] = tuple(attributes)
        self._by_name = {attribute.name: attribute for attribute in attributes}

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def attribute_names(self) -> tuple[str, ...]:
        return tuple(attribute.name for attribute in self._attributes)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownAttributeError(self.name, name) from None

    def has_attribute(self, name: str) -> bool:
        return name in self._by_name

    def index_of(self, name: str) -> int:
        """The positional index of attribute ``name`` within the relation."""
        for index, attribute in enumerate(self._attributes):
            if attribute.name == name:
                return index
        raise UnknownAttributeError(self.name, name)

    def arity(self) -> int:
        return len(self._attributes)

    def __repr__(self) -> str:
        attrs = ", ".join(
            f"{a.name}:{a.datatype.value}" for a in self._attributes
        )
        return f"Relation({self.name!r}, [{attrs}])"


class Schema:
    """A named set of relations plus the constraints that hold on them."""

    def __init__(
        self,
        name: str,
        relations: Sequence[Relation] = (),
        constraints: Iterable[Constraint] = (),
    ) -> None:
        if not name:
            raise SchemaError("schema names must be non-empty")
        self.name = name
        self._relations: dict[str, Relation] = {}
        self._constraints: list[Constraint] = []
        for relation in relations:
            self.add_relation(relation)
        for constraint in constraints:
            self.add_constraint(constraint)

    # ------------------------------------------------------------------
    # Relations
    # ------------------------------------------------------------------

    @property
    def relations(self) -> tuple[Relation, ...]:
        return tuple(self._relations.values())

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def add_relation(self, relation: Relation) -> Relation:
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation name: {relation.name!r}")
        self._relations[relation.name] = relation
        return relation

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise UnknownRelationError(name) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    def attribute(self, relation_name: str, attribute_name: str) -> Attribute:
        return self.relation(relation_name).attribute(attribute_name)

    def attribute_count(self) -> int:
        """The total number of attributes over all relations.

        This is the statistic the attribute-counting baseline [14] scales
        its estimate with.
        """
        return sum(relation.arity() for relation in self.relations)

    # ------------------------------------------------------------------
    # Constraints
    # ------------------------------------------------------------------

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return tuple(self._constraints)

    def add_constraint(self, constraint: Constraint) -> Constraint:
        self._check_constraint_references(constraint)
        self._constraints.append(constraint)
        return constraint

    def _check_constraint_references(self, constraint: Constraint) -> None:
        relation = self.relation(constraint.relation)
        if isinstance(constraint, NotNull):
            relation.attribute(constraint.attribute)
        elif isinstance(constraint, (PrimaryKey, Unique)):
            for attribute in constraint.attributes:
                relation.attribute(attribute)
        elif isinstance(constraint, ForeignKey):
            for attribute in constraint.attributes:
                relation.attribute(attribute)
            referenced = self.relation(constraint.referenced)
            for attribute in constraint.referenced_attributes:
                referenced.attribute(attribute)
        elif isinstance(constraint, FunctionalDependencyConstraint):
            relation.attribute(constraint.determinant)
            relation.attribute(constraint.dependent)
        else:
            raise ConstraintError(
                f"unsupported constraint type: {type(constraint).__name__}"
            )

    def constraints_on(self, relation_name: str) -> tuple[Constraint, ...]:
        """All constraints whose constrained relation is ``relation_name``."""
        return tuple(
            constraint
            for constraint in self._constraints
            if constraint.relation == relation_name
        )

    def primary_key_of(self, relation_name: str) -> PrimaryKey | None:
        for constraint in self._constraints:
            if (
                isinstance(constraint, PrimaryKey)
                and constraint.relation == relation_name
            ):
                return constraint
        return None

    def foreign_keys_of(self, relation_name: str) -> tuple[ForeignKey, ...]:
        return tuple(
            constraint
            for constraint in self._constraints
            if isinstance(constraint, ForeignKey)
            and constraint.relation == relation_name
        )

    def foreign_keys(self) -> tuple[ForeignKey, ...]:
        return tuple(
            constraint
            for constraint in self._constraints
            if isinstance(constraint, ForeignKey)
        )

    def is_not_null(self, relation_name: str, attribute_name: str) -> bool:
        """Whether the attribute is NOT NULL, directly or via a primary key."""
        for constraint in self._constraints:
            if constraint.relation != relation_name:
                continue
            if (
                isinstance(constraint, NotNull)
                and constraint.attribute == attribute_name
            ):
                return True
            if (
                isinstance(constraint, PrimaryKey)
                and attribute_name in constraint.attributes
            ):
                return True
        return False

    def is_unique(self, relation_name: str, attribute_name: str) -> bool:
        """Whether the single attribute is unique (via UNIQUE or a 1-ary PK)."""
        for constraint in self._constraints:
            if constraint.relation != relation_name:
                continue
            if isinstance(constraint, (Unique, PrimaryKey)) and (
                constraint.attributes == (attribute_name,)
            ):
                return True
        return False

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations)

    def __repr__(self) -> str:
        return (
            f"Schema({self.name!r}, {len(self._relations)} relations, "
            f"{len(self._constraints)} constraints)"
        )


def relation(name: str, attributes: Sequence[tuple[str, DataType] | str]) -> Relation:
    """Build a :class:`Relation` from ``(name, datatype)`` pairs or bare names.

    Bare attribute names default to STRING, matching how dumped data with
    no schema arrives in practice.
    """
    built: list[Attribute] = []
    for entry in attributes:
        if isinstance(entry, str):
            built.append(Attribute(entry))
        else:
            attr_name, datatype = entry
            built.append(Attribute(attr_name, datatype))
    return Relation(name, built)
