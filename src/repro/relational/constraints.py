"""Schema constraints: primary keys, foreign keys, NOT NULL, UNIQUE.

These are the constraint kinds the paper's running example uses (Fig. 2a)
and the ones the CSG conversion of Section 4.1 encodes as prescribed
cardinalities.  Constraints are immutable value objects attached to a
:class:`~repro.relational.schema.Schema`; checking them against data lives
in :mod:`repro.relational.validation`.
"""

from __future__ import annotations

import dataclasses
from collections.abc import Sequence

from .errors import ConstraintError


@dataclasses.dataclass(frozen=True)
class Constraint:
    """Base class of all schema constraints.

    ``relation`` names the constrained relation; subclasses add the
    attribute-level details.
    """

    relation: str

    @property
    def kind(self) -> str:
        """A short, stable identifier of the constraint family."""
        raise NotImplementedError

    def describe(self) -> str:
        """A human-readable one-line description."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class NotNull(Constraint):
    """``attribute`` of ``relation`` must not contain SQL NULLs."""

    attribute: str

    @property
    def kind(self) -> str:
        return "not_null"

    def describe(self) -> str:
        return f"NOT NULL {self.relation}.{self.attribute}"


@dataclasses.dataclass(frozen=True)
class Unique(Constraint):
    """The (possibly composite) ``attributes`` of ``relation`` are unique.

    Tuples containing a NULL in any of the attributes are exempt, like in
    SQL.
    """

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConstraintError("a UNIQUE constraint needs >= 1 attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise ConstraintError(
                f"duplicate attribute in UNIQUE({', '.join(self.attributes)})"
            )

    @property
    def kind(self) -> str:
        return "unique"

    def describe(self) -> str:
        attrs = ", ".join(self.attributes)
        return f"UNIQUE {self.relation}({attrs})"


@dataclasses.dataclass(frozen=True)
class PrimaryKey(Constraint):
    """Primary key: unique and not-null over ``attributes``."""

    attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConstraintError("a PRIMARY KEY needs >= 1 attribute")
        if len(set(self.attributes)) != len(self.attributes):
            raise ConstraintError(
                f"duplicate attribute in PK({', '.join(self.attributes)})"
            )

    @property
    def kind(self) -> str:
        return "primary_key"

    def describe(self) -> str:
        attrs = ", ".join(self.attributes)
        return f"PRIMARY KEY {self.relation}({attrs})"

    def implied_constraints(self) -> tuple[Constraint, ...]:
        """The UNIQUE + NOT NULL constraints a primary key entails."""
        implied: list[Constraint] = [Unique(self.relation, self.attributes)]
        implied.extend(
            NotNull(self.relation, attribute) for attribute in self.attributes
        )
        return tuple(implied)


@dataclasses.dataclass(frozen=True)
class ForeignKey(Constraint):
    """``relation.attributes`` references ``referenced.referenced_attributes``.

    Follows SQL semantics: a referencing tuple with a NULL in any FK
    attribute is exempt; otherwise the referenced combination must exist.
    """

    attributes: tuple[str, ...]
    referenced: str
    referenced_attributes: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise ConstraintError("a FOREIGN KEY needs >= 1 attribute")
        if len(self.attributes) != len(self.referenced_attributes):
            raise ConstraintError(
                "FOREIGN KEY arity mismatch: "
                f"{len(self.attributes)} referencing vs "
                f"{len(self.referenced_attributes)} referenced attributes"
            )

    @property
    def kind(self) -> str:
        return "foreign_key"

    def describe(self) -> str:
        lhs = ", ".join(self.attributes)
        rhs = ", ".join(self.referenced_attributes)
        return (
            f"FOREIGN KEY {self.relation}({lhs}) "
            f"REFERENCES {self.referenced}({rhs})"
        )


@dataclasses.dataclass(frozen=True)
class FunctionalDependencyConstraint(Constraint):
    """``determinant → dependent`` within one relation.

    Unary on both sides; n-ary determinants can be expressed through the
    CSG join operator but are not needed by the shipped modules.  NULL
    determinant values are exempt, like in most FD semantics over SQL.
    """

    determinant: str
    dependent: str

    def __post_init__(self) -> None:
        if self.determinant == self.dependent:
            raise ConstraintError("trivial FD: determinant equals dependent")

    @property
    def kind(self) -> str:
        return "functional_dependency"

    def describe(self) -> str:
        return f"FD {self.relation}.{self.determinant} -> {self.dependent}"


def foreign_key(
    relation: str,
    attributes: Sequence[str] | str,
    referenced: str,
    referenced_attributes: Sequence[str] | str,
) -> ForeignKey:
    """Convenience factory accepting single attribute names or sequences."""
    if isinstance(attributes, str):
        attributes = (attributes,)
    if isinstance(referenced_attributes, str):
        referenced_attributes = (referenced_attributes,)
    return ForeignKey(
        relation, tuple(attributes), referenced, tuple(referenced_attributes)
    )


def primary_key(relation: str, attributes: Sequence[str] | str) -> PrimaryKey:
    """Convenience factory accepting a single attribute name or a sequence."""
    if isinstance(attributes, str):
        attributes = (attributes,)
    return PrimaryKey(relation, tuple(attributes))


def unique(relation: str, attributes: Sequence[str] | str) -> Unique:
    """Convenience factory accepting a single attribute name or a sequence."""
    if isinstance(attributes, str):
        attributes = (attributes,)
    return Unique(relation, tuple(attributes))
