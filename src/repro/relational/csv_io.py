"""CSV import/export for relation instances.

Sources often arrive as plain dumps without schema definitions
(Section 3.1); :func:`load_relation` pairs with
:func:`repro.profiling.types.infer_relation_types` and the dependency
discovery in :mod:`repro.profiling.dependencies` to reverse-engineer a
usable schema from such dumps.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .datatypes import DataType, cast, infer_datatype
from .errors import InstanceError
from .instance import RelationInstance
from .schema import Attribute, Relation

NULL_TOKEN = ""


def dump_relation(instance: RelationInstance, path: str | Path) -> None:
    """Write a relation instance as a CSV file with a header row."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _write(instance, handle)


def dumps_relation(instance: RelationInstance) -> str:
    """Render a relation instance as CSV text."""
    buffer = io.StringIO()
    _write(instance, buffer)
    return buffer.getvalue()


def _write(instance: RelationInstance, handle) -> None:
    writer = csv.writer(handle)
    writer.writerow(instance.relation.attribute_names)
    for row in instance:
        writer.writerow(
            [NULL_TOKEN if value is None else value for value in row]
        )


def load_relation(
    path: str | Path,
    name: str | None = None,
    relation: Relation | None = None,
) -> RelationInstance:
    """Load a CSV file into a relation instance.

    When ``relation`` is given, values are cast to its attribute types;
    otherwise the attribute types are inferred from the data (schema
    reverse engineering for dumps).

    Malformed input raises :class:`InstanceError` with a one-line
    ``file:line`` diagnostic — a row whose arity disagrees with the
    header, or bytes that are not UTF-8 — instead of a raw traceback
    from deep inside the parser.
    """
    raw = Path(path).read_bytes()
    try:
        text = raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        line = raw.count(b"\n", 0, exc.start) + 1
        raise InstanceError(
            f"{path}:{line}: undecodable byte 0x{raw[exc.start]:02x} at "
            f"offset {exc.start}: CSV input must be UTF-8"
        ) from None
    return loads_relation(
        text, name=name or Path(path).stem, relation=relation,
        source=str(path),
    )


def loads_relation(
    text: str,
    name: str = "relation",
    relation: Relation | None = None,
    *,
    source: str | None = None,
) -> RelationInstance:
    """Parse CSV text into a relation instance (see :func:`load_relation`).

    ``source`` names the input in diagnostics (``<source>:<line>``); it
    defaults to ``<csv>`` for string input.
    """
    where = source or "<csv>"
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise InstanceError(
            f"{where}:1: CSV input is empty; a header row is required"
        ) from None
    raw_rows = []
    for row in reader:
        if len(row) != len(header):
            raise InstanceError(
                f"{where}:{reader.line_num}: CSV row arity {len(row)} "
                f"does not match header arity {len(header)}"
            )
        raw_rows.append(
            [None if cell == NULL_TOKEN else cell for cell in row]
        )
    if relation is None:
        relation = _infer_relation(name, header, raw_rows)
    instance = RelationInstance(relation)
    for row in raw_rows:
        instance.insert(
            [
                cast(value, attribute.datatype)
                for value, attribute in zip(row, relation.attributes)
            ]
        )
    return instance


def _infer_relation(
    name: str, header: list[str], rows: list[list[object]]
) -> Relation:
    attributes = []
    for index, attribute_name in enumerate(header):
        column = [row[index] for row in rows]
        datatype = infer_datatype(column)
        if datatype == DataType.BOOLEAN and all(
            value is None or str(value) in ("0", "1") for value in column
        ):
            # Bare 0/1 columns are far more often numeric codes than flags.
            datatype = DataType.INTEGER
        attributes.append(Attribute(attribute_name, datatype))
    return Relation(name, attributes)
