"""CSV import/export for relation instances.

Sources often arrive as plain dumps without schema definitions
(Section 3.1); :func:`load_relation` pairs with
:func:`repro.profiling.types.infer_relation_types` and the dependency
discovery in :mod:`repro.profiling.dependencies` to reverse-engineer a
usable schema from such dumps.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from .datatypes import DataType, cast, infer_datatype
from .errors import InstanceError
from .instance import RelationInstance
from .schema import Attribute, Relation

NULL_TOKEN = ""


def dump_relation(instance: RelationInstance, path: str | Path) -> None:
    """Write a relation instance as a CSV file with a header row."""
    with open(path, "w", newline="", encoding="utf-8") as handle:
        _write(instance, handle)


def dumps_relation(instance: RelationInstance) -> str:
    """Render a relation instance as CSV text."""
    buffer = io.StringIO()
    _write(instance, buffer)
    return buffer.getvalue()


def _write(instance: RelationInstance, handle) -> None:
    writer = csv.writer(handle)
    writer.writerow(instance.relation.attribute_names)
    for row in instance:
        writer.writerow(
            [NULL_TOKEN if value is None else value for value in row]
        )


def load_relation(
    path: str | Path,
    name: str | None = None,
    relation: Relation | None = None,
) -> RelationInstance:
    """Load a CSV file into a relation instance.

    When ``relation`` is given, values are cast to its attribute types;
    otherwise the attribute types are inferred from the data (schema
    reverse engineering for dumps).
    """
    with open(path, newline="", encoding="utf-8") as handle:
        return loads_relation(
            handle.read(), name=name or Path(path).stem, relation=relation
        )


def loads_relation(
    text: str,
    name: str = "relation",
    relation: Relation | None = None,
) -> RelationInstance:
    """Parse CSV text into a relation instance (see :func:`load_relation`)."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise InstanceError("CSV input is empty; a header row is required") from None
    raw_rows = [
        [None if cell == NULL_TOKEN else cell for cell in row] for row in reader
    ]
    for row in raw_rows:
        if len(row) != len(header):
            raise InstanceError(
                f"CSV row arity {len(row)} does not match header arity "
                f"{len(header)}"
            )
    if relation is None:
        relation = _infer_relation(name, header, raw_rows)
    instance = RelationInstance(relation)
    for row in raw_rows:
        instance.insert(
            [
                cast(value, attribute.datatype)
                for value, attribute in zip(row, relation.attributes)
            ]
        )
    return instance


def _infer_relation(
    name: str, header: list[str], rows: list[list[object]]
) -> Relation:
    attributes = []
    for index, attribute_name in enumerate(header):
        column = [row[index] for row in rows]
        datatype = infer_datatype(column)
        if datatype == DataType.BOOLEAN and all(
            value is None or str(value) in ("0", "1") for value in column
        ):
            # Bare 0/1 columns are far more often numeric codes than flags.
            datatype = DataType.INTEGER
        attributes.append(Attribute(attribute_name, datatype))
    return Relation(name, attributes)
