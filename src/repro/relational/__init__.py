"""In-memory relational substrate.

This package replaces the PostgreSQL backend of the paper's prototype with
an embedded engine: typed schemas, constraints, instances, validation,
relational-algebra operators, and CSV I/O.  Every other subsystem (data
profiling, CSG conversion, the EFES modules, the practitioner simulator)
reads databases exclusively through this package.
"""

from .constraints import (
    Constraint,
    ForeignKey,
    FunctionalDependencyConstraint,
    NotNull,
    PrimaryKey,
    Unique,
    foreign_key,
    primary_key,
    unique,
)
from .database import Database
from .datatypes import DataType, can_cast, cast, infer_datatype
from .errors import (
    ConstraintError,
    InstanceError,
    IntegrityError,
    RelationalError,
    SchemaError,
    TypeCastError,
    UnknownAttributeError,
    UnknownRelationError,
)
from .instance import DatabaseInstance, RelationInstance
from .schema import Attribute, Relation, Schema, relation
from .validation import Violation, assert_valid, check_constraint, is_valid, validate

__all__ = [
    "Attribute",
    "Constraint",
    "ConstraintError",
    "Database",
    "DatabaseInstance",
    "DataType",
    "ForeignKey",
    "FunctionalDependencyConstraint",
    "InstanceError",
    "IntegrityError",
    "NotNull",
    "PrimaryKey",
    "Relation",
    "RelationInstance",
    "RelationalError",
    "Schema",
    "SchemaError",
    "TypeCastError",
    "Unique",
    "UnknownAttributeError",
    "UnknownRelationError",
    "Violation",
    "assert_valid",
    "can_cast",
    "cast",
    "check_constraint",
    "foreign_key",
    "infer_datatype",
    "is_valid",
    "primary_key",
    "relation",
    "unique",
    "validate",
]
