"""A database = schema + instance, the unit EFES scenarios are built from."""

from __future__ import annotations

import copy
from collections.abc import Iterable, Mapping, Sequence

from .constraints import Constraint
from .instance import DatabaseInstance, RelationInstance
from .schema import Relation, Schema


class Database:
    """A schema together with an instance of it.

    This mirrors the paper's notion of a source or target database
    (Section 3.1): "a relational schema, an instance of this schema, and a
    set of constraints, which must be satisfied by that instance".
    """

    def __init__(self, schema: Schema, instance: DatabaseInstance | None = None) -> None:
        self.schema = schema
        self.instance = instance if instance is not None else DatabaseInstance(schema)
        if self.instance.schema is not schema:
            raise ValueError("instance does not belong to the given schema")

    @property
    def name(self) -> str:
        return self.schema.name

    def relation(self, name: str) -> Relation:
        return self.schema.relation(name)

    def table(self, name: str) -> RelationInstance:
        """The instance of relation ``name`` (SQL users think "table")."""
        return self.instance[name]

    @property
    def constraints(self) -> tuple[Constraint, ...]:
        return self.schema.constraints

    def insert(self, relation_name: str, row: Sequence[object] | Mapping[str, object]):
        return self.instance.insert(relation_name, row)

    def insert_all(self, relation_name: str, rows: Iterable[Sequence[object]]) -> None:
        self.instance.insert_all(relation_name, rows)

    def query(self, sql: str) -> list[dict[str, object]]:
        """Run a SELECT statement against this database (SQL subset)."""
        from .sql import query as sql_query

        return sql_query(self, sql)

    def execute(self, sql: str):
        """Run any supported SQL statement (SELECT/INSERT/UPDATE/DELETE/
        CREATE TABLE); SELECTs return rows, mutations return row counts."""
        from .sql import execute as sql_execute

        return sql_execute(self, sql)

    def copy(self) -> "Database":
        """A deep copy; the practitioner simulator mutates copies only."""
        clone = Database(self.schema)
        clone.instance = copy.deepcopy(self.instance)
        return clone

    def total_rows(self) -> int:
        return self.instance.total_rows()

    @property
    def version(self) -> tuple[tuple[str, int], ...]:
        """The instance's mutation counters (see ``DatabaseInstance.version``)."""
        return self.instance.version

    def __repr__(self) -> str:
        return (
            f"Database({self.schema.name!r}, "
            f"{len(self.schema.relations)} relations, "
            f"{self.total_rows()} rows)"
        )
