"""Minimal relational algebra over dict-shaped rows.

The practitioner simulator "writes SQL" in the paper's ground-truth runs;
here that corresponds to composing these operators.  All operators consume
and produce lists of ``dict`` rows, which keeps intermediate results
schema-free (important when integrated data is temporarily *not* in first
normal form, e.g. multiple artists per record, Example 3.2).
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Callable, Iterable, Mapping, Sequence

Rows = list[dict[str, object]]


def scan(instance) -> Rows:
    """Materialise a :class:`RelationInstance` as dict rows."""
    return list(instance.dicts())


def select(rows: Iterable[Mapping[str, object]], predicate: Callable) -> Rows:
    """σ — keep the rows for which ``predicate(row)`` is truthy."""
    return [dict(row) for row in rows if predicate(row)]


def project(
    rows: Iterable[Mapping[str, object]],
    mapping: Mapping[str, str | Callable],
) -> Rows:
    """π with renaming — build rows with keys from ``mapping``.

    Each value of ``mapping`` is either the name of an input column or a
    callable receiving the whole input row (for computed columns).
    """
    result: Rows = []
    for row in rows:
        projected: dict[str, object] = {}
        for out_name, source in mapping.items():
            if callable(source):
                projected[out_name] = source(row)
            else:
                projected[out_name] = row.get(source)
        result.append(projected)
    return result


def rename(rows: Iterable[Mapping[str, object]], renames: Mapping[str, str]) -> Rows:
    """ρ — rename columns; unmentioned columns pass through."""
    result: Rows = []
    for row in rows:
        result.append({renames.get(key, key): value for key, value in row.items()})
    return result


def natural_join(
    left: Sequence[Mapping[str, object]],
    right: Sequence[Mapping[str, object]],
    left_key: str,
    right_key: str,
    how: str = "inner",
) -> Rows:
    """⋈ — equi-join on ``left[left_key] == right[right_key]``.

    ``how`` is ``"inner"`` or ``"left"`` (left-outer, padding with NULLs).
    NULL keys never join, like in SQL.  Column collisions keep the left
    value and expose the right one under ``<name>_r``.
    """
    if how not in ("inner", "left"):
        raise ValueError(f"unsupported join type: {how!r}")
    index: dict[object, list[Mapping[str, object]]] = defaultdict(list)
    for row in right:
        key = row.get(right_key)
        if key is not None:
            index[key].append(row)
    right_columns = set()
    for row in right:
        right_columns.update(row)
    result: Rows = []
    for row in left:
        key = row.get(left_key)
        matches = index.get(key, []) if key is not None else []
        if matches:
            for match in matches:
                joined = dict(row)
                for column, value in match.items():
                    if column in joined and column != left_key:
                        joined[f"{column}_r"] = value
                    else:
                        joined.setdefault(column, value)
                result.append(joined)
        elif how == "left":
            joined = dict(row)
            for column in right_columns:
                target = f"{column}_r" if column in joined else column
                joined.setdefault(target, None)
            result.append(joined)
    return result


def group_by(
    rows: Iterable[Mapping[str, object]],
    keys: Sequence[str],
    aggregates: Mapping[str, Callable[[list], object]] | None = None,
) -> Rows:
    """γ — group rows on ``keys`` and apply per-group aggregates.

    Each aggregate callable receives the list of rows of its group.
    """
    groups: dict[tuple, list[Mapping[str, object]]] = defaultdict(list)
    for row in rows:
        groups[tuple(row.get(key) for key in keys)].append(row)
    result: Rows = []
    for key_values, members in groups.items():
        out: dict[str, object] = dict(zip(keys, key_values))
        if aggregates:
            for name, aggregate in aggregates.items():
                out[name] = aggregate([dict(member) for member in members])
        result.append(out)
    return result


def distinct(rows: Iterable[Mapping[str, object]]) -> Rows:
    """δ — remove exact duplicate rows, preserving first-seen order."""
    seen: set[tuple] = set()
    result: Rows = []
    for row in rows:
        key = tuple(sorted(row.items(), key=lambda item: item[0]))
        try:
            fresh = key not in seen
        except TypeError:  # unhashable value; fall back to linear scan
            fresh = dict(row) not in result
            key = None
        if fresh:
            if key is not None:
                seen.add(key)
            result.append(dict(row))
    return result


def union_all(*row_sets: Sequence[Mapping[str, object]]) -> Rows:
    """∪ (bag semantics) — concatenate row sets."""
    result: Rows = []
    for rows in row_sets:
        result.extend(dict(row) for row in rows)
    return result


def aggregate_column(column: str, how: str = "first") -> Callable[[list], object]:
    """Build a common aggregate for :func:`group_by`.

    ``how`` is one of ``first``, ``count``, ``count_nonnull``, ``min``,
    ``max``, ``concat`` (comma-separated string of non-null values).
    """
    def _first(rows: list) -> object:
        return rows[0].get(column) if rows else None

    def _count(rows: list) -> object:
        return len(rows)

    def _count_nonnull(rows: list) -> object:
        return sum(1 for row in rows if row.get(column) is not None)

    def _min(rows: list) -> object:
        values = [row.get(column) for row in rows if row.get(column) is not None]
        return min(values) if values else None

    def _max(rows: list) -> object:
        values = [row.get(column) for row in rows if row.get(column) is not None]
        return max(values) if values else None

    def _concat(rows: list) -> object:
        values = [
            str(row.get(column)) for row in rows if row.get(column) is not None
        ]
        return ", ".join(values) if values else None

    implementations = {
        "first": _first,
        "count": _count,
        "count_nonnull": _count_nonnull,
        "min": _min,
        "max": _max,
        "concat": _concat,
    }
    try:
        return implementations[how]
    except KeyError:
        raise ValueError(f"unsupported aggregate: {how!r}") from None
