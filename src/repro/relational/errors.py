"""Exception hierarchy for the relational substrate.

All errors raised by :mod:`repro.relational` derive from
:class:`RelationalError`, so callers can catch substrate problems with a
single ``except`` clause while still being able to distinguish schema
definition mistakes from data-level violations.
"""

from __future__ import annotations


class RelationalError(Exception):
    """Base class for all errors of the relational substrate."""


class SchemaError(RelationalError):
    """A schema definition is inconsistent (duplicate names, bad references)."""


class UnknownRelationError(SchemaError):
    """A relation name was referenced that the schema does not define."""

    def __init__(self, relation_name: str) -> None:
        super().__init__(f"unknown relation: {relation_name!r}")
        self.relation_name = relation_name


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that its relation does not define."""

    def __init__(self, relation_name: str, attribute_name: str) -> None:
        super().__init__(
            f"unknown attribute: {relation_name!r}.{attribute_name!r}"
        )
        self.relation_name = relation_name
        self.attribute_name = attribute_name


class ConstraintError(RelationalError):
    """A constraint definition is malformed."""


class TypeCastError(RelationalError):
    """A value could not be cast to the requested datatype."""

    def __init__(self, value: object, datatype: object) -> None:
        super().__init__(f"cannot cast {value!r} to {datatype}")
        self.value = value
        self.datatype = datatype


class InstanceError(RelationalError):
    """A tuple does not fit its relation (arity or type mismatch)."""


class IntegrityError(RelationalError):
    """An instance violates a constraint and strict validation was requested."""
