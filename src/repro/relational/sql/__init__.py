"""A SQL subset over the in-memory relational engine.

The paper's prototype "relies on simple SQL queries only for the analysis
of the data" (Section 6.2) and its ground truth was produced with
hand-written SQL; this package provides that interface for the embedded
engine: SELECT (joins, WHERE, GROUP BY/HAVING, ORDER BY, LIMIT,
aggregates incl. GROUP_CONCAT), INSERT, UPDATE, DELETE, and CREATE TABLE
with inline or table-level constraints.

>>> from repro.relational.sql import query
>>> query(db, "SELECT artist, COUNT(*) AS n FROM records GROUP BY artist")
"""

from .ast import Select, Statement
from .ddl import relation_to_ddl, schema_to_ddl, split_statements
from .executor import execute, execute_select, query
from .lexer import SqlError, Token, TokenType, tokenize
from .parser import Parser, parse

__all__ = [
    "Parser",
    "Select",
    "SqlError",
    "Statement",
    "Token",
    "TokenType",
    "execute",
    "relation_to_ddl",
    "schema_to_ddl",
    "split_statements",
    "execute_select",
    "parse",
    "query",
    "tokenize",
]
