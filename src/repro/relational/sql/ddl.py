"""DDL generation: render a schema as CREATE TABLE statements.

The output is valid input for this package's own parser, so schemas
round-trip through SQL text (functional dependencies, which standard DDL
cannot express, are emitted as comments and therefore do not survive the
round trip — mirror them separately if you need them).
"""

from __future__ import annotations

from ..constraints import (
    FunctionalDependencyConstraint,
    NotNull,
    Unique,
)
from ..datatypes import DataType
from ..schema import Schema

_TYPE_NAMES = {
    DataType.INTEGER: "INTEGER",
    DataType.FLOAT: "FLOAT",
    DataType.STRING: "TEXT",
    DataType.BOOLEAN: "BOOLEAN",
    DataType.DATE: "DATE",
}


def relation_to_ddl(schema: Schema, relation_name: str) -> str:
    """CREATE TABLE text for one relation of the schema."""
    relation = schema.relation(relation_name)
    single_pk = None
    composite_pk = None
    primary_key = schema.primary_key_of(relation_name)
    if primary_key is not None:
        if len(primary_key.attributes) == 1:
            single_pk = primary_key.attributes[0]
        else:
            composite_pk = primary_key.attributes

    single_fk: dict[str, tuple[str, str]] = {}
    composite_fks = []
    for fk in schema.foreign_keys_of(relation_name):
        if len(fk.attributes) == 1:
            single_fk[fk.attributes[0]] = (
                fk.referenced,
                fk.referenced_attributes[0],
            )
        else:
            composite_fks.append(fk)

    single_uniques = {
        c.attributes[0]
        for c in schema.constraints_on(relation_name)
        if isinstance(c, Unique) and len(c.attributes) == 1
    }
    composite_uniques = [
        c
        for c in schema.constraints_on(relation_name)
        if isinstance(c, Unique) and len(c.attributes) > 1
    ]
    not_nulls = {
        c.attribute
        for c in schema.constraints_on(relation_name)
        if isinstance(c, NotNull)
    }

    lines: list[str] = []
    for attribute in relation.attributes:
        parts = [f"    {attribute.name} {_TYPE_NAMES[attribute.datatype]}"]
        if attribute.name == single_pk:
            parts.append("PRIMARY KEY")
        elif attribute.name in not_nulls:
            parts.append("NOT NULL")
        if attribute.name in single_uniques:
            parts.append("UNIQUE")
        if attribute.name in single_fk:
            referenced, referenced_attribute = single_fk[attribute.name]
            parts.append(f"REFERENCES {referenced}({referenced_attribute})")
        lines.append(" ".join(parts))
    if composite_pk:
        lines.append(f"    PRIMARY KEY ({', '.join(composite_pk)})")
    for constraint in composite_uniques:
        lines.append(f"    UNIQUE ({', '.join(constraint.attributes)})")
    for fk in composite_fks:
        lines.append(
            f"    FOREIGN KEY ({', '.join(fk.attributes)}) REFERENCES "
            f"{fk.referenced}({', '.join(fk.referenced_attributes)})"
        )
    body = ",\n".join(lines)
    return f"CREATE TABLE {relation_name} (\n{body}\n);"


def schema_to_ddl(schema: Schema) -> str:
    """CREATE TABLE statements for the whole schema, dependency-ordered
    so every REFERENCES target is created before its referrers."""
    remaining = list(schema.relation_names)
    ordered: list[str] = []
    while remaining:
        progressed = False
        for name in list(remaining):
            depends_on = {
                fk.referenced
                for fk in schema.foreign_keys_of(name)
                if fk.referenced in remaining and fk.referenced != name
            }
            if not depends_on:
                ordered.append(name)
                remaining.remove(name)
                progressed = True
        if not progressed:  # FK cycle: emit the rest in declaration order
            ordered.extend(remaining)
            break
    statements = [relation_to_ddl(schema, name) for name in ordered]
    comments = [
        f"-- {c.describe()} (not expressible in this DDL subset)"
        for c in schema.constraints
        if isinstance(c, FunctionalDependencyConstraint)
    ]
    return "\n\n".join(statements + comments) + "\n"


def split_statements(script: str) -> list[str]:
    """Split a DDL/DML script on top-level semicolons (comment-aware)."""
    statements: list[str] = []
    current: list[str] = []
    in_string = False
    index = 0
    while index < len(script):
        char = script[index]
        if in_string:
            current.append(char)
            if char == "'":
                if index + 1 < len(script) and script[index + 1] == "'":
                    current.append("'")
                    index += 1
                else:
                    in_string = False
        elif script.startswith("--", index):
            newline = script.find("\n", index)
            index = len(script) - 1 if newline == -1 else newline
        elif char == "'":
            in_string = True
            current.append(char)
        elif char == ";":
            text = "".join(current).strip()
            if text:
                statements.append(text)
            current = []
        else:
            current.append(char)
        index += 1
    tail = "".join(current).strip()
    if tail:
        statements.append(tail)
    return statements
