"""Tokenizer for the SQL subset (see :mod:`repro.relational.sql`)."""

from __future__ import annotations

import dataclasses
import enum


class SqlError(ValueError):
    """Lexing, parsing, or execution of a SQL statement failed."""


class TokenType(enum.Enum):
    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    PUNCTUATION = "punctuation"
    END = "end"


KEYWORDS = frozenset(
    {
        "SELECT", "DISTINCT", "FROM", "JOIN", "LEFT", "INNER", "ON",
        "WHERE", "GROUP", "BY", "HAVING", "ORDER", "ASC", "DESC", "LIMIT",
        "AS", "AND", "OR", "NOT", "IS", "NULL", "IN", "LIKE", "BETWEEN",
        "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
        "CREATE", "TABLE", "PRIMARY", "KEY", "UNIQUE", "FOREIGN",
        "REFERENCES", "TRUE", "FALSE",
        "INTEGER", "INT", "FLOAT", "REAL", "TEXT", "STRING", "VARCHAR",
        "BOOLEAN", "DATE",
        "COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT",
    }
)

_OPERATORS = ("<>", "!=", "<=", ">=", "=", "<", ">", "+", "-", "*", "/", "||")
_PUNCTUATION = "(),.;"


@dataclasses.dataclass(frozen=True)
class Token:
    type: TokenType
    value: str
    position: int

    def matches(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.type is not token_type:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Convert SQL text into a token list ending with an END token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if text.startswith("--", index):  # line comment
            newline = text.find("\n", index)
            index = length if newline == -1 else newline + 1
            continue
        if char == "'":
            index = _lex_string(text, index, tokens)
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            index = _lex_number(text, index, tokens)
            continue
        if char.isalpha() or char == "_":
            index = _lex_word(text, index, tokens)
            continue
        operator = _match_operator(text, index)
        if operator:
            tokens.append(Token(TokenType.OPERATOR, operator, index))
            index += len(operator)
            continue
        if char in _PUNCTUATION:
            tokens.append(Token(TokenType.PUNCTUATION, char, index))
            index += 1
            continue
        raise SqlError(f"unexpected character {char!r} at position {index}")
    tokens.append(Token(TokenType.END, "", length))
    return tokens


def _lex_string(text: str, start: int, tokens: list[Token]) -> int:
    index = start + 1
    pieces: list[str] = []
    while index < len(text):
        char = text[index]
        if char == "'":
            if index + 1 < len(text) and text[index + 1] == "'":
                pieces.append("'")  # escaped quote
                index += 2
                continue
            tokens.append(Token(TokenType.STRING, "".join(pieces), start))
            return index + 1
        pieces.append(char)
        index += 1
    raise SqlError(f"unterminated string literal at position {start}")


def _lex_number(text: str, start: int, tokens: list[Token]) -> int:
    index = start
    seen_dot = False
    while index < len(text) and (
        text[index].isdigit() or (text[index] == "." and not seen_dot)
    ):
        if text[index] == ".":
            seen_dot = True
        index += 1
    tokens.append(Token(TokenType.NUMBER, text[start:index], start))
    return index


def _lex_word(text: str, start: int, tokens: list[Token]) -> int:
    index = start
    while index < len(text) and (text[index].isalnum() or text[index] == "_"):
        index += 1
    word = text[start:index]
    if word.upper() in KEYWORDS:
        tokens.append(Token(TokenType.KEYWORD, word.upper(), start))
    else:
        tokens.append(Token(TokenType.IDENTIFIER, word, start))
    return index


def _match_operator(text: str, index: int) -> str | None:
    for operator in _OPERATORS:
        if text.startswith(operator, index):
            return operator
    return None
