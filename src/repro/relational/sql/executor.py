"""Executor: run parsed SQL statements against a Database.

SELECT statements return lists of dict rows; INSERT/UPDATE/DELETE return
the number of affected rows; CREATE TABLE returns 0 after registering the
new relation and its constraints.

Semantics follow SQL where it matters for analysis queries: three-valued
logic for NULLs in predicates, NULL-exempt aggregates, NULLs sorted
first, LIKE with ``%``/``_`` wildcards.
"""

from __future__ import annotations

import re

from ..constraints import (
    NotNull,
    PrimaryKey,
    Unique,
    foreign_key,
)
from ..database import Database
from ..datatypes import DataType
from ..schema import Attribute, Relation
from .ast import (
    Aggregate,
    Between,
    BinaryOp,
    ColumnRef,
    CreateTable,
    Delete,
    Expression,
    InList,
    Insert,
    IsNull,
    Literal,
    Select,
    Star,
    Statement,
    TableRef,
    UnaryOp,
    Update,
)
from .lexer import SqlError
from .parser import parse

Row = dict[str, object]


# ----------------------------------------------------------------------
# Expression evaluation
# ----------------------------------------------------------------------


def _like_to_regex(pattern: str) -> re.Pattern:
    pieces: list[str] = []
    for char in pattern:
        if char == "%":
            pieces.append(".*")
        elif char == "_":
            pieces.append(".")
        else:
            pieces.append(re.escape(char))
    return re.compile("^" + "".join(pieces) + "$", re.DOTALL)


def _logical_and(left, right):
    if left is False or right is False:
        return False
    if left is None or right is None:
        return None
    return bool(left) and bool(right)


def _logical_or(left, right):
    if left is True or right is True:
        return True
    if left is None or right is None:
        return None
    return bool(left) or bool(right)


class _Scope:
    """Column resolution over a joined row (bare + qualified names)."""

    def __init__(self, row: Row, ambiguous: frozenset[str]) -> None:
        self.row = row
        self.ambiguous = ambiguous

    def lookup(self, column: ColumnRef) -> object:
        if column.table is not None:
            key = f"{column.table}.{column.name}"
            if key not in self.row:
                raise SqlError(f"unknown column {key!r}")
            return self.row[key]
        if column.name in self.ambiguous:
            raise SqlError(f"ambiguous column {column.name!r}")
        if column.name not in self.row:
            raise SqlError(f"unknown column {column.name!r}")
        return self.row[column.name]


def evaluate(expression: Expression, scope: _Scope) -> object:
    if isinstance(expression, Literal):
        return expression.value
    if isinstance(expression, ColumnRef):
        return scope.lookup(expression)
    if isinstance(expression, UnaryOp):
        value = evaluate(expression.operand, scope)
        if expression.operator == "NOT":
            if value is None:
                return None
            return not bool(value)
        if value is None:
            return None
        return -value  # unary minus
    if isinstance(expression, IsNull):
        is_null = evaluate(expression.operand, scope) is None
        return (not is_null) if expression.negated else is_null
    if isinstance(expression, InList):
        value = evaluate(expression.operand, scope)
        if value is None:
            return None
        options = [evaluate(option, scope) for option in expression.options]
        result = value in [option for option in options if option is not None]
        if not result and any(option is None for option in options):
            return None
        return (not result) if expression.negated else result
    if isinstance(expression, Between):
        value = evaluate(expression.operand, scope)
        low = evaluate(expression.low, scope)
        high = evaluate(expression.high, scope)
        if value is None or low is None or high is None:
            return None
        result = low <= value <= high
        return (not result) if expression.negated else result
    if isinstance(expression, BinaryOp):
        return _evaluate_binary(expression, scope)
    if isinstance(expression, Aggregate):
        raise SqlError(
            f"aggregate {expression.function} used outside an aggregation "
            "context"
        )
    if isinstance(expression, Star):
        raise SqlError("'*' is only valid in SELECT lists and COUNT(*)")
    raise SqlError(f"unsupported expression: {type(expression).__name__}")


def _evaluate_binary(expression: BinaryOp, scope: _Scope) -> object:
    operator = expression.operator
    if operator == "AND":
        return _logical_and(
            evaluate(expression.left, scope), evaluate(expression.right, scope)
        )
    if operator == "OR":
        return _logical_or(
            evaluate(expression.left, scope), evaluate(expression.right, scope)
        )
    left = evaluate(expression.left, scope)
    right = evaluate(expression.right, scope)
    if operator == "||":
        if left is None or right is None:
            return None
        return f"{left}{right}"
    if left is None or right is None:
        return None
    if operator == "LIKE":
        return bool(_like_to_regex(str(right)).match(str(left)))
    if operator in ("=", "<>"):
        equal = left == right
        return equal if operator == "=" else not equal
    if operator in ("<", "<=", ">", ">="):
        try:
            if operator == "<":
                return left < right
            if operator == "<=":
                return left <= right
            if operator == ">":
                return left > right
            return left >= right
        except TypeError as exc:
            raise SqlError(
                f"cannot compare {type(left).__name__} with "
                f"{type(right).__name__}"
            ) from exc
    if operator in ("+", "-", "*", "/"):
        try:
            if operator == "+":
                return left + right
            if operator == "-":
                return left - right
            if operator == "*":
                return left * right
            if right == 0:
                return None  # SQL-ish: division by zero yields NULL here
            if isinstance(left, int) and isinstance(right, int):
                # SQLite-style integer division (truncating towards zero).
                return int(left / right)
            return left / right
        except TypeError as exc:
            raise SqlError(
                f"bad operands for {operator}: {left!r}, {right!r}"
            ) from exc
    raise SqlError(f"unsupported operator {operator!r}")


# ----------------------------------------------------------------------
# SELECT execution
# ----------------------------------------------------------------------


def _scan(database: Database, table: TableRef) -> tuple[list[Row], list[str]]:
    instance = database.table(table.name)
    exposed = table.exposed_name
    columns = list(instance.relation.attribute_names)
    rows: list[Row] = []
    for values in instance:
        row: Row = {}
        for name, value in zip(columns, values):
            row[name] = value
            row[f"{exposed}.{name}"] = value
        rows.append(row)
    if not rows:
        # keep column names known for empty relations
        rows = []
    return rows, columns


def _equi_join_keys(
    condition: Expression,
    left_keys: set[str],
    right_keys: set[str],
) -> tuple[str, str] | None:
    """Detect ``a.x = b.y`` join conditions eligible for a hash join.

    Returns (left row key, right row key) when one side of a qualified
    equality resolves into the accumulated left rows and the other into
    the joining table's qualified columns.
    """
    if not (
        isinstance(condition, BinaryOp)
        and condition.operator == "="
        and isinstance(condition.left, ColumnRef)
        and isinstance(condition.right, ColumnRef)
        and condition.left.table is not None
        and condition.right.table is not None
    ):
        return None
    first = f"{condition.left.table}.{condition.left.name}"
    second = f"{condition.right.table}.{condition.right.name}"
    if first in left_keys and second in right_keys:
        return (first, second)
    if second in left_keys and first in right_keys:
        return (second, first)
    return None


def _join_rows(
    database: Database, statement: Select
) -> tuple[list[Row], frozenset[str]]:
    assert statement.source is not None
    rows, columns = _scan(database, statement.source)
    seen: dict[str, int] = {name: 1 for name in columns}
    all_column_sets = [set(columns)]
    for join in statement.joins:
        right_instance = database.table(join.table.name)
        right_columns = list(right_instance.relation.attribute_names)
        exposed = join.table.exposed_name
        right_rows: list[Row] = []
        for values in right_instance:
            row: Row = {}
            for name, value in zip(right_columns, values):
                row[f"{exposed}.{name}"] = value
            right_rows.append(row)
        for name in right_columns:
            seen[name] = seen.get(name, 0) + 1
        all_column_sets.append(set(right_columns))
        ambiguous_now = frozenset(
            name for name, count in seen.items() if count > 1
        )

        def merge(left_row: Row, right_row: Row) -> Row:
            candidate = {**left_row, **right_row}
            for name in right_columns:
                if name not in ambiguous_now:
                    candidate[name] = right_row[f"{exposed}.{name}"]
            return candidate

        def pad(left_row: Row) -> Row:
            padded = dict(left_row)
            for name in right_columns:
                padded[f"{exposed}.{name}"] = None
                if name not in ambiguous_now:
                    padded[name] = None
            return padded

        equi_keys = _equi_join_keys(
            join.condition, set(rows[0]) if rows else set(),
            {f"{exposed}.{name}" for name in right_columns},
        )
        joined: list[Row] = []
        if equi_keys is not None:
            # Hash join on `left_key = right_key`.
            left_key, right_key = equi_keys
            index: dict[object, list[Row]] = {}
            for right_row in right_rows:
                value = right_row.get(right_key)
                if value is not None:
                    index.setdefault(value, []).append(right_row)
            for left_row in rows:
                matches = index.get(left_row.get(left_key), ())
                if matches:
                    joined.extend(
                        merge(left_row, right_row) for right_row in matches
                    )
                elif join.kind == "left":
                    joined.append(pad(left_row))
        else:
            for left_row in rows:
                matched = False
                for right_row in right_rows:
                    candidate = merge(left_row, right_row)
                    verdict = evaluate(
                        join.condition, _Scope(candidate, ambiguous_now)
                    )
                    if verdict is True:
                        joined.append(candidate)
                        matched = True
                if not matched and join.kind == "left":
                    joined.append(pad(left_row))
        rows = joined
    ambiguous = frozenset(name for name, count in seen.items() if count > 1)
    return rows, ambiguous


def _has_aggregates(statement: Select) -> bool:
    def contains(expression) -> bool:
        if isinstance(expression, Aggregate):
            return True
        if isinstance(expression, BinaryOp):
            return contains(expression.left) or contains(expression.right)
        if isinstance(expression, UnaryOp):
            return contains(expression.operand)
        if isinstance(expression, (IsNull,)):
            return contains(expression.operand)
        return False

    return any(contains(item.expression) for item in statement.items) or (
        statement.having is not None and contains(statement.having)
    )


def _aggregate_value(
    aggregate: Aggregate, group: list[Row], ambiguous: frozenset[str]
) -> object:
    if isinstance(aggregate.argument, Star):
        if aggregate.function != "COUNT":
            raise SqlError(f"{aggregate.function}(*) is not supported")
        return len(group)
    values = [
        evaluate(aggregate.argument, _Scope(row, ambiguous)) for row in group
    ]
    values = [value for value in values if value is not None]
    if aggregate.distinct:
        unique: list[object] = []
        for value in values:
            if value not in unique:
                unique.append(value)
        values = unique
    if aggregate.function == "COUNT":
        return len(values)
    if not values:
        return None
    if aggregate.function == "SUM":
        return sum(values)
    if aggregate.function == "AVG":
        return sum(values) / len(values)
    if aggregate.function == "MIN":
        return min(values)
    if aggregate.function == "MAX":
        return max(values)
    if aggregate.function == "GROUP_CONCAT":
        return ", ".join(str(value) for value in values)
    raise SqlError(f"unsupported aggregate {aggregate.function!r}")


def _evaluate_with_aggregates(
    expression: Expression,
    group: list[Row],
    ambiguous: frozenset[str],
) -> object:
    if isinstance(expression, Aggregate):
        return _aggregate_value(expression, group, ambiguous)
    if isinstance(expression, BinaryOp):
        rebuilt = BinaryOp(
            expression.operator,
            Literal(_evaluate_with_aggregates(expression.left, group, ambiguous)),
            Literal(
                _evaluate_with_aggregates(expression.right, group, ambiguous)
            ),
        )
        return _evaluate_binary(rebuilt, _Scope({}, ambiguous))
    if isinstance(expression, UnaryOp):
        inner = _evaluate_with_aggregates(expression.operand, group, ambiguous)
        if expression.operator == "NOT":
            return None if inner is None else not bool(inner)
        return None if inner is None else -inner
    # Non-aggregate expressions are evaluated on the group's first row
    # (they must be functionally dependent on the grouping key).
    representative = group[0] if group else {}
    return evaluate(expression, _Scope(representative, ambiguous))


def _sort_key(value: object):
    """NULL sorts smallest (first ascending, last descending)."""
    return (
        value is not None,
        str(type(value).__name__),
        value if value is not None else 0,
    )


def _output_name(item, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expression, ColumnRef):
        return item.expression.name
    if isinstance(item.expression, Aggregate):
        return item.expression.function.lower()
    return f"column{index + 1}"


def _unique_output_name(output: Row, item, index: int) -> str:
    """Duplicate select-list names get numeric suffixes (dict rows cannot
    carry two columns with the same name)."""
    name = _output_name(item, index)
    if name not in output:
        return name
    suffix = 2
    while f"{name}_{suffix}" in output:
        suffix += 1
    return f"{name}_{suffix}"


def execute_select(database: Database, statement: Select) -> list[Row]:
    if statement.source is None:
        rows: list[Row] = [{}]
        ambiguous: frozenset[str] = frozenset()
    else:
        rows, ambiguous = _join_rows(database, statement)

    if statement.where is not None:
        rows = [
            row
            for row in rows
            if evaluate(statement.where, _Scope(row, ambiguous)) is True
        ]

    aggregated = bool(_has_aggregates(statement) or statement.group_by)
    if not aggregated and statement.order_by:
        # Plain selects sort before projection so any source column works.
        for order in reversed(statement.order_by):
            rows.sort(
                key=lambda row, o=order: _sort_key(
                    evaluate(o.expression, _Scope(row, ambiguous))
                ),
                reverse=order.descending,
            )
    if aggregated:
        groups: dict[tuple, list[Row]] = {}
        if statement.group_by:
            for row in rows:
                key = tuple(
                    evaluate(expression, _Scope(row, ambiguous))
                    for expression in statement.group_by
                )
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = rows
        result: list[Row] = []
        for group in groups.values():
            if statement.having is not None:
                verdict = _evaluate_with_aggregates(
                    statement.having, group, ambiguous
                )
                if verdict is not True:
                    continue
            output: Row = {}
            for index, item in enumerate(statement.items):
                if isinstance(item.expression, Star):
                    raise SqlError("'*' cannot be combined with aggregation")
                output[
                    _unique_output_name(output, item, index)
                ] = _evaluate_with_aggregates(item.expression, group, ambiguous)
            result.append(output)
    else:
        result = []
        for row in rows:
            output: Row = {}
            for index, item in enumerate(statement.items):
                if isinstance(item.expression, Star):
                    for key, value in row.items():
                        if "." not in key or item.expression.table is not None:
                            prefix = (
                                f"{item.expression.table}."
                                if item.expression.table
                                else None
                            )
                            if prefix is None:
                                if "." not in key:
                                    output[key] = value
                            elif key.startswith(prefix):
                                output[key.split(".", 1)[1]] = value
                else:
                    output[_unique_output_name(output, item, index)] = evaluate(
                        item.expression, _Scope(row, ambiguous)
                    )
            result.append(output)

    if aggregated and statement.order_by:
        # Aggregated selects sort on the output rows (aliases / output
        # column names), like ordering by a select-list alias in SQL.
        def output_key(row: Row, order) -> object:
            if isinstance(order.expression, ColumnRef):
                name = order.expression.name
                if name in row:
                    return row[name]
            return evaluate(order.expression, _Scope(row, frozenset()))

        for order in reversed(statement.order_by):
            result.sort(
                key=lambda row, o=order: _sort_key(output_key(row, o)),
                reverse=order.descending,
            )

    if statement.distinct:
        unique: list[Row] = []
        seen: set[tuple] = set()
        for row in result:
            key = tuple(sorted((k, repr(v)) for k, v in row.items()))
            if key not in seen:
                seen.add(key)
                unique.append(row)
        result = unique

    if statement.limit is not None:
        result = result[: statement.limit]
    return result


# ----------------------------------------------------------------------
# Mutations & DDL
# ----------------------------------------------------------------------


def execute_insert(database: Database, statement: Insert) -> int:
    relation = database.relation(statement.table)
    columns = statement.columns or relation.attribute_names
    if statement.select is not None:
        selected = execute_select(database, statement.select)
        for output in selected:
            values = list(output.values())
            if len(values) != len(columns):
                raise SqlError(
                    f"INSERT ... SELECT arity mismatch: {len(columns)} "
                    f"columns but {len(values)} selected values"
                )
            database.insert(statement.table, dict(zip(columns, values)))
        return len(selected)
    scope = _Scope({}, frozenset())
    count = 0
    for value_tuple in statement.rows:
        if len(value_tuple) != len(columns):
            raise SqlError(
                f"INSERT arity mismatch: {len(columns)} columns but "
                f"{len(value_tuple)} values"
            )
        row = {
            column: evaluate(expression, scope)
            for column, expression in zip(columns, value_tuple)
        }
        database.insert(statement.table, row)
        count += 1
    return count


def execute_update(database: Database, statement: Update) -> int:
    instance = database.table(statement.table)
    ambiguous: frozenset[str] = frozenset()

    def predicate(row: Row) -> bool:
        if statement.where is None:
            return True
        return evaluate(statement.where, _Scope(row, ambiguous)) is True

    # Evaluate assignment expressions per matching row (they may read the
    # row, e.g. SET length = length / 1000).
    updated = 0
    relation = instance.relation
    for position, values in enumerate(instance.rows):
        row = dict(zip(relation.attribute_names, values))
        if not predicate(row):
            continue
        updates = {
            column: evaluate(expression, _Scope(row, ambiguous))
            for column, expression in statement.assignments
        }
        instance.update_where(
            lambda candidate, target=row: candidate == target, updates
        )
        updated += 1
    return updated


def execute_delete(database: Database, statement: Delete) -> int:
    instance = database.table(statement.table)

    def predicate(row: Row) -> bool:
        if statement.where is None:
            return True
        return evaluate(statement.where, _Scope(row, frozenset())) is True

    return instance.delete_where(predicate)


def execute_create(database: Database, statement: CreateTable) -> int:
    attributes = [
        Attribute(column.name, DataType(column.datatype))
        for column in statement.columns
    ]
    relation = Relation(statement.name, attributes)
    database.schema.add_relation(relation)
    database.instance.register(relation)
    for column in statement.columns:
        if column.primary_key:
            database.schema.add_constraint(
                PrimaryKey(statement.name, (column.name,))
            )
        if column.not_null:
            database.schema.add_constraint(NotNull(statement.name, column.name))
        if column.unique:
            database.schema.add_constraint(
                Unique(statement.name, (column.name,))
            )
        if column.references is not None:
            ref_table, ref_column = column.references
            database.schema.add_constraint(
                foreign_key(statement.name, column.name, ref_table, ref_column)
            )
    for constraint in statement.constraints:
        if constraint.kind == "primary_key":
            database.schema.add_constraint(
                PrimaryKey(statement.name, constraint.columns)
            )
        elif constraint.kind == "unique":
            database.schema.add_constraint(
                Unique(statement.name, constraint.columns)
            )
        else:
            assert constraint.references is not None
            ref_table, ref_columns = constraint.references
            database.schema.add_constraint(
                foreign_key(
                    statement.name, constraint.columns, ref_table, ref_columns
                )
            )
    return 0


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------


def execute(database: Database, sql: str):
    """Execute one SQL statement; SELECTs return rows, others counts."""
    statement: Statement = parse(sql)
    if isinstance(statement, Select):
        return execute_select(database, statement)
    if isinstance(statement, Insert):
        return execute_insert(database, statement)
    if isinstance(statement, Update):
        return execute_update(database, statement)
    if isinstance(statement, Delete):
        return execute_delete(database, statement)
    if isinstance(statement, CreateTable):
        return execute_create(database, statement)
    raise SqlError(f"unsupported statement: {type(statement).__name__}")


def query(database: Database, sql: str) -> list[Row]:
    """Execute a SELECT and return its rows (errors on non-queries)."""
    statement = parse(sql)
    if not isinstance(statement, Select):
        raise SqlError("query() accepts SELECT statements only")
    return execute_select(database, statement)
