"""AST nodes for the SQL subset."""

from __future__ import annotations

import dataclasses


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------


class Expression:
    """Base class for expression nodes."""


@dataclasses.dataclass(frozen=True)
class Literal(Expression):
    value: object  # int, float, str, bool, or None


@dataclasses.dataclass(frozen=True)
class ColumnRef(Expression):
    name: str
    table: str | None = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclasses.dataclass(frozen=True)
class Star(Expression):
    table: str | None = None


@dataclasses.dataclass(frozen=True)
class BinaryOp(Expression):
    operator: str  # =, <>, <, <=, >, >=, AND, OR, +, -, *, /, LIKE, ||
    left: Expression
    right: Expression


@dataclasses.dataclass(frozen=True)
class UnaryOp(Expression):
    operator: str  # NOT, -
    operand: Expression


@dataclasses.dataclass(frozen=True)
class IsNull(Expression):
    operand: Expression
    negated: bool = False


@dataclasses.dataclass(frozen=True)
class InList(Expression):
    operand: Expression
    options: tuple[Expression, ...]
    negated: bool = False


@dataclasses.dataclass(frozen=True)
class Between(Expression):
    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclasses.dataclass(frozen=True)
class Aggregate(Expression):
    function: str  # COUNT, SUM, AVG, MIN, MAX, GROUP_CONCAT
    argument: Expression | Star
    distinct: bool = False


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class SelectItem:
    expression: Expression
    alias: str | None = None


@dataclasses.dataclass(frozen=True)
class TableRef:
    name: str
    alias: str | None = None

    @property
    def exposed_name(self) -> str:
        return self.alias or self.name


@dataclasses.dataclass(frozen=True)
class Join:
    table: TableRef
    condition: Expression
    kind: str = "inner"  # "inner" or "left"


@dataclasses.dataclass(frozen=True)
class OrderItem:
    expression: Expression
    descending: bool = False


@dataclasses.dataclass(frozen=True)
class Select:
    items: tuple[SelectItem, ...]
    source: TableRef | None
    joins: tuple[Join, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: int | None = None
    distinct: bool = False


@dataclasses.dataclass(frozen=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    rows: tuple[tuple[Expression, ...], ...] = ()
    select: "Select | None" = None  # INSERT ... SELECT form


@dataclasses.dataclass(frozen=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclasses.dataclass(frozen=True)
class Delete:
    table: str
    where: Expression | None = None


@dataclasses.dataclass(frozen=True)
class ColumnDef:
    name: str
    datatype: str
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    references: tuple[str, str] | None = None  # (table, column)


@dataclasses.dataclass(frozen=True)
class TableConstraint:
    kind: str  # primary_key, unique, foreign_key
    columns: tuple[str, ...]
    references: tuple[str, tuple[str, ...]] | None = None


@dataclasses.dataclass(frozen=True)
class CreateTable:
    name: str
    columns: tuple[ColumnDef, ...]
    constraints: tuple[TableConstraint, ...] = ()


Statement = Select | Insert | Update | Delete | CreateTable
