"""Recursive-descent parser for the SQL subset.

Grammar (informal)::

    statement   := select | insert | update | delete | create ;
    select      := SELECT [DISTINCT] items FROM table_ref join*
                   [WHERE expr] [GROUP BY expr_list [HAVING expr]]
                   [ORDER BY order_list] [LIMIT n]
    join        := [LEFT | INNER] JOIN table_ref ON expr
    insert      := INSERT INTO name [(cols)] VALUES tuple (, tuple)*
    update      := UPDATE name SET col = expr (, col = expr)* [WHERE expr]
    delete      := DELETE FROM name [WHERE expr]
    create      := CREATE TABLE name ( column_def | table_constraint , ... )

Expressions support AND/OR/NOT, comparisons, IS [NOT] NULL, [NOT] IN,
[NOT] BETWEEN, LIKE, arithmetic (+ - * /), string concatenation (||),
parentheses, qualified column references, literals, and the aggregates
COUNT / SUM / AVG / MIN / MAX / GROUP_CONCAT.
"""

from __future__ import annotations

from .ast import (
    Aggregate,
    Between,
    BinaryOp,
    ColumnDef,
    ColumnRef,
    CreateTable,
    Delete,
    Expression,
    InList,
    Insert,
    IsNull,
    Join,
    Literal,
    OrderItem,
    Select,
    SelectItem,
    Star,
    Statement,
    TableConstraint,
    TableRef,
    UnaryOp,
    Update,
)
from .lexer import SqlError, Token, TokenType, tokenize

_AGGREGATES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "GROUP_CONCAT"})

_TYPE_ALIASES = {
    "INT": "integer",
    "INTEGER": "integer",
    "FLOAT": "float",
    "REAL": "float",
    "TEXT": "string",
    "STRING": "string",
    "VARCHAR": "string",
    "BOOLEAN": "boolean",
    "DATE": "date",
}


class Parser:
    """One-statement parser over a token stream."""

    def __init__(self, text: str) -> None:
        self.tokens = tokenize(text)
        self.position = 0

    # -- token plumbing ---------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def check(self, token_type: TokenType, value: str | None = None) -> bool:
        return self.current.matches(token_type, value)

    def accept(self, token_type: TokenType, value: str | None = None) -> bool:
        if self.check(token_type, value):
            self.advance()
            return True
        return False

    def expect(self, token_type: TokenType, value: str | None = None) -> Token:
        if not self.check(token_type, value):
            raise SqlError(
                f"expected {value or token_type.value!r}, got "
                f"{self.current.value!r} at position {self.current.position}"
            )
        return self.advance()

    def expect_identifier(self) -> str:
        if self.check(TokenType.IDENTIFIER):
            return self.advance().value
        # Unreserved-ish keywords double as identifiers in column lists.
        if self.check(TokenType.KEYWORD) and self.current.value in (
            "KEY",
            "DATE",
        ):
            return self.advance().value.lower()
        raise SqlError(
            f"expected identifier, got {self.current.value!r} at position "
            f"{self.current.position}"
        )

    # -- entry points -------------------------------------------------------

    def parse_statement(self) -> Statement:
        if self.check(TokenType.KEYWORD, "SELECT"):
            statement = self.parse_select()
        elif self.check(TokenType.KEYWORD, "INSERT"):
            statement = self.parse_insert()
        elif self.check(TokenType.KEYWORD, "UPDATE"):
            statement = self.parse_update()
        elif self.check(TokenType.KEYWORD, "DELETE"):
            statement = self.parse_delete()
        elif self.check(TokenType.KEYWORD, "CREATE"):
            statement = self.parse_create()
        else:
            raise SqlError(
                f"unsupported statement starting with {self.current.value!r}"
            )
        self.accept(TokenType.PUNCTUATION, ";")
        if not self.check(TokenType.END):
            raise SqlError(
                f"unexpected trailing input at position {self.current.position}"
            )
        return statement

    # -- SELECT -------------------------------------------------------------

    def parse_select(self) -> Select:
        self.expect(TokenType.KEYWORD, "SELECT")
        distinct = self.accept(TokenType.KEYWORD, "DISTINCT")
        items = [self.parse_select_item()]
        while self.accept(TokenType.PUNCTUATION, ","):
            items.append(self.parse_select_item())

        source = None
        joins: list[Join] = []
        if self.accept(TokenType.KEYWORD, "FROM"):
            source = self.parse_table_ref()
            while True:
                kind = None
                if self.accept(TokenType.KEYWORD, "LEFT"):
                    kind = "left"
                    self.expect(TokenType.KEYWORD, "JOIN")
                elif self.accept(TokenType.KEYWORD, "INNER"):
                    kind = "inner"
                    self.expect(TokenType.KEYWORD, "JOIN")
                elif self.accept(TokenType.KEYWORD, "JOIN"):
                    kind = "inner"
                if kind is None:
                    break
                table = self.parse_table_ref()
                self.expect(TokenType.KEYWORD, "ON")
                condition = self.parse_expression()
                joins.append(Join(table, condition, kind))

        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_expression()

        group_by: list[Expression] = []
        having = None
        if self.accept(TokenType.KEYWORD, "GROUP"):
            self.expect(TokenType.KEYWORD, "BY")
            group_by.append(self.parse_expression())
            while self.accept(TokenType.PUNCTUATION, ","):
                group_by.append(self.parse_expression())
            if self.accept(TokenType.KEYWORD, "HAVING"):
                having = self.parse_expression()

        order_by: list[OrderItem] = []
        if self.accept(TokenType.KEYWORD, "ORDER"):
            self.expect(TokenType.KEYWORD, "BY")
            order_by.append(self.parse_order_item())
            while self.accept(TokenType.PUNCTUATION, ","):
                order_by.append(self.parse_order_item())

        limit = None
        if self.accept(TokenType.KEYWORD, "LIMIT"):
            token = self.expect(TokenType.NUMBER)
            limit = int(token.value)

        return Select(
            items=tuple(items),
            source=source,
            joins=tuple(joins),
            where=where,
            group_by=tuple(group_by),
            having=having,
            order_by=tuple(order_by),
            limit=limit,
            distinct=distinct,
        )

    def parse_select_item(self) -> SelectItem:
        expression = self.parse_expression()
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self.expect_identifier()
        elif self.check(TokenType.IDENTIFIER):
            alias = self.advance().value
        return SelectItem(expression, alias)

    def parse_order_item(self) -> OrderItem:
        expression = self.parse_expression()
        descending = False
        if self.accept(TokenType.KEYWORD, "DESC"):
            descending = True
        else:
            self.accept(TokenType.KEYWORD, "ASC")
        return OrderItem(expression, descending)

    def parse_table_ref(self) -> TableRef:
        name = self.expect_identifier()
        alias = None
        if self.accept(TokenType.KEYWORD, "AS"):
            alias = self.expect_identifier()
        elif self.check(TokenType.IDENTIFIER):
            alias = self.advance().value
        return TableRef(name, alias)

    # -- INSERT / UPDATE / DELETE ---------------------------------------------

    def parse_insert(self) -> Insert:
        self.expect(TokenType.KEYWORD, "INSERT")
        self.expect(TokenType.KEYWORD, "INTO")
        table = self.expect_identifier()
        columns: list[str] = []
        if self.accept(TokenType.PUNCTUATION, "("):
            columns.append(self.expect_identifier())
            while self.accept(TokenType.PUNCTUATION, ","):
                columns.append(self.expect_identifier())
            self.expect(TokenType.PUNCTUATION, ")")
        if self.check(TokenType.KEYWORD, "SELECT"):
            return Insert(
                table, tuple(columns), (), select=self.parse_select()
            )
        self.expect(TokenType.KEYWORD, "VALUES")
        rows = [self.parse_value_tuple()]
        while self.accept(TokenType.PUNCTUATION, ","):
            rows.append(self.parse_value_tuple())
        return Insert(table, tuple(columns), tuple(rows))

    def parse_value_tuple(self) -> tuple[Expression, ...]:
        self.expect(TokenType.PUNCTUATION, "(")
        values = [self.parse_expression()]
        while self.accept(TokenType.PUNCTUATION, ","):
            values.append(self.parse_expression())
        self.expect(TokenType.PUNCTUATION, ")")
        return tuple(values)

    def parse_update(self) -> Update:
        self.expect(TokenType.KEYWORD, "UPDATE")
        table = self.expect_identifier()
        self.expect(TokenType.KEYWORD, "SET")
        assignments = [self.parse_assignment()]
        while self.accept(TokenType.PUNCTUATION, ","):
            assignments.append(self.parse_assignment())
        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_expression()
        return Update(table, tuple(assignments), where)

    def parse_assignment(self) -> tuple[str, Expression]:
        column = self.expect_identifier()
        self.expect(TokenType.OPERATOR, "=")
        return (column, self.parse_expression())

    def parse_delete(self) -> Delete:
        self.expect(TokenType.KEYWORD, "DELETE")
        self.expect(TokenType.KEYWORD, "FROM")
        table = self.expect_identifier()
        where = None
        if self.accept(TokenType.KEYWORD, "WHERE"):
            where = self.parse_expression()
        return Delete(table, where)

    # -- CREATE TABLE -----------------------------------------------------------

    def parse_create(self) -> CreateTable:
        self.expect(TokenType.KEYWORD, "CREATE")
        self.expect(TokenType.KEYWORD, "TABLE")
        name = self.expect_identifier()
        self.expect(TokenType.PUNCTUATION, "(")
        columns: list[ColumnDef] = []
        constraints: list[TableConstraint] = []
        while True:
            if self.check(TokenType.KEYWORD, "PRIMARY") or self.check(
                TokenType.KEYWORD, "UNIQUE"
            ) or self.check(TokenType.KEYWORD, "FOREIGN"):
                constraints.append(self.parse_table_constraint())
            else:
                columns.append(self.parse_column_def())
            if not self.accept(TokenType.PUNCTUATION, ","):
                break
        self.expect(TokenType.PUNCTUATION, ")")
        return CreateTable(name, tuple(columns), tuple(constraints))

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_identifier()
        type_token = self.expect(TokenType.KEYWORD)
        datatype = _TYPE_ALIASES.get(type_token.value)
        if datatype is None:
            raise SqlError(f"unknown column type {type_token.value!r}")
        if self.accept(TokenType.PUNCTUATION, "("):  # VARCHAR(255)
            self.expect(TokenType.NUMBER)
            self.expect(TokenType.PUNCTUATION, ")")
        primary_key = not_null = unique_flag = False
        references = None
        while True:
            if self.accept(TokenType.KEYWORD, "PRIMARY"):
                self.expect(TokenType.KEYWORD, "KEY")
                primary_key = True
            elif self.accept(TokenType.KEYWORD, "NOT"):
                self.expect(TokenType.KEYWORD, "NULL")
                not_null = True
            elif self.accept(TokenType.KEYWORD, "UNIQUE"):
                unique_flag = True
            elif self.accept(TokenType.KEYWORD, "REFERENCES"):
                ref_table = self.expect_identifier()
                self.expect(TokenType.PUNCTUATION, "(")
                ref_column = self.expect_identifier()
                self.expect(TokenType.PUNCTUATION, ")")
                references = (ref_table, ref_column)
            else:
                break
        return ColumnDef(
            name, datatype, primary_key, not_null, unique_flag, references
        )

    def parse_table_constraint(self) -> TableConstraint:
        if self.accept(TokenType.KEYWORD, "PRIMARY"):
            self.expect(TokenType.KEYWORD, "KEY")
            return TableConstraint("primary_key", self.parse_column_list())
        if self.accept(TokenType.KEYWORD, "UNIQUE"):
            return TableConstraint("unique", self.parse_column_list())
        self.expect(TokenType.KEYWORD, "FOREIGN")
        self.expect(TokenType.KEYWORD, "KEY")
        columns = self.parse_column_list()
        self.expect(TokenType.KEYWORD, "REFERENCES")
        ref_table = self.expect_identifier()
        ref_columns = self.parse_column_list()
        return TableConstraint(
            "foreign_key", columns, (ref_table, ref_columns)
        )

    def parse_column_list(self) -> tuple[str, ...]:
        self.expect(TokenType.PUNCTUATION, "(")
        columns = [self.expect_identifier()]
        while self.accept(TokenType.PUNCTUATION, ","):
            columns.append(self.expect_identifier())
        self.expect(TokenType.PUNCTUATION, ")")
        return tuple(columns)

    # -- expressions (precedence climbing) ---------------------------------------

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept(TokenType.KEYWORD, "OR"):
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.accept(TokenType.KEYWORD, "AND"):
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.accept(TokenType.KEYWORD, "NOT"):
            return UnaryOp("NOT", self.parse_not())
        return self.parse_predicate()

    def parse_predicate(self) -> Expression:
        left = self.parse_additive()
        if self.accept(TokenType.KEYWORD, "IS"):
            negated = self.accept(TokenType.KEYWORD, "NOT")
            self.expect(TokenType.KEYWORD, "NULL")
            return IsNull(left, negated)
        negated = False
        if self.check(TokenType.KEYWORD, "NOT"):
            lookahead = self.tokens[self.position + 1]
            if lookahead.value in ("IN", "BETWEEN", "LIKE"):
                self.advance()
                negated = True
        if self.accept(TokenType.KEYWORD, "IN"):
            self.expect(TokenType.PUNCTUATION, "(")
            options = [self.parse_expression()]
            while self.accept(TokenType.PUNCTUATION, ","):
                options.append(self.parse_expression())
            self.expect(TokenType.PUNCTUATION, ")")
            return InList(left, tuple(options), negated)
        if self.accept(TokenType.KEYWORD, "BETWEEN"):
            low = self.parse_additive()
            self.expect(TokenType.KEYWORD, "AND")
            high = self.parse_additive()
            return Between(left, low, high, negated)
        if self.accept(TokenType.KEYWORD, "LIKE"):
            pattern = self.parse_additive()
            expression = BinaryOp("LIKE", left, pattern)
            return UnaryOp("NOT", expression) if negated else expression
        for operator in ("=", "<>", "!=", "<=", ">=", "<", ">"):
            if self.accept(TokenType.OPERATOR, operator):
                normalised = "<>" if operator == "!=" else operator
                return BinaryOp(normalised, left, self.parse_additive())
        return left

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            if self.accept(TokenType.OPERATOR, "+"):
                left = BinaryOp("+", left, self.parse_multiplicative())
            elif self.accept(TokenType.OPERATOR, "-"):
                left = BinaryOp("-", left, self.parse_multiplicative())
            elif self.accept(TokenType.OPERATOR, "||"):
                left = BinaryOp("||", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            if self.accept(TokenType.OPERATOR, "*"):
                left = BinaryOp("*", left, self.parse_unary())
            elif self.accept(TokenType.OPERATOR, "/"):
                left = BinaryOp("/", left, self.parse_unary())
            else:
                return left

    def parse_unary(self) -> Expression:
        if self.accept(TokenType.OPERATOR, "-"):
            return UnaryOp("-", self.parse_unary())
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current
        if token.type is TokenType.NUMBER:
            self.advance()
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.type is TokenType.STRING:
            self.advance()
            return Literal(token.value)
        if token.matches(TokenType.KEYWORD, "NULL"):
            self.advance()
            return Literal(None)
        if token.matches(TokenType.KEYWORD, "TRUE"):
            self.advance()
            return Literal(True)
        if token.matches(TokenType.KEYWORD, "FALSE"):
            self.advance()
            return Literal(False)
        if token.type is TokenType.KEYWORD and token.value in _AGGREGATES:
            return self.parse_aggregate()
        if token.matches(TokenType.OPERATOR, "*"):
            self.advance()
            return Star()
        if self.accept(TokenType.PUNCTUATION, "("):
            inner = self.parse_expression()
            self.expect(TokenType.PUNCTUATION, ")")
            return inner
        if token.type is TokenType.IDENTIFIER:
            name = self.advance().value
            if self.accept(TokenType.PUNCTUATION, "."):
                if self.accept(TokenType.OPERATOR, "*"):
                    return Star(table=name)
                column = self.expect_identifier()
                return ColumnRef(column, table=name)
            return ColumnRef(name)
        raise SqlError(
            f"unexpected token {token.value!r} at position {token.position}"
        )

    def parse_aggregate(self) -> Aggregate:
        function = self.advance().value
        self.expect(TokenType.PUNCTUATION, "(")
        distinct = self.accept(TokenType.KEYWORD, "DISTINCT")
        if self.accept(TokenType.OPERATOR, "*"):
            argument: Expression | Star = Star()
        else:
            argument = self.parse_expression()
        self.expect(TokenType.PUNCTUATION, ")")
        return Aggregate(function, argument, distinct)


def parse(text: str) -> Statement:
    """Parse one SQL statement."""
    return Parser(text).parse_statement()
