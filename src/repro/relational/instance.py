"""Relation and database instances: the tuples behind the schemas.

Instances are stored **column-major**: one value list per attribute, in
schema order.  Every consumer in this library — profiling statistics,
UCC/IND/FD discovery, CSG cardinality counting, practitioner simulation —
scans whole columns or whole relations, so the column layout serves the
hot paths directly (``column()`` hands back a batch without per-row tuple
gathering) while the row view (``rows``, iteration) is materialised on
demand and memoised per mutation version.

The canonical byte form of a column is produced by
:mod:`repro.relational.columnar` (typed arrays + null bitmask);
:meth:`RelationInstance.encoded_columns` memoises it per version for the
content-fingerprint cache keys and the process-backend scenario spool.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from .columnar import ColumnBlock, encode_column
from .datatypes import cast
from .errors import InstanceError, UnknownRelationError
from .schema import Relation, Schema

Row = tuple[object, ...]


class RelationInstance:
    """The tuples of one relation, stored column-major."""

    def __init__(self, relation: Relation, rows: Iterable[Sequence[object]] = ()) -> None:
        self.relation = relation
        self._columns: list[list[object]] = [
            [] for _ in relation.attributes
        ]
        self._count = 0
        self._version = 0
        #: Per-version memos of the row view and the canonical encoding.
        self._row_memo: tuple[int, tuple[Row, ...]] | None = None
        self._encoded_memo: tuple[int, tuple[ColumnBlock, ...]] | None = None
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, row: Sequence[object] | Mapping[str, object]) -> Row:
        """Insert a tuple, casting values to the attribute datatypes.

        Accepts either a positional sequence or a name→value mapping;
        missing attributes in a mapping become NULL.
        """
        if isinstance(row, Mapping):
            values = [row.get(name) for name in self.relation.attribute_names]
            unknown = set(row) - set(self.relation.attribute_names)
            if unknown:
                raise InstanceError(
                    f"unknown attributes for {self.relation.name!r}: "
                    f"{sorted(unknown)}"
                )
        else:
            values = list(row)
            if len(values) != self.relation.arity():
                raise InstanceError(
                    f"arity mismatch for {self.relation.name!r}: expected "
                    f"{self.relation.arity()}, got {len(values)}"
                )
        typed = tuple(
            cast(value, attribute.datatype)
            for value, attribute in zip(values, self.relation.attributes)
        )
        for column, value in zip(self._columns, typed):
            column.append(value)
        self._count += 1
        self._version += 1
        return typed

    def insert_all(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.insert(row)

    def load_typed_columns(
        self,
        columns: Sequence[Sequence[object]],
        count: int | None = None,
    ) -> None:
        """Replace all content with already-typed columns, without casting.

        The rehydration path of the process-backend spool: decoded
        columnar blocks hold exactly the values the original ``insert``
        casts produced, so re-casting them would only cost time.  Columns
        must match the relation's arity and share one length; ``count``
        covers the zero-attribute corner where no column carries it.
        """
        if len(columns) != self.relation.arity():
            raise InstanceError(
                f"column count mismatch for {self.relation.name!r}: "
                f"expected {self.relation.arity()}, got {len(columns)}"
            )
        lengths = {len(column) for column in columns}
        if len(lengths) > 1:
            raise InstanceError(
                f"ragged columns for {self.relation.name!r}: "
                f"lengths {sorted(lengths)}"
            )
        if count is None:
            count = lengths.pop() if lengths else 0
        elif lengths and lengths.pop() != count:
            raise InstanceError(
                f"declared count disagrees with column length for "
                f"{self.relation.name!r}"
            )
        self._columns = [list(column) for column in columns]
        self._count = count
        self._version += 1

    def delete_where(self, predicate) -> int:
        """Delete tuples matching ``predicate(row_dict)``; returns the count."""
        keep: list[int] = []
        deleted = 0
        for position in range(self._count):
            if predicate(self.row_dict(self._row_at(position))):
                deleted += 1
            else:
                keep.append(position)
        if deleted:
            self._columns = [
                [column[position] for position in keep]
                for column in self._columns
            ]
            self._count = len(keep)
            self._version += 1
        return deleted

    def update_where(self, predicate, updates: Mapping[str, object]) -> int:
        """Set ``updates`` on tuples matching ``predicate``; returns the count."""
        indices = [self.relation.index_of(name) for name in updates]
        new_values = [
            cast(value, self.relation.attributes[index].datatype)
            for index, value in zip(indices, updates.values())
        ]
        updated = 0
        for position in range(self._count):
            if not predicate(self.row_dict(self._row_at(position))):
                continue
            for index, value in zip(indices, new_values):
                self._columns[index][position] = value
            updated += 1
        if updated:
            self._version += 1
        return updated

    def map_column(self, attribute_name: str, transform) -> int:
        """Apply ``transform(value)`` to every non-null value of a column."""
        index = self.relation.index_of(attribute_name)
        datatype = self.relation.attributes[index].datatype
        column = self._columns[index]
        changed = 0
        for position, value in enumerate(column):
            if value is None:
                continue
            new_value = cast(transform(value), datatype)
            if new_value != value:
                column[position] = new_value
                changed += 1
        if changed:
            self._version += 1
        return changed

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """A counter bumped on every mutation.

        Content-keyed caches (:mod:`repro.runtime`) use it to memoise the
        expensive content fingerprint of an instance: an unchanged version
        guarantees unchanged tuples, a bumped version invalidates the
        memoised fingerprint (and with it every derived cache entry).
        """
        return self._version

    def _row_at(self, position: int) -> Row:
        return tuple(column[position] for column in self._columns)

    @property
    def rows(self) -> tuple[Row, ...]:
        memo = self._row_memo
        if memo is not None and memo[0] == self._version:
            return memo[1]
        if self._columns:
            materialised = tuple(zip(*self._columns))
        else:  # zero-attribute relation: len(zip()) == 0 regardless of count
            materialised = ()
        self._row_memo = (self._version, materialised)
        return materialised

    def row_dict(self, row: Row) -> dict[str, object]:
        return dict(zip(self.relation.attribute_names, row))

    def dicts(self) -> Iterator[dict[str, object]]:
        for row in self.rows:
            yield self.row_dict(row)

    def column(self, attribute_name: str) -> list[object]:
        """All values (including NULLs) of one attribute, in tuple order."""
        index = self.relation.index_of(attribute_name)
        return list(self._columns[index])

    def columns(self) -> list[list[object]]:
        """All columns in schema attribute order (copies, batch view)."""
        return [list(column) for column in self._columns]

    def distinct(self, attribute_name: str) -> set[object]:
        """The distinct non-null values of one attribute."""
        index = self.relation.index_of(attribute_name)
        return {
            value for value in self._columns[index] if value is not None
        }

    def encoded_columns(self) -> tuple[ColumnBlock, ...]:
        """The canonical typed-array encoding of every column, in schema
        attribute order; memoised per mutation version.

        This is the content form shared by fingerprinting
        (:mod:`repro.runtime.cache`) and process-backend shipping
        (:mod:`repro.runtime.spool`).
        """
        memo = self._encoded_memo
        if memo is not None and memo[0] == self._version:
            return memo[1]
        encoded = tuple(encode_column(column) for column in self._columns)
        self._encoded_memo = (self._version, encoded)
        return encoded

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Row]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return (
            f"RelationInstance({self.relation.name!r}, {self._count} rows)"
        )


class DatabaseInstance:
    """Instances for every relation of a schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._instances: dict[str, RelationInstance] = {
            relation.name: RelationInstance(relation)
            for relation in schema.relations
        }

    def register(self, relation: Relation) -> RelationInstance:
        """Register a relation added to the schema after construction
        (e.g. by a SQL ``CREATE TABLE``)."""
        if relation.name in self._instances:
            raise InstanceError(
                f"relation {relation.name!r} is already registered"
            )
        instance = RelationInstance(relation)
        self._instances[relation.name] = instance
        return instance

    def __getitem__(self, relation_name: str) -> RelationInstance:
        try:
            return self._instances[relation_name]
        except KeyError:
            raise UnknownRelationError(relation_name) from None

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._instances

    def __iter__(self) -> Iterator[RelationInstance]:
        return iter(self._instances.values())

    def insert(self, relation_name: str, row: Sequence[object] | Mapping[str, object]) -> Row:
        return self[relation_name].insert(row)

    def insert_all(self, relation_name: str, rows: Iterable[Sequence[object]]) -> None:
        self[relation_name].insert_all(rows)

    def total_rows(self) -> int:
        return sum(len(instance) for instance in self._instances.values())

    @property
    def version(self) -> tuple[tuple[str, int], ...]:
        """Per-relation mutation counters, sorted by relation name.

        Changes whenever any relation instance mutates or a new relation
        is registered; cheap to compute and compare, which is all the
        runtime's fingerprint memoisation needs.
        """
        return tuple(
            (name, self._instances[name].version)
            for name in sorted(self._instances)
        )

    def __repr__(self) -> str:
        return (
            f"DatabaseInstance({self.schema.name!r}, "
            f"{self.total_rows()} rows over {len(self._instances)} relations)"
        )
