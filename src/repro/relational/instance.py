"""Relation and database instances: the tuples behind the schemas.

Instances are deliberately simple — lists of value tuples — because every
consumer in this library (profiling statistics, CSG cardinality counting,
practitioner simulation) scans columns or joins relations wholesale rather
than doing point lookups.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator, Mapping, Sequence

from .datatypes import cast
from .errors import InstanceError, UnknownRelationError
from .schema import Relation, Schema

Row = tuple[object, ...]


class RelationInstance:
    """The tuples of one relation."""

    def __init__(self, relation: Relation, rows: Iterable[Sequence[object]] = ()) -> None:
        self.relation = relation
        self._rows: list[Row] = []
        self._version = 0
        for row in rows:
            self.insert(row)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def insert(self, row: Sequence[object] | Mapping[str, object]) -> Row:
        """Insert a tuple, casting values to the attribute datatypes.

        Accepts either a positional sequence or a name→value mapping;
        missing attributes in a mapping become NULL.
        """
        if isinstance(row, Mapping):
            values = [row.get(name) for name in self.relation.attribute_names]
            unknown = set(row) - set(self.relation.attribute_names)
            if unknown:
                raise InstanceError(
                    f"unknown attributes for {self.relation.name!r}: "
                    f"{sorted(unknown)}"
                )
        else:
            values = list(row)
            if len(values) != self.relation.arity():
                raise InstanceError(
                    f"arity mismatch for {self.relation.name!r}: expected "
                    f"{self.relation.arity()}, got {len(values)}"
                )
        typed = tuple(
            cast(value, attribute.datatype)
            for value, attribute in zip(values, self.relation.attributes)
        )
        self._rows.append(typed)
        self._version += 1
        return typed

    def insert_all(self, rows: Iterable[Sequence[object]]) -> None:
        for row in rows:
            self.insert(row)

    def delete_where(self, predicate) -> int:
        """Delete tuples matching ``predicate(row_dict)``; returns the count."""
        keep: list[Row] = []
        deleted = 0
        for row in self._rows:
            if predicate(self.row_dict(row)):
                deleted += 1
            else:
                keep.append(row)
        self._rows = keep
        if deleted:
            self._version += 1
        return deleted

    def update_where(self, predicate, updates: Mapping[str, object]) -> int:
        """Set ``updates`` on tuples matching ``predicate``; returns the count."""
        indices = [self.relation.index_of(name) for name in updates]
        new_values = [
            cast(value, self.relation.attributes[index].datatype)
            for index, value in zip(indices, updates.values())
        ]
        updated = 0
        for position, row in enumerate(self._rows):
            if not predicate(self.row_dict(row)):
                continue
            mutable = list(row)
            for index, value in zip(indices, new_values):
                mutable[index] = value
            self._rows[position] = tuple(mutable)
            updated += 1
        if updated:
            self._version += 1
        return updated

    def map_column(self, attribute_name: str, transform) -> int:
        """Apply ``transform(value)`` to every non-null value of a column."""
        index = self.relation.index_of(attribute_name)
        datatype = self.relation.attributes[index].datatype
        changed = 0
        for position, row in enumerate(self._rows):
            value = row[index]
            if value is None:
                continue
            new_value = cast(transform(value), datatype)
            if new_value != value:
                mutable = list(row)
                mutable[index] = new_value
                self._rows[position] = tuple(mutable)
                changed += 1
        if changed:
            self._version += 1
        return changed

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------

    @property
    def version(self) -> int:
        """A counter bumped on every mutation.

        Content-keyed caches (:mod:`repro.runtime`) use it to memoise the
        expensive content fingerprint of an instance: an unchanged version
        guarantees unchanged tuples, a bumped version invalidates the
        memoised fingerprint (and with it every derived cache entry).
        """
        return self._version

    @property
    def rows(self) -> tuple[Row, ...]:
        return tuple(self._rows)

    def row_dict(self, row: Row) -> dict[str, object]:
        return dict(zip(self.relation.attribute_names, row))

    def dicts(self) -> Iterator[dict[str, object]]:
        for row in self._rows:
            yield self.row_dict(row)

    def column(self, attribute_name: str) -> list[object]:
        """All values (including NULLs) of one attribute, in tuple order."""
        index = self.relation.index_of(attribute_name)
        return [row[index] for row in self._rows]

    def distinct(self, attribute_name: str) -> set[object]:
        """The distinct non-null values of one attribute."""
        return {
            value for value in self.column(attribute_name) if value is not None
        }

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __repr__(self) -> str:
        return (
            f"RelationInstance({self.relation.name!r}, {len(self._rows)} rows)"
        )


class DatabaseInstance:
    """Instances for every relation of a schema."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._instances: dict[str, RelationInstance] = {
            relation.name: RelationInstance(relation)
            for relation in schema.relations
        }

    def register(self, relation: Relation) -> RelationInstance:
        """Register a relation added to the schema after construction
        (e.g. by a SQL ``CREATE TABLE``)."""
        if relation.name in self._instances:
            raise InstanceError(
                f"relation {relation.name!r} is already registered"
            )
        instance = RelationInstance(relation)
        self._instances[relation.name] = instance
        return instance

    def __getitem__(self, relation_name: str) -> RelationInstance:
        try:
            return self._instances[relation_name]
        except KeyError:
            raise UnknownRelationError(relation_name) from None

    def __contains__(self, relation_name: str) -> bool:
        return relation_name in self._instances

    def __iter__(self) -> Iterator[RelationInstance]:
        return iter(self._instances.values())

    def insert(self, relation_name: str, row: Sequence[object] | Mapping[str, object]) -> Row:
        return self[relation_name].insert(row)

    def insert_all(self, relation_name: str, rows: Iterable[Sequence[object]]) -> None:
        self[relation_name].insert_all(rows)

    def total_rows(self) -> int:
        return sum(len(instance) for instance in self._instances.values())

    @property
    def version(self) -> tuple[tuple[str, int], ...]:
        """Per-relation mutation counters, sorted by relation name.

        Changes whenever any relation instance mutates or a new relation
        is registered; cheap to compute and compare, which is all the
        runtime's fingerprint memoisation needs.
        """
        return tuple(
            (name, self._instances[name].version)
            for name in sorted(self._instances)
        )

    def __repr__(self) -> str:
        return (
            f"DatabaseInstance({self.schema.name!r}, "
            f"{self.total_rows()} rows over {len(self._instances)} relations)"
        )
