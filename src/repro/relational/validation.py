"""Constraint validation: find every tuple that violates a schema constraint.

The paper assumes "every instance is valid wrt. its schema" (Section 3.1),
but validation is still needed in three places:

* asserting that generated scenario databases really are locally valid,
* counting violations that *would* arise when source data is (conceptually)
  integrated into the target (the structure conflict detector's violation
  counts, Table 3), and
* checking that the practitioner simulator's integration result is a valid
  target instance (the paper's definition of cleaning, Section 3.4).
"""

from __future__ import annotations

import dataclasses
from collections import Counter

from .constraints import (
    Constraint,
    ForeignKey,
    FunctionalDependencyConstraint,
    NotNull,
    PrimaryKey,
    Unique,
)
from .database import Database
from .errors import IntegrityError


@dataclasses.dataclass(frozen=True)
class Violation:
    """One constraint violation, with enough detail for a complexity report."""

    constraint: Constraint
    description: str
    count: int = 1

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.constraint.describe()}: {self.description}"


def _check_not_null(database: Database, constraint: NotNull) -> list[Violation]:
    column = database.table(constraint.relation).column(constraint.attribute)
    nulls = sum(1 for value in column if value is None)
    if not nulls:
        return []
    return [
        Violation(
            constraint,
            f"{nulls} NULL value(s) in {constraint.relation}.{constraint.attribute}",
            count=nulls,
        )
    ]


def _key_values(database: Database, relation: str, attributes: tuple[str, ...]):
    instance = database.table(relation)
    indices = [instance.relation.index_of(name) for name in attributes]
    for row in instance:
        yield tuple(row[index] for index in indices)


def _check_unique(
    database: Database, constraint: Unique | PrimaryKey
) -> list[Violation]:
    counts: Counter = Counter()
    for key in _key_values(database, constraint.relation, constraint.attributes):
        if any(part is None for part in key):
            continue  # SQL UNIQUE ignores NULL-containing keys
        counts[key] += 1
    duplicates = sum(count - 1 for count in counts.values() if count > 1)
    if not duplicates:
        return []
    return [
        Violation(
            constraint,
            f"{duplicates} duplicate key value(s) in "
            f"{constraint.relation}({', '.join(constraint.attributes)})",
            count=duplicates,
        )
    ]


def _check_primary_key(
    database: Database, constraint: PrimaryKey
) -> list[Violation]:
    violations = _check_unique(database, constraint)
    for attribute in constraint.attributes:
        violations.extend(
            _check_not_null(
                database, NotNull(constraint.relation, attribute)
            )
        )
    return violations


def _check_foreign_key(
    database: Database, constraint: ForeignKey
) -> list[Violation]:
    referenced_keys = set(
        _key_values(
            database, constraint.referenced, constraint.referenced_attributes
        )
    )
    dangling = 0
    for key in _key_values(database, constraint.relation, constraint.attributes):
        if any(part is None for part in key):
            continue  # SQL FK semantics: NULL-containing keys are exempt
        if key not in referenced_keys:
            dangling += 1
    if not dangling:
        return []
    return [
        Violation(
            constraint,
            f"{dangling} dangling reference(s) from "
            f"{constraint.relation}({', '.join(constraint.attributes)}) to "
            f"{constraint.referenced}",
            count=dangling,
        )
    ]


def _check_functional_dependency(
    database: Database, constraint: FunctionalDependencyConstraint
) -> list[Violation]:
    instance = database.table(constraint.relation)
    det_index = instance.relation.index_of(constraint.determinant)
    dep_index = instance.relation.index_of(constraint.dependent)
    images: dict[object, set[object]] = {}
    for row in instance:
        determinant = row[det_index]
        if determinant is None:
            continue
        images.setdefault(determinant, set()).add(row[dep_index])
    conflicting = sum(1 for deps in images.values() if len(deps) > 1)
    if not conflicting:
        return []
    return [
        Violation(
            constraint,
            f"{conflicting} determinant value(s) of "
            f"{constraint.relation}.{constraint.determinant} map to "
            f"multiple {constraint.dependent} values",
            count=conflicting,
        )
    ]


def check_constraint(database: Database, constraint: Constraint) -> list[Violation]:
    """All violations of one constraint in ``database``."""
    if isinstance(constraint, NotNull):
        return _check_not_null(database, constraint)
    if isinstance(constraint, PrimaryKey):
        return _check_primary_key(database, constraint)
    if isinstance(constraint, Unique):
        return _check_unique(database, constraint)
    if isinstance(constraint, ForeignKey):
        return _check_foreign_key(database, constraint)
    if isinstance(constraint, FunctionalDependencyConstraint):
        return _check_functional_dependency(database, constraint)
    raise TypeError(f"unsupported constraint: {type(constraint).__name__}")


def validate(database: Database) -> list[Violation]:
    """All violations of all schema constraints in ``database``."""
    violations: list[Violation] = []
    for constraint in database.schema.constraints:
        violations.extend(check_constraint(database, constraint))
    return violations


def is_valid(database: Database) -> bool:
    """Whether the instance satisfies every schema constraint."""
    return not validate(database)


def assert_valid(database: Database) -> None:
    """Raise :class:`IntegrityError` listing violations, if there are any."""
    violations = validate(database)
    if violations:
        summary = "; ".join(str(violation) for violation in violations[:10])
        if len(violations) > 10:
            summary += f"; ... ({len(violations) - 10} more)"
        raise IntegrityError(
            f"database {database.name!r} violates its constraints: {summary}"
        )
