"""Typed-array column encoding: the canonical byte form of relation data.

The relational substrate stores instances column-major
(:class:`~repro.relational.instance.RelationInstance`); this module turns
one column of Python values into a compact, *canonical* block of stdlib
typed arrays — an :mod:`array` payload plus a null bitmask — and back,
losslessly.  Three consumers share the encoding:

* **Content fingerprints** (:mod:`repro.runtime.cache`) hash
  :meth:`ColumnBlock.canonical_bytes`, so cache keys depend only on the
  typed values themselves — never on ``repr`` formatting, row order of
  dict iteration, or which executor backend produced them.
* **The scenario spool** (:mod:`repro.runtime.spool`) ships blocks to
  worker processes as base64 JSON; a rehydrated instance is
  value-identical to the original, which is what makes the process
  backend's results byte-identical to the serial oracle.
* **Batch scans**: profiling statistics and UCC/IND/FD discovery operate
  on whole columns; the column-major instance hands them the values
  without per-row tuple gathering.

Encoding kinds (chosen per column, most specific first):

===========  ==========================================================
``empty``    zero rows; no payload
``int64``    every non-null is an ``int`` (not ``bool``) fitting 64 bits
             → ``array('q')``, nulls as zero-filled slots + mask
``float64``  every non-null is a ``float`` → ``array('d')``
``bool``     every non-null is a ``bool`` → one byte per value
``text``     every non-null is a ``str`` → UTF-8 blob + ``array('q')``
             end-offsets
``object``   anything else (mixed types, oversized ints) → per-value
             tag + length-prefixed payload
===========  ==========================================================

All multi-byte integers are little-endian regardless of host byte order,
so canonical bytes (and with them every fingerprint) are stable across
machines.
"""

from __future__ import annotations

import base64
import dataclasses
import struct
import sys
from array import array
from collections.abc import Sequence

__all__ = [
    "ColumnBlock",
    "ColumnCodecError",
    "block_from_doc",
    "block_to_doc",
    "decode_column",
    "encode_column",
]

_INT64_MIN = -(2**63)
_INT64_MAX = 2**63 - 1

#: Physical encodings a block may use.
KINDS = ("empty", "int64", "float64", "bool", "text", "object")

_LITTLE = sys.byteorder == "little"


class ColumnCodecError(ValueError):
    """A block is malformed or cannot represent the requested values."""


def _le(typed: array) -> bytes:
    """The array's bytes in little-endian order, canonically."""
    if not _LITTLE:
        typed = array(typed.typecode, typed)
        typed.byteswap()
    return typed.tobytes()


def _from_le(typecode: str, raw: bytes) -> array:
    typed = array(typecode)
    typed.frombytes(raw)
    if not _LITTLE:
        typed.byteswap()
    return typed


def _pack_mask(values: Sequence[object]) -> bytes:
    """One bit per row, LSB-first within each byte; 1 = value present."""
    mask = bytearray((len(values) + 7) // 8)
    for index, value in enumerate(values):
        if value is not None:
            mask[index >> 3] |= 1 << (index & 7)
    return bytes(mask)


def _mask_bit(mask: bytes, index: int) -> bool:
    return bool(mask[index >> 3] & (1 << (index & 7)))


@dataclasses.dataclass(frozen=True)
class ColumnBlock:
    """One encoded column: kind + row count + null mask + payload.

    ``aux`` carries kind-specific framing (the end-offset array of
    ``text`` blocks); it is empty for fixed-width kinds.
    """

    kind: str
    count: int
    null_mask: bytes
    payload: bytes
    aux: bytes = b""

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ColumnCodecError(f"unknown column kind: {self.kind!r}")

    @property
    def null_count(self) -> int:
        present = sum(bin(byte).count("1") for byte in self.null_mask)
        return self.count - present

    def canonical_bytes(self) -> bytes:
        """A self-delimiting byte string; equal values ⇒ equal bytes.

        Every variable-length section is length-prefixed, so no value can
        forge a boundary (the weakness of separator-joined ``repr``
        hashing this encoding replaced).
        """
        return b"".join(
            (
                self.kind.encode("ascii"),
                struct.pack("<qqqq", self.count, len(self.null_mask),
                            len(self.aux), len(self.payload)),
                self.null_mask,
                self.aux,
                self.payload,
            )
        )


# ----------------------------------------------------------------------
# Encoding
# ----------------------------------------------------------------------


def _classify(values: Sequence[object]) -> str:
    if not values:
        return "empty"
    kinds: set[str] = set()
    for value in values:
        if value is None:
            continue
        if type(value) is bool:
            kinds.add("bool")
        elif type(value) is int:
            if _INT64_MIN <= value <= _INT64_MAX:
                kinds.add("int64")
            else:
                return "object"
        elif type(value) is float:
            kinds.add("float64")
        elif type(value) is str:
            kinds.add("text")
        else:
            return "object"
        if len(kinds) > 1:
            return "object"
    if not kinds:
        # All-null column: int64 with an all-zero mask is the cheapest.
        return "int64"
    return kinds.pop()


def _encode_object(value: object) -> bytes:
    """Tag + length-prefixed payload for one heterogeneous value."""
    if type(value) is bool:
        return b"b" + (b"\x01" if value else b"\x00")
    if type(value) is int:
        text = str(value).encode("ascii")
        return b"i" + struct.pack("<q", len(text)) + text
    if type(value) is float:
        return b"f" + struct.pack("<d", value)
    if type(value) is str:
        blob = value.encode("utf-8")
        return b"s" + struct.pack("<q", len(blob)) + blob
    raise ColumnCodecError(
        f"unencodable value type: {type(value).__name__!r} "
        "(columns hold None/bool/int/float/str after datatype casting)"
    )


def encode_column(values: Sequence[object]) -> ColumnBlock:
    """Encode one column of typed values into its canonical block."""
    values = list(values)
    kind = _classify(values)
    mask = _pack_mask(values)
    count = len(values)
    if kind == "empty":
        return ColumnBlock("empty", 0, b"", b"")
    if kind == "int64":
        typed = array("q", (0 if v is None else v for v in values))
        return ColumnBlock("int64", count, mask, _le(typed))
    if kind == "float64":
        typed = array("d", (0.0 if v is None else v for v in values))
        return ColumnBlock("float64", count, mask, _le(typed))
    if kind == "bool":
        payload = bytes(
            0 if v is None else (1 if v else 0) for v in values
        )
        return ColumnBlock("bool", count, mask, payload)
    if kind == "text":
        blobs = [b"" if v is None else v.encode("utf-8") for v in values]
        offsets = array("q")
        position = 0
        for blob in blobs:
            position += len(blob)
            offsets.append(position)
        return ColumnBlock("text", count, mask, b"".join(blobs), _le(offsets))
    payload = b"".join(
        b"\x00" if v is None else _encode_object(v) for v in values
    )
    return ColumnBlock("object", count, mask, payload)


# ----------------------------------------------------------------------
# Decoding
# ----------------------------------------------------------------------


def _decode_object(payload: bytes, count: int) -> list[object]:
    values: list[object] = []
    position = 0
    view = memoryview(payload)
    for _ in range(count):
        if position >= len(payload):
            raise ColumnCodecError("object payload truncated")
        tag = payload[position:position + 1]
        position += 1
        if tag == b"\x00":
            values.append(None)
        elif tag == b"b":
            values.append(payload[position] != 0)
            position += 1
        elif tag == b"f":
            (value,) = struct.unpack_from("<d", payload, position)
            position += 8
            values.append(value)
        elif tag in (b"i", b"s"):
            (length,) = struct.unpack_from("<q", payload, position)
            position += 8
            blob = bytes(view[position:position + length])
            if len(blob) != length:
                raise ColumnCodecError("object payload truncated")
            position += length
            values.append(
                int(blob) if tag == b"i" else blob.decode("utf-8")
            )
        else:
            raise ColumnCodecError(f"unknown object tag: {tag!r}")
    if position != len(payload):
        raise ColumnCodecError("object payload has trailing bytes")
    return values


def decode_column(block: ColumnBlock) -> list[object]:
    """Restore the exact value list :func:`encode_column` consumed."""
    if block.kind == "empty":
        return []
    count, mask = block.count, block.null_mask
    if len(mask) != (count + 7) // 8:
        raise ColumnCodecError(
            f"null mask is {len(mask)} bytes for {count} rows"
        )
    if block.kind == "object":
        values = _decode_object(block.payload, count)
        for index, value in enumerate(values):
            if (value is None) == _mask_bit(mask, index):
                raise ColumnCodecError("object payload disagrees with mask")
        return values
    if block.kind == "int64":
        typed = _from_le("q", block.payload)
        raw: Sequence[object] = typed
    elif block.kind == "float64":
        typed = _from_le("d", block.payload)
        raw = typed
    elif block.kind == "bool":
        raw = [byte != 0 for byte in block.payload]
    elif block.kind == "text":
        offsets = _from_le("q", block.aux)
        blob = block.payload
        raw = []
        start = 0
        for end in offsets:
            raw.append(blob[start:end].decode("utf-8"))
            start = end
    else:  # pragma: no cover - __post_init__ rejects unknown kinds
        raise ColumnCodecError(f"unknown column kind: {block.kind!r}")
    if len(raw) != count:
        raise ColumnCodecError(
            f"payload holds {len(raw)} values for {count} rows"
        )
    return [
        raw[index] if _mask_bit(mask, index) else None
        for index in range(count)
    ]


# ----------------------------------------------------------------------
# JSON document form (for the on-disk spool)
# ----------------------------------------------------------------------


def block_to_doc(block: ColumnBlock) -> dict:
    """A JSON-compatible rendering of one block (payloads as base64)."""
    doc = {
        "kind": block.kind,
        "count": block.count,
        "nulls": base64.b64encode(block.null_mask).decode("ascii"),
        "data": base64.b64encode(block.payload).decode("ascii"),
    }
    if block.aux:
        doc["aux"] = base64.b64encode(block.aux).decode("ascii")
    return doc


def block_from_doc(doc: dict) -> ColumnBlock:
    try:
        return ColumnBlock(
            kind=doc["kind"],
            count=int(doc["count"]),
            null_mask=base64.b64decode(doc["nulls"]),
            payload=base64.b64decode(doc["data"]),
            aux=base64.b64decode(doc.get("aux", "")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ColumnCodecError(f"malformed column document: {exc}") from exc
