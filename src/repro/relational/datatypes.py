"""Datatypes of the relational substrate and the casting rules between them.

The paper's prototype reads PostgreSQL databases; this substrate keeps the
same small set of SQL-ish datatypes.  Two operations matter for EFES:

* :func:`cast` — convert a raw value to a datatype (the value-fit detector
  counts values that *cannot* be cast to the target attribute's datatype,
  Section 5.1 "fill status").
* :func:`infer_datatype` — guess the datatype of a column of raw values
  (used by schema reverse engineering when a source arrives as a dump
  without a schema, Section 3.1 "Completeness").
"""

from __future__ import annotations

import enum
import math
from collections.abc import Iterable

from .errors import TypeCastError


class DataType(enum.Enum):
    """SQL-style datatypes supported by the substrate."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    BOOLEAN = "boolean"
    DATE = "date"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_numeric(self) -> bool:
        """Whether values of this type support arithmetic statistics."""
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_textual(self) -> bool:
        """Whether values of this type are compared as character strings."""
        return self in (DataType.STRING, DataType.DATE)


_TRUE_LITERALS = frozenset({"true", "t", "yes", "y", "1"})
_FALSE_LITERALS = frozenset({"false", "f", "no", "n", "0"})


def _cast_integer(value: object) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if math.isfinite(value) and value == int(value):
            return int(value)
        raise TypeCastError(value, DataType.INTEGER)
    if isinstance(value, str):
        text = value.strip()
        try:
            return int(text)
        except ValueError as exc:
            raise TypeCastError(value, DataType.INTEGER) from exc
    raise TypeCastError(value, DataType.INTEGER)


def _cast_float(value: object) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        text = value.strip()
        try:
            result = float(text)
        except ValueError as exc:
            raise TypeCastError(value, DataType.FLOAT) from exc
        if math.isfinite(result):
            return result
        raise TypeCastError(value, DataType.FLOAT)
    raise TypeCastError(value, DataType.FLOAT)


def _cast_string(value: object) -> str:
    if isinstance(value, str):
        return value
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    raise TypeCastError(value, DataType.STRING)


def _cast_boolean(value: object) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and value in (0, 1):
        return bool(value)
    if isinstance(value, str):
        text = value.strip().lower()
        if text in _TRUE_LITERALS:
            return True
        if text in _FALSE_LITERALS:
            return False
    raise TypeCastError(value, DataType.BOOLEAN)


def _is_date_text(text: str) -> bool:
    """Check ISO-8601 ``YYYY-MM-DD`` shape without importing datetime."""
    parts = text.split("-")
    if len(parts) != 3:
        return False
    year, month, day = parts
    if not (year.isdigit() and month.isdigit() and day.isdigit()):
        return False
    if len(year) != 4 or len(month) != 2 or len(day) != 2:
        return False
    return 1 <= int(month) <= 12 and 1 <= int(day) <= 31


def _cast_date(value: object) -> str:
    if isinstance(value, str):
        text = value.strip()
        if _is_date_text(text):
            return text
    raise TypeCastError(value, DataType.DATE)


_CASTERS = {
    DataType.INTEGER: _cast_integer,
    DataType.FLOAT: _cast_float,
    DataType.STRING: _cast_string,
    DataType.BOOLEAN: _cast_boolean,
    DataType.DATE: _cast_date,
}


def cast(value: object, datatype: DataType) -> object:
    """Cast ``value`` to ``datatype``.

    ``None`` (SQL NULL) passes through unchanged.  Raises
    :class:`~repro.relational.errors.TypeCastError` when the value cannot
    be represented in the target type.
    """
    if value is None:
        return None
    return _CASTERS[datatype](value)


def can_cast(value: object, datatype: DataType) -> bool:
    """Whether :func:`cast` would succeed for ``value`` and ``datatype``."""
    try:
        cast(value, datatype)
    except TypeCastError:
        return False
    return True


def infer_datatype(values: Iterable[object]) -> DataType:
    """Infer the most specific datatype that accommodates all ``values``.

    Nulls are ignored.  The preference order is BOOLEAN < INTEGER < FLOAT <
    DATE < STRING; an empty (or all-null) column defaults to STRING, the
    most permissive type.
    """
    candidates = [
        DataType.BOOLEAN,
        DataType.INTEGER,
        DataType.FLOAT,
        DataType.DATE,
        DataType.STRING,
    ]
    seen_any = False
    for value in values:
        if value is None:
            continue
        seen_any = True
        candidates = [dt for dt in candidates if can_cast(value, dt)]
        if candidates == [DataType.STRING]:
            break
    if not seen_any or not candidates:
        return DataType.STRING
    return candidates[0]
