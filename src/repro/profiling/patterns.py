"""Text pattern extraction for the text-pattern statistic (Section 5.1).

A pattern abstracts a string into a shape token: runs of digits become
``N``, runs of letters become ``A``, runs of whitespace become ``_``, and
punctuation is kept verbatim.  The paper's example renders the duration
values ``"4:43"`` as the pattern ``[number ":" number]`` — here ``N:N`` —
while the source lengths ``215900`` all share the pattern ``N``.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable

DIGIT_TOKEN = "N"
LETTER_TOKEN = "A"
SPACE_TOKEN = "_"


def extract_pattern(text: str) -> str:
    """The shape pattern of one string (empty string → empty pattern)."""
    tokens: list[str] = []
    previous: str | None = None
    for char in text:
        if char.isdigit():
            token = DIGIT_TOKEN
        elif char.isalpha():
            token = LETTER_TOKEN
        elif char.isspace():
            token = SPACE_TOKEN
        else:
            token = char
        if token != previous or token not in (
            DIGIT_TOKEN,
            LETTER_TOKEN,
            SPACE_TOKEN,
        ):
            tokens.append(token)
        previous = token
    return "".join(tokens)


def generalize_pattern(pattern: str) -> str:
    """Collapse word structure: runs of letters/spaces become one ``A``.

    ``A_A_A`` and ``A_A`` (two titles with different word counts) both
    generalise to ``A`` — free text matches free text — while ``N:N``
    vs ``N`` (the ``m:ss`` vs milliseconds conflict) and ``A,_A`` vs ``A``
    (``Last, First`` vs ``First Last``) stay distinct.
    """
    tokens: list[str] = []
    previous: str | None = None
    for char in pattern:
        token = "A" if char in (LETTER_TOKEN, SPACE_TOKEN) else char
        if token != previous or token != "A":
            tokens.append(token)
        previous = token
    return "".join(tokens)


def pattern_distribution(values: Iterable[str]) -> dict[str, float]:
    """Relative frequency of each pattern over the given strings."""
    counts: Counter[str] = Counter(extract_pattern(value) for value in values)
    total = sum(counts.values())
    if not total:
        return {}
    return {pattern: count / total for pattern, count in counts.items()}


def dominant_pattern(values: Iterable[str]) -> tuple[str | None, float]:
    """The most frequent pattern and its share; ``(None, 0.0)`` if empty."""
    distribution = pattern_distribution(values)
    if not distribution:
        return None, 0.0
    pattern = max(distribution, key=lambda key: (distribution[key], key))
    return pattern, distribution[pattern]
