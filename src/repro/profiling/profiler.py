"""Database profiling: per-column statistic bundles and schema reverse
engineering.

The value fit detector consumes :class:`ColumnProfile` bundles; the
structure module benefits from :func:`reverse_engineer`, which turns
discovered dependencies into schema constraints when a source arrives
without declared keys (the paper's *Completeness* requirement).
"""

from __future__ import annotations

import dataclasses

from ..relational.constraints import (
    Constraint,
    NotNull,
    PrimaryKey,
    Unique,
    foreign_key,
)
from ..relational.database import Database
from ..relational.datatypes import DataType
from ..runtime.deadline import checkpoint
from .dependencies import discover_fds, discover_inds, discover_uccs
from .statistics import (
    CharacterHistogram,
    Constancy,
    FillStatus,
    MeanStatistic,
    NumericHistogram,
    Statistic,
    StringLengthStatistic,
    TextPatternStatistic,
    TopKValues,
    ValueRange,
)

#: Statistic types applicable to textual attributes (paper, Section 5.1:
#: "the target attribute's datatype designat[es] which exact statistic
#: types to use").
TEXTUAL_STATISTICS = (
    TextPatternStatistic,
    CharacterHistogram,
    StringLengthStatistic,
    TopKValues,
)

#: Statistic types applicable to numeric attributes.
NUMERIC_STATISTICS = (
    MeanStatistic,
    NumericHistogram,
    ValueRange,
    TopKValues,
)


def statistic_types_for(datatype: DataType) -> tuple[type[Statistic], ...]:
    """The domain-specific statistic types for an attribute datatype."""
    if datatype.is_numeric:
        return NUMERIC_STATISTICS
    return TEXTUAL_STATISTICS


@dataclasses.dataclass(frozen=True)
class ColumnProfile:
    """All statistics of one attribute, computed against a datatype."""

    relation: str
    attribute: str
    datatype: DataType
    row_count: int
    distinct_count: int
    fill_status: FillStatus
    constancy: Constancy
    statistics: dict[str, Statistic]

    @property
    def is_domain_restricted(self) -> bool:
        return self.constancy.is_domain_restricted

    def statistic(self, name: str) -> Statistic:
        return self.statistics[name]


def profile_column(
    database: Database,
    relation_name: str,
    attribute_name: str,
    datatype: DataType | None = None,
) -> ColumnProfile:
    """Profile one column, memoised through the active runtime.

    ``datatype`` defaults to the attribute's own type; the value fit
    detector instead passes the *target* attribute's datatype so that both
    sides are profiled in the same value space (Section 5.1).

    Delegates to :meth:`repro.runtime.Runtime.profile_column`, so repeated
    profiling of unchanged instances is a content-keyed cache hit; the raw
    computation lives in :func:`compute_column_profile`.
    """
    from ..runtime.engine import get_runtime

    return get_runtime().profile_column(
        database, relation_name, attribute_name, datatype
    )


def compute_column_profile(
    database: Database,
    relation_name: str,
    attribute_name: str,
    datatype: DataType | None = None,
) -> ColumnProfile:
    """The uncached profiling computation behind :func:`profile_column`."""
    instance = database.table(relation_name)
    attribute = database.schema.attribute(relation_name, attribute_name)
    if datatype is None:
        datatype = attribute.datatype
    values = instance.column(attribute_name)
    statistics: dict[str, Statistic] = {}
    for statistic_type in statistic_types_for(datatype):
        checkpoint(
            "profile.statistic",
            relation=relation_name,
            attribute=attribute_name,
        )
        statistic = statistic_type.compute(values)
        statistics[statistic_type.name] = statistic
    return ColumnProfile(
        relation=relation_name,
        attribute=attribute_name,
        datatype=datatype,
        row_count=len(values),
        distinct_count=len(instance.distinct(attribute_name)),
        fill_status=FillStatus.compute(values, datatype),
        constancy=Constancy.compute(values),
        statistics=statistics,
    )


def profile_database(database: Database) -> dict[tuple[str, str], ColumnProfile]:
    """Profile every column of a database, keyed by (relation, attribute).

    Runs through the active runtime: columns are profiled concurrently on
    its executor and both the per-column profiles and the whole bundle
    are memoised against the database content.
    """
    from ..runtime.engine import get_runtime

    return get_runtime().profile_database(database)


def reverse_engineer(database: Database) -> list[Constraint]:
    """Reconstruct plausible constraints from the data alone.

    * single-attribute UCCs with no NULLs → PRIMARY KEY candidates (the
      lexicographically first per relation; the rest become UNIQUE),
    * NULL-free columns → NOT NULL,
    * inclusion dependencies into a key column → FOREIGN KEY candidates.

    The reconstructed constraints are *candidates*: exact on the current
    instance, but, as with all data profiling, not guaranteed to be
    intended semantics [20].
    """
    constraints: list[Constraint] = []
    uccs = discover_uccs(database, max_arity=1)
    keys_by_relation: dict[str, list[str]] = {}
    for ucc in uccs:
        keys_by_relation.setdefault(ucc.relation, []).append(ucc.attributes[0])

    key_columns: set[tuple[str, str]] = set()
    for relation_name, candidates in keys_by_relation.items():
        candidates.sort()
        primary = candidates[0]
        constraints.append(PrimaryKey(relation_name, (primary,)))
        key_columns.add((relation_name, primary))
        for other in candidates[1:]:
            constraints.append(Unique(relation_name, (other,)))
            key_columns.add((relation_name, other))

    for relation in database.schema.relations:
        instance = database.table(relation.name)
        if not len(instance):
            continue
        for attribute_name in relation.attribute_names:
            column = instance.column(attribute_name)
            if all(value is not None for value in column):
                if (relation.name, attribute_name) not in {
                    (c.relation, c.attributes[0])
                    for c in constraints
                    if isinstance(c, PrimaryKey)
                }:
                    constraints.append(NotNull(relation.name, attribute_name))

    constraints.extend(_foreign_key_candidates(database, key_columns))
    constraints.extend(_functional_dependency_candidates(database, key_columns))
    return constraints


def _functional_dependency_candidates(
    database: Database, key_columns: set[tuple[str, str]]
) -> list[Constraint]:
    """Promote discovered FDs to constraints, conservatively.

    Candidates must have a determinant that is genuinely repeated (a
    grouping column, not an almost-key) and must not be implied by a key;
    FDs between two key columns are skipped as redundant.
    """
    from ..relational.constraints import FunctionalDependencyConstraint

    candidates: list[Constraint] = []
    for fd in discover_fds(database):
        if (fd.relation, fd.determinant) in key_columns:
            continue  # implied by the key
        instance = database.table(fd.relation)
        total = len(instance)
        distinct = len(instance.distinct(fd.determinant))
        if total == 0 or distinct == 0:
            continue
        if distinct >= total * 0.8:
            continue  # almost-unique determinants are coincidence-prone
        candidates.append(
            FunctionalDependencyConstraint(
                fd.relation, fd.determinant, fd.dependent
            )
        )
    return candidates


def _foreign_key_candidates(
    database: Database, key_columns: set[tuple[str, str]]
) -> list[Constraint]:
    """Promote inclusion dependencies to foreign keys, carefully.

    Raw INDs over-fire badly on integer id columns (every ``1..n`` surrogate
    key is included in every other), so candidates are scored by the name
    affinity between the referencing attribute and the referenced relation /
    attribute, with a bonus for referencing a primary key, and only the best
    candidate per referencing attribute survives.
    """
    from ..matching.name_matcher import name_similarity

    best: dict[tuple[str, str], tuple[float, Constraint]] = {}
    for ind in discover_inds(database, min_values=1):
        if (ind.referenced, ind.referenced_attribute) not in key_columns:
            continue
        if ind.relation == ind.referenced:
            continue
        affinity = max(
            name_similarity(ind.attribute, ind.referenced),
            name_similarity(ind.attribute, ind.referenced_attribute),
        )
        score = 0.7 * affinity + 0.3  # the referenced side is always a key
        if score < 0.5:
            continue
        candidate = foreign_key(
            ind.relation, ind.attribute, ind.referenced, ind.referenced_attribute
        )
        key = (ind.relation, ind.attribute)
        if key not in best or score > best[key][0]:
            best[key] = (score, candidate)
    return [candidate for _, candidate in best.values()]
