"""Data profiling substrate.

EFES's complexity assessment "is aided by the results of schema matching
and data profiling tools, which analyze the participating databases and
produce metadata about them" (Section 1.2).  This package provides those
profiling tools: the column statistics of Section 5.1, dependency
discovery (UCCs, INDs, FDs), and schema reverse engineering for sources
that arrive without declared constraints.
"""

from .dependencies import (
    FunctionalDependency,
    InclusionDependency,
    UniqueColumnCombination,
    compute_fds,
    compute_inds,
    compute_uccs,
    discover_fds,
    discover_inds,
    discover_uccs,
    ind_graph,
)
from .patterns import dominant_pattern, extract_pattern, pattern_distribution
from .profiler import (
    NUMERIC_STATISTICS,
    TEXTUAL_STATISTICS,
    ColumnProfile,
    compute_column_profile,
    profile_column,
    profile_database,
    reverse_engineer,
    statistic_types_for,
)
from .statistics import (
    CharacterHistogram,
    Constancy,
    FillStatus,
    MeanStatistic,
    NumericHistogram,
    Statistic,
    StringLengthStatistic,
    TextPatternStatistic,
    TopKValues,
    ValueRange,
    histogram_intersection,
    shannon_entropy,
)

__all__ = [
    "CharacterHistogram",
    "ColumnProfile",
    "Constancy",
    "FillStatus",
    "FunctionalDependency",
    "InclusionDependency",
    "MeanStatistic",
    "NUMERIC_STATISTICS",
    "NumericHistogram",
    "Statistic",
    "StringLengthStatistic",
    "TEXTUAL_STATISTICS",
    "TextPatternStatistic",
    "TopKValues",
    "UniqueColumnCombination",
    "ValueRange",
    "compute_column_profile",
    "compute_fds",
    "compute_inds",
    "compute_uccs",
    "discover_fds",
    "discover_inds",
    "discover_uccs",
    "dominant_pattern",
    "extract_pattern",
    "histogram_intersection",
    "ind_graph",
    "pattern_distribution",
    "profile_column",
    "profile_database",
    "reverse_engineer",
    "shannon_entropy",
    "statistic_types_for",
]
