"""Column statistics of the value fit detector (Section 5.1).

Each statistic type implements a common protocol:

* :meth:`Statistic.compute` (classmethod) — aggregate a column of values,
* :meth:`Statistic.importance` — how characteristic this statistic is for
  the *target* attribute (the importance score i(S_t(τ)) ∈ [0, 1]),
* :meth:`Statistic.fit` — to what extent a *source* statistic fits the
  target statistic (the fit value f(S_s(τ), S_t(τ)) ∈ [0, 1]).

The statistics mirror the paper's list: fill status, constancy, text
patterns, character histogram, string length, mean, numeric histogram,
value range, and top-k values.  Importance and fit are "specific to the
actual statistics"; the concrete formulas below follow the paper's
guidance where given (e.g. a single dominating text pattern ⇒ importance
near 1; many different patterns ⇒ importance near 0) and otherwise use
standard distribution-overlap measures.
"""

from __future__ import annotations

import dataclasses
import math
from collections import Counter
from collections.abc import Sequence

from ..relational.datatypes import DataType, can_cast, cast
from .patterns import extract_pattern, generalize_pattern

__all__ = [
    "CharacterHistogram",
    "Constancy",
    "FillStatus",
    "MeanStatistic",
    "NumericHistogram",
    "Statistic",
    "StringLengthStatistic",
    "TextPatternStatistic",
    "TopKValues",
    "ValueRange",
    "histogram_intersection",
    "shannon_entropy",
]


def shannon_entropy(frequencies: Sequence[float]) -> float:
    """Shannon entropy (bits) of a discrete distribution."""
    return -sum(p * math.log2(p) for p in frequencies if p > 0)


def histogram_intersection(
    left: dict[object, float], right: dict[object, float]
) -> float:
    """Σ min(p, q) over the union of keys — a standard overlap in [0, 1]."""
    keys = set(left) | set(right)
    return sum(min(left.get(key, 0.0), right.get(key, 0.0)) for key in keys)


def _bounded(value: float) -> float:
    return max(0.0, min(1.0, value))


class Statistic:
    """Protocol base class for all statistic types."""

    #: Stable identifier used in reports and configuration.
    name: str = "statistic"

    @classmethod
    def compute(cls, values: Sequence[object]) -> "Statistic":
        raise NotImplementedError

    def importance(self) -> float:
        """Importance score of this statistic *as a target statistic*."""
        raise NotImplementedError

    def fit(self, source: "Statistic") -> float:
        """Fit of ``source`` (same statistic type) into this target statistic."""
        raise NotImplementedError


# ----------------------------------------------------------------------
# Fill status
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class FillStatus(Statistic):
    """Null count plus count of values not castable to a target datatype."""

    name = "fill_status"

    total: int
    nulls: int
    uncastable: int

    @classmethod
    def compute(
        cls, values: Sequence[object], datatype: DataType = DataType.STRING
    ) -> "FillStatus":
        nulls = 0
        uncastable = 0
        for value in values:
            if value is None:
                nulls += 1
            elif not can_cast(value, datatype):
                uncastable += 1
        return cls(total=len(values), nulls=nulls, uncastable=uncastable)

    @property
    def filled_fraction(self) -> float:
        """Fraction of values that are non-null *and* castable."""
        if not self.total:
            return 0.0
        return (self.total - self.nulls - self.uncastable) / self.total

    @property
    def non_null_fraction(self) -> float:
        """Fraction of values that are present, castable or not."""
        if not self.total:
            return 0.0
        return (self.total - self.nulls) / self.total

    @property
    def incompatible_fraction(self) -> float:
        if not self.total:
            return 0.0
        return self.uncastable / self.total

    def importance(self) -> float:
        # A near-complete target column strongly characterises the target.
        return self.filled_fraction

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, FillStatus)
        # The source fits if it is at least as complete as the target.
        if self.filled_fraction == 0.0:
            return 1.0
        return _bounded(source.filled_fraction / self.filled_fraction)


# ----------------------------------------------------------------------
# Constancy
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class Constancy(Statistic):
    """Inverse of (normalised) Shannon entropy — detects discrete domains.

    ``constancy`` is 1 for a constant column, 0 for an all-distinct one.
    """

    name = "constancy"

    constancy: float
    distinct_count: int
    total: int

    #: Columns with constancy above this are considered domain-restricted.
    DOMAIN_THRESHOLD = 0.5
    #: ... or with at most this many distinct values.
    DOMAIN_MAX_DISTINCT = 20

    @classmethod
    def compute(cls, values: Sequence[object]) -> "Constancy":
        non_null = [value for value in values if value is not None]
        total = len(non_null)
        counts = Counter(non_null)
        distinct = len(counts)
        if total <= 1 or distinct <= 1:
            return cls(constancy=1.0, distinct_count=distinct, total=total)
        frequencies = [count / total for count in counts.values()]
        entropy = shannon_entropy(frequencies)
        max_entropy = math.log2(total)
        return cls(
            constancy=_bounded(1.0 - entropy / max_entropy),
            distinct_count=distinct,
            total=total,
        )

    @property
    def is_domain_restricted(self) -> bool:
        """Whether the values plausibly come from a small discrete domain."""
        if self.total == 0:
            return False
        if self.distinct_count <= self.DOMAIN_MAX_DISTINCT < self.total:
            return True
        return self.constancy >= self.DOMAIN_THRESHOLD

    def importance(self) -> float:
        return self.constancy

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, Constancy)
        return _bounded(1.0 - abs(source.constancy - self.constancy))


# ----------------------------------------------------------------------
# Text patterns
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TextPatternStatistic(Statistic):
    """Relative frequencies of string shape patterns."""

    name = "text_pattern"

    distribution: tuple[tuple[str, float], ...]

    @classmethod
    def compute(cls, values: Sequence[object]) -> "TextPatternStatistic":
        strings = [str(value) for value in values if value is not None]
        counts: Counter[str] = Counter(
            extract_pattern(value) for value in strings
        )
        total = sum(counts.values())
        distribution = tuple(
            sorted(
                ((pattern, count / total) for pattern, count in counts.items()),
                key=lambda item: (-item[1], item[0]),
            )
            if total
            else ()
        )
        return cls(distribution=distribution)

    def as_dict(self) -> dict[str, float]:
        return dict(self.distribution)

    @property
    def dominant_share(self) -> float:
        return self.distribution[0][1] if self.distribution else 0.0

    def generalized(self) -> dict[str, float]:
        """The distribution over word-structure-collapsed patterns."""
        distribution: dict[str, float] = {}
        for pattern, share in self.distribution:
            key = generalize_pattern(pattern)
            distribution[key] = distribution.get(key, 0.0) + share
        return distribution

    def importance(self) -> float:
        # One dominating pattern ("all values look like N:N") is a strong
        # target characteristic; many patterns make the statistic useless.
        return self.dominant_share

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, TextPatternStatistic)
        if not self.distribution or not source.distribution:
            return 1.0  # nothing to compare — vacuously fitting
        exact = histogram_intersection(source.as_dict(), self.as_dict())
        coarse = histogram_intersection(source.generalized(), self.generalized())
        # Free text fits free text even when word counts differ, so the
        # word-structure-agnostic overlap carries most of the weight; the
        # exact overlap rewards truly identical formats.
        return _bounded(0.2 * exact + 0.8 * coarse)


# ----------------------------------------------------------------------
# Character histogram
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CharacterHistogram(Statistic):
    """Relative occurrence of characters over all values of a column."""

    name = "char_histogram"

    distribution: tuple[tuple[str, float], ...]

    @classmethod
    def compute(cls, values: Sequence[object]) -> "CharacterHistogram":
        counts: Counter[str] = Counter()
        for value in values:
            if value is None:
                continue
            counts.update(str(value))
        total = sum(counts.values())
        distribution = tuple(
            sorted(
                ((char, count / total) for char, count in counts.items()),
                key=lambda item: (-item[1], item[0]),
            )
            if total
            else ()
        )
        return cls(distribution=distribution)

    def as_dict(self) -> dict[str, float]:
        return dict(self.distribution)

    def importance(self) -> float:
        # Concentrated alphabets (digits + one separator) characterise the
        # target better than free text; use inverse normalised entropy.
        distribution = self.as_dict()
        if len(distribution) <= 1:
            return 1.0 if distribution else 0.0
        entropy = shannon_entropy(list(distribution.values()))
        return _bounded(1.0 - entropy / math.log2(len(distribution)) * 0.5)

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, CharacterHistogram)
        if not self.distribution or not source.distribution:
            return 1.0  # nothing to compare — vacuously fitting
        return _bounded(
            histogram_intersection(source.as_dict(), self.as_dict())
        )


# ----------------------------------------------------------------------
# String length
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class StringLengthStatistic(Statistic):
    """Average string length and its standard deviation."""

    name = "string_length"

    mean: float
    std: float
    count: int

    @classmethod
    def compute(cls, values: Sequence[object]) -> "StringLengthStatistic":
        lengths = [len(str(value)) for value in values if value is not None]
        if not lengths:
            return cls(mean=0.0, std=0.0, count=0)
        mean = sum(lengths) / len(lengths)
        variance = sum((length - mean) ** 2 for length in lengths) / len(lengths)
        return cls(mean=mean, std=math.sqrt(variance), count=len(lengths))

    def importance(self) -> float:
        # A tight length distribution (small coefficient of variation) is a
        # strong characteristic.
        if self.count == 0 or self.mean == 0:
            return 0.0
        return _bounded(1.0 / (1.0 + self.std / self.mean * 4.0))

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, StringLengthStatistic)
        if self.count == 0 or source.count == 0:
            return 1.0
        tolerance = max(self.std, 0.15 * self.mean, 0.5)
        deviation = abs(source.mean - self.mean) / tolerance
        return _bounded(math.exp(-0.5 * deviation))


# ----------------------------------------------------------------------
# Mean (numeric)
# ----------------------------------------------------------------------


def _numeric_values(values: Sequence[object]) -> list[float]:
    numeric: list[float] = []
    for value in values:
        if value is None:
            continue
        if can_cast(value, DataType.FLOAT):
            numeric.append(float(cast(value, DataType.FLOAT)))
    return numeric


@dataclasses.dataclass(frozen=True)
class MeanStatistic(Statistic):
    """Mean and standard deviation of a numeric column."""

    name = "mean"

    mean: float
    std: float
    count: int

    @classmethod
    def compute(cls, values: Sequence[object]) -> "MeanStatistic":
        numeric = _numeric_values(values)
        if not numeric:
            return cls(mean=0.0, std=0.0, count=0)
        mean = sum(numeric) / len(numeric)
        variance = sum((value - mean) ** 2 for value in numeric) / len(numeric)
        return cls(mean=mean, std=math.sqrt(variance), count=len(numeric))

    def importance(self) -> float:
        if self.count == 0:
            return 0.0
        scale = abs(self.mean) if self.mean else 1.0
        return _bounded(1.0 / (1.0 + self.std / scale))

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, MeanStatistic)
        if self.count == 0 or source.count == 0:
            return 1.0
        tolerance = max(self.std, abs(self.mean) * 0.1, 1e-9)
        deviation = abs(source.mean - self.mean) / tolerance
        return _bounded(math.exp(-0.5 * deviation))


# ----------------------------------------------------------------------
# Numeric histogram
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class NumericHistogram(Statistic):
    """Equi-width histogram of a numeric column.

    Bins are anchored on *this* statistic's own range; :meth:`fit` re-bins
    the source values into the target's bins, so comparing two histograms
    is meaningful even when the raw ranges differ.
    """

    name = "histogram"

    lo: float
    hi: float
    bins: tuple[float, ...]
    count: int

    BIN_COUNT = 10

    @classmethod
    def compute(cls, values: Sequence[object]) -> "NumericHistogram":
        numeric = _numeric_values(values)
        if not numeric:
            return cls(lo=0.0, hi=0.0, bins=(), count=0)
        lo, hi = min(numeric), max(numeric)
        counts = [0] * cls.BIN_COUNT
        for value in numeric:
            counts[cls._bin_index(value, lo, hi)] += 1
        total = len(numeric)
        return cls(
            lo=lo,
            hi=hi,
            bins=tuple(count / total for count in counts),
            count=total,
        )

    @staticmethod
    def _bin_index(value: float, lo: float, hi: float) -> int:
        if hi == lo:
            return 0
        position = (value - lo) / (hi - lo)
        return min(int(position * NumericHistogram.BIN_COUNT),
                   NumericHistogram.BIN_COUNT - 1)

    def rebin(self, source: "NumericHistogram") -> tuple[float, ...]:
        """Project the source distribution onto this histogram's bins;
        source mass outside this range is dropped (it cannot overlap)."""
        if not source.count or not self.count:
            return ()
        counts = [0.0] * self.BIN_COUNT
        source_width = (source.hi - source.lo) / max(len(source.bins), 1)
        for index, share in enumerate(source.bins):
            midpoint = source.lo + (index + 0.5) * source_width
            if self.lo <= midpoint <= self.hi:
                counts[self._bin_index(midpoint, self.lo, self.hi)] += share
        return tuple(counts)

    def importance(self) -> float:
        return 0.5 if self.count else 0.0

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, NumericHistogram)
        if self.count == 0 or source.count == 0:
            return 1.0
        projected = self.rebin(source)
        return _bounded(
            sum(
                min(share, projected[index])
                for index, share in enumerate(self.bins)
            )
        )


# ----------------------------------------------------------------------
# Value range
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class ValueRange(Statistic):
    """Minimum and maximum of a numeric column."""

    name = "value_range"

    lo: float
    hi: float
    count: int

    @classmethod
    def compute(cls, values: Sequence[object]) -> "ValueRange":
        numeric = _numeric_values(values)
        if not numeric:
            return cls(lo=0.0, hi=0.0, count=0)
        return cls(lo=min(numeric), hi=max(numeric), count=len(numeric))

    def importance(self) -> float:
        return 0.6 if self.count else 0.0

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, ValueRange)
        if self.count == 0 or source.count == 0:
            return 1.0
        overlap_lo = max(self.lo, source.lo)
        overlap_hi = min(self.hi, source.hi)
        source_span = source.hi - source.lo
        if source_span == 0:
            return 1.0 if self.lo <= source.lo <= self.hi else 0.0
        return _bounded((overlap_hi - overlap_lo) / source_span)


# ----------------------------------------------------------------------
# Top-k values
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class TopKValues(Statistic):
    """The k most frequent values with their relative frequencies."""

    name = "top_k"

    entries: tuple[tuple[object, float], ...]
    coverage: float
    count: int

    K = 10

    @classmethod
    def compute(cls, values: Sequence[object]) -> "TopKValues":
        non_null = [value for value in values if value is not None]
        counts = Counter(non_null)
        total = len(non_null)
        if not total:
            return cls(entries=(), coverage=0.0, count=0)
        top = counts.most_common(cls.K)
        entries = tuple(
            sorted(
                ((value, count / total) for value, count in top),
                key=lambda item: (-item[1], str(item[0])),
            )
        )
        return cls(
            entries=entries,
            coverage=_bounded(sum(share for _, share in entries)),
            count=total,
        )

    def values(self) -> set[object]:
        return {value for value, _ in self.entries}

    def importance(self) -> float:
        # Only meaningful when the top-k actually covers the column, i.e.
        # for discrete domains; quadratic damping keeps incidental partial
        # coverage of free-text columns from dragging the overall fit.
        return self.coverage**2

    def fit(self, source: "Statistic") -> float:
        assert isinstance(source, TopKValues)
        if not self.entries or not source.entries or source.coverage == 0:
            return 1.0
        target_values = self.values()
        overlap = sum(
            share for value, share in source.entries if value in target_values
        )
        # Normalise by the source's own top-k mass: "of the source's most
        # frequent values, how many live in the target's domain?"
        return _bounded(overlap / source.coverage)
