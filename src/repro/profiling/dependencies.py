"""Dependency discovery: unique column combinations, inclusion and
functional dependencies.

Section 3.1 of the paper requires *Completeness*: "constraints are [often]
not enforced at the schema level [...] techniques for schema reverse
engineering and data profiling can reconstruct missing schema descriptions
and constraints from the data."  This module implements the discovery
algorithms that feed :func:`repro.profiling.profiler.reverse_engineer`.

All discovery here is exact (it verifies against the full instance);
lattice search is pruned to unary and binary combinations, which is what
the EFES detectors consume.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import defaultdict

from ..relational.database import Database
from ..relational.instance import RelationInstance


@dataclasses.dataclass(frozen=True)
class UniqueColumnCombination:
    """Attributes whose (null-free) projection is duplicate-free."""

    relation: str
    attributes: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class InclusionDependency:
    """relation.attribute ⊆ referenced.referenced_attribute (non-null values)."""

    relation: str
    attribute: str
    referenced: str
    referenced_attribute: str


@dataclasses.dataclass(frozen=True)
class FunctionalDependency:
    """determinant → dependent within one relation (unary determinant)."""

    relation: str
    determinant: str
    dependent: str


def _projection(instance: RelationInstance, attributes: tuple[str, ...]):
    indices = [instance.relation.index_of(name) for name in attributes]
    for row in instance:
        yield tuple(row[index] for index in indices)


def _is_unique(instance: RelationInstance, attributes: tuple[str, ...]) -> bool:
    seen: set[tuple] = set()
    for key in _projection(instance, attributes):
        if any(part is None for part in key):
            return False  # keys must be total to be usable as identifiers
        if key in seen:
            return False
        seen.add(key)
    return True


def discover_uccs(
    database: Database, max_arity: int = 2
) -> list[UniqueColumnCombination]:
    """Minimal unique column combinations up to ``max_arity`` per relation.

    Empty relations yield no UCCs: uniqueness of nothing is vacuous and
    would flood downstream consumers with spurious keys.
    """
    results: list[UniqueColumnCombination] = []
    for relation in database.schema.relations:
        instance = database.table(relation.name)
        if not len(instance):
            continue
        names = relation.attribute_names
        unary_uccs: set[str] = set()
        for name in names:
            if _is_unique(instance, (name,)):
                unary_uccs.add(name)
                results.append(UniqueColumnCombination(relation.name, (name,)))
        if max_arity < 2:
            continue
        for left, right in itertools.combinations(names, 2):
            if left in unary_uccs or right in unary_uccs:
                continue  # not minimal
            if _is_unique(instance, (left, right)):
                results.append(
                    UniqueColumnCombination(relation.name, (left, right))
                )
    return results


def discover_inds(
    database: Database, min_values: int = 1
) -> list[InclusionDependency]:
    """All unary inclusion dependencies between distinct attribute columns.

    ``min_values`` guards against vacuous INDs from (near-)empty columns.
    Trivial reflexive INDs are excluded.
    """
    value_sets: dict[tuple[str, str], set[object]] = {}
    for relation in database.schema.relations:
        instance = database.table(relation.name)
        for name in relation.attribute_names:
            value_sets[(relation.name, name)] = instance.distinct(name)
    results: list[InclusionDependency] = []
    for (lhs_rel, lhs_attr), lhs_values in value_sets.items():
        if len(lhs_values) < min_values:
            continue
        for (rhs_rel, rhs_attr), rhs_values in value_sets.items():
            if (lhs_rel, lhs_attr) == (rhs_rel, rhs_attr):
                continue
            if lhs_values <= rhs_values:
                results.append(
                    InclusionDependency(lhs_rel, lhs_attr, rhs_rel, rhs_attr)
                )
    return results


def discover_fds(database: Database) -> list[FunctionalDependency]:
    """All unary-determinant functional dependencies that hold exactly.

    NULL determinant values are skipped (SQL-style); trivial X→X FDs are
    excluded, as are FDs whose determinant is a UCC (those are implied).
    """
    results: list[FunctionalDependency] = []
    for relation in database.schema.relations:
        instance = database.table(relation.name)
        if not len(instance):
            continue
        names = relation.attribute_names
        unique_attrs = {
            name for name in names if _is_unique(instance, (name,))
        }
        for determinant in names:
            if determinant in unique_attrs:
                continue
            det_index = instance.relation.index_of(determinant)
            for dependent in names:
                if dependent == determinant:
                    continue
                dep_index = instance.relation.index_of(dependent)
                mapping: dict[object, object] = {}
                holds = True
                for row in instance:
                    det_value = row[det_index]
                    if det_value is None:
                        continue
                    dep_value = row[dep_index]
                    if det_value in mapping:
                        if mapping[det_value] != dep_value:
                            holds = False
                            break
                    else:
                        mapping[det_value] = dep_value
                if holds and mapping:
                    results.append(
                        FunctionalDependency(relation.name, determinant, dependent)
                    )
    return results


def ind_graph(inds: list[InclusionDependency]) -> dict[tuple[str, str], list[tuple[str, str]]]:
    """Adjacency view of inclusion dependencies, for FK candidate ranking."""
    graph: dict[tuple[str, str], list[tuple[str, str]]] = defaultdict(list)
    for ind in inds:
        graph[(ind.relation, ind.attribute)].append(
            (ind.referenced, ind.referenced_attribute)
        )
    return dict(graph)
