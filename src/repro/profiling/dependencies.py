"""Dependency discovery: unique column combinations, inclusion and
functional dependencies.

Section 3.1 of the paper requires *Completeness*: "constraints are [often]
not enforced at the schema level [...] techniques for schema reverse
engineering and data profiling can reconstruct missing schema descriptions
and constraints from the data."  This module implements the discovery
algorithms that feed :func:`repro.profiling.profiler.reverse_engineer`.

All discovery here is exact (it verifies against the full instance);
lattice search is pruned to unary and binary combinations, which is what
the EFES detectors consume.
"""

from __future__ import annotations

import dataclasses
import itertools
from collections import defaultdict

from ..relational.database import Database
from ..relational.instance import RelationInstance
from ..runtime.deadline import checkpoint


@dataclasses.dataclass(frozen=True)
class UniqueColumnCombination:
    """Attributes whose (null-free) projection is duplicate-free."""

    relation: str
    attributes: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class InclusionDependency:
    """relation.attribute ⊆ referenced.referenced_attribute (non-null values)."""

    relation: str
    attribute: str
    referenced: str
    referenced_attribute: str


@dataclasses.dataclass(frozen=True)
class FunctionalDependency:
    """determinant → dependent within one relation (unary determinant)."""

    relation: str
    determinant: str
    dependent: str


def _projection(instance: RelationInstance, attributes: tuple[str, ...]):
    indices = [instance.relation.index_of(name) for name in attributes]
    for row in instance:
        yield tuple(row[index] for index in indices)


def _is_unique(instance: RelationInstance, attributes: tuple[str, ...]) -> bool:
    seen: set[tuple] = set()
    for key in _projection(instance, attributes):
        if any(part is None for part in key):
            return False  # keys must be total to be usable as identifiers
        if key in seen:
            return False
        seen.add(key)
    return True


def _serial_map(function, items):
    return [function(item) for item in items]


def discover_uccs(
    database: Database, max_arity: int = 2
) -> list[UniqueColumnCombination]:
    """Minimal unique column combinations up to ``max_arity`` per relation.

    Memoised and parallelised through the active runtime; the raw
    computation is :func:`compute_uccs`.
    """
    from ..runtime.engine import get_runtime

    return get_runtime().discover_uccs(database, max_arity)


def compute_relation_uccs(
    database: Database, relation_name: str, max_arity: int = 2
) -> list[UniqueColumnCombination]:
    """UCC discovery for a single relation (one unit of parallel work).

    Empty relations yield no UCCs: uniqueness of nothing is vacuous and
    would flood downstream consumers with spurious keys.
    """
    instance = database.table(relation_name)
    results: list[UniqueColumnCombination] = []
    if not len(instance):
        return results
    names = database.schema.relation(relation_name).attribute_names
    unary_uccs: set[str] = set()
    for name in names:
        checkpoint("ucc", relation=relation_name)
        if _is_unique(instance, (name,)):
            unary_uccs.add(name)
            results.append(UniqueColumnCombination(relation_name, (name,)))
    if max_arity < 2:
        return results
    for left, right in itertools.combinations(names, 2):
        if left in unary_uccs or right in unary_uccs:
            continue  # not minimal
        checkpoint("ucc", relation=relation_name)
        if _is_unique(instance, (left, right)):
            results.append(
                UniqueColumnCombination(relation_name, (left, right))
            )
    return results


def compute_uccs(
    database: Database, max_arity: int = 2, mapper=_serial_map
) -> list[UniqueColumnCombination]:
    """Uncached UCC discovery; ``mapper`` fans out over relations."""
    per_relation = mapper(
        lambda name: compute_relation_uccs(database, name, max_arity),
        [relation.name for relation in database.schema.relations],
    )
    return [ucc for uccs in per_relation for ucc in uccs]


def discover_inds(
    database: Database, min_values: int = 1
) -> list[InclusionDependency]:
    """All unary inclusion dependencies between distinct attribute columns.

    Memoised and parallelised through the active runtime; the raw
    computation is :func:`compute_inds`.
    """
    from ..runtime.engine import get_runtime

    return get_runtime().discover_inds(database, min_values)


def compute_inds(
    database: Database, min_values: int = 1, mapper=_serial_map
) -> list[InclusionDependency]:
    """Uncached IND discovery.

    ``min_values`` guards against vacuous INDs from (near-)empty columns.
    Trivial reflexive INDs are excluded.  The distinct-value sets are
    collected per relation via ``mapper`` (the expensive scan); the
    pairwise subset checks stay serial to keep result order canonical.
    """

    def relation_value_sets(relation):
        checkpoint("ind.scan", relation=relation.name)
        instance = database.table(relation.name)
        return [
            ((relation.name, name), instance.distinct(name))
            for name in relation.attribute_names
        ]

    value_sets: dict[tuple[str, str], set[object]] = {
        key: values
        for chunk in mapper(relation_value_sets, database.schema.relations)
        for key, values in chunk
    }
    return _inds_from_value_sets(value_sets, min_values)


def _inds_from_value_sets(
    value_sets: dict[tuple[str, str], set[object]], min_values: int
) -> list[InclusionDependency]:
    """The pairwise subset half of IND discovery, shared by the serial
    path and the process backend (which farms out only the value-set
    scans); ``value_sets`` iteration order fixes the result order, so
    callers build it relation-by-relation in schema order."""
    results: list[InclusionDependency] = []
    for (lhs_rel, lhs_attr), lhs_values in value_sets.items():
        if len(lhs_values) < min_values:
            continue
        checkpoint("ind", relation=lhs_rel)
        for (rhs_rel, rhs_attr), rhs_values in value_sets.items():
            if (lhs_rel, lhs_attr) == (rhs_rel, rhs_attr):
                continue
            if lhs_values <= rhs_values:
                results.append(
                    InclusionDependency(lhs_rel, lhs_attr, rhs_rel, rhs_attr)
                )
    return results


def discover_fds(database: Database) -> list[FunctionalDependency]:
    """All unary-determinant functional dependencies that hold exactly.

    Memoised and parallelised through the active runtime; the raw
    computation is :func:`compute_fds`.
    """
    from ..runtime.engine import get_runtime

    return get_runtime().discover_fds(database)


def compute_relation_fds(
    database: Database, relation_name: str
) -> list[FunctionalDependency]:
    """FD discovery for a single relation (one unit of parallel work).

    NULL determinant values are skipped (SQL-style); trivial X→X FDs are
    excluded, as are FDs whose determinant is a UCC (those are implied).
    """
    instance = database.table(relation_name)
    results: list[FunctionalDependency] = []
    if not len(instance):
        return results
    names = database.schema.relation(relation_name).attribute_names
    unique_attrs = {name for name in names if _is_unique(instance, (name,))}
    for determinant in names:
        if determinant in unique_attrs:
            continue
        det_index = instance.relation.index_of(determinant)
        for dependent in names:
            if dependent == determinant:
                continue
            checkpoint("fd", relation=relation_name)
            dep_index = instance.relation.index_of(dependent)
            mapping: dict[object, object] = {}
            holds = True
            for row in instance:
                det_value = row[det_index]
                if det_value is None:
                    continue
                dep_value = row[dep_index]
                if det_value in mapping:
                    if mapping[det_value] != dep_value:
                        holds = False
                        break
                else:
                    mapping[det_value] = dep_value
            if holds and mapping:
                results.append(
                    FunctionalDependency(relation_name, determinant, dependent)
                )
    return results


def compute_fds(
    database: Database, mapper=_serial_map
) -> list[FunctionalDependency]:
    """Uncached FD discovery; ``mapper`` fans out over relations."""
    per_relation = mapper(
        lambda name: compute_relation_fds(database, name),
        [relation.name for relation in database.schema.relations],
    )
    return [fd for fds in per_relation for fd in fds]


def ind_graph(inds: list[InclusionDependency]) -> dict[tuple[str, str], list[tuple[str, str]]]:
    """Adjacency view of inclusion dependencies, for FK candidate ranking."""
    graph: dict[tuple[str, str], list[tuple[str, str]]] = defaultdict(list)
    for ind in inds:
        graph[(ind.relation, ind.attribute)].append(
            (ind.referenced, ind.referenced_attribute)
        )
    return dict(graph)
