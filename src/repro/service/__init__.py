"""The concurrent assessment service: job queue, report store, HTTP API.

EFES is consulted *repeatedly* — "to decide about the feasibility of such
a project before its start" — so the library needs a long-running shape:
many callers sharing one runtime, queued work with backpressure, and past
estimates retrievable without recomputation.  This subsystem provides it:

* :class:`JobScheduler` — submitted assess/estimate jobs with states
  (queued/running/done/failed/cancelled), priorities, a bounded queue
  that rejects with an explicit retry-after hint when full, per-job
  timeout + cancellation, executed on worker slots over the shared
  :class:`repro.runtime.Runtime`,
* :class:`ReportStore` — content-addressed persistence of serialised
  results (``repro.core.serialize``), keyed by the same content
  fingerprints the profile cache uses, with an on-disk spool that
  survives restarts — checksummed, quarantining damaged entries on a
  startup recovery scan instead of serving them,
* :mod:`~repro.service.http_api` — a stdlib ``ThreadingHTTPServer``
  exposing submit/status/result/cancel plus ``/healthz`` and
  ``/metrics``, with :class:`ServiceClient` as the Python counterpart
  (retrying transient unavailability under a
  :class:`~repro.resilience.RetryPolicy`).

The scheduler embeds the resilience layer: a
:class:`~repro.resilience.CircuitBreaker` guards job admission, a
:class:`~repro.resilience.HealthMonitor` drives ``/healthz``'s
healthy/degraded/draining state, and :meth:`JobScheduler.close` drains
gracefully — running jobs finish, queued jobs fail with a
``retry_after`` hint.

It also embeds the durability layer (:mod:`repro.durability`): pass a
:class:`~repro.durability.JobJournal` to :class:`JobScheduler` and every
acknowledged submission survives ``kill -9`` — journalled ahead of the
ack, replayed by a :class:`~repro.durability.RecoveryManager` on the
next start, deduped across the crash by client ``Idempotency-Key``
headers.

``efes serve`` / ``efes submit`` / ``efes recover`` are the CLI entry
points.
"""

from .client import (
    BackpressureError,
    DeadlineExceededError,
    JobFailedError,
    ServiceClient,
    ServiceError,
    ServiceUnavailableError,
    SubmitEnvelope,
)
from .http_api import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ServiceServer,
    make_server,
    serve,
)
from .jobs import (
    Job,
    JobCancelled,
    JobState,
    QueueFullError,
    SchedulerClosedError,
)
from .scheduler import DRAINING_ERROR, JobScheduler
from .store import (
    ReportStore,
    StoreCorruptionError,
    document_checksum,
    job_key,
)

__all__ = [
    "BackpressureError",
    "DeadlineExceededError",
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DRAINING_ERROR",
    "Job",
    "JobCancelled",
    "JobFailedError",
    "JobScheduler",
    "JobState",
    "QueueFullError",
    "ReportStore",
    "SchedulerClosedError",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "ServiceUnavailableError",
    "StoreCorruptionError",
    "SubmitEnvelope",
    "document_checksum",
    "job_key",
    "make_server",
    "serve",
]
