"""The stdlib-only HTTP front end of the assessment service.

Built on :class:`http.server.ThreadingHTTPServer` — no dependencies
beyond the standard library.  Resources::

    POST   /jobs             submit {"scenario", "kind", "quality",
                             "priority", "timeout", "seed",
                             "correlation_id", "idempotency_key"}
                             -> 202 job
                             (503 + Retry-After on queue saturation;
                             the X-Correlation-ID header also binds the
                             job's correlation ID; the Idempotency-Key
                             header dedups retried submissions — a
                             repeat inside the dedup window returns the
                             original job, even across a crash/restart
                             when a journal is configured; the
                             X-Deadline-Ms header is the job's execution
                             budget in milliseconds — equivalent to the
                             body's "timeout" field, which wins when
                             both are present)
    GET    /jobs             all known jobs (newest last); ``?state=``
                             filters by lifecycle state
    GET    /jobs/<id>        one job's status
    GET    /jobs/<id>/result 200 result doc | 202 still pending |
                             410 cancelled | 500 failed
    DELETE /jobs/<id>        cancel; returns the job status
    GET    /trace/<id>       the job's span tree (service.job:<id> root)
    GET    /healthz          liveness + queue depth + worker-slot
                             utilisation + report-store spool size +
                             SLO state + resource summary + journal lag +
                             crash-recovery summary + deadline posture
                             (jobs in grace, minimum remaining budget)
    GET    /metrics          RuntimeMetrics counters/stages/histograms +
                             scheduler queue stats + report-store totals +
                             worker/process resource gauges + SLO
                             burn-rate gauges; ``Accept: text/plain`` (or
                             ``?format=prometheus``) switches to
                             Prometheus text exposition
    GET    /slo              declarative SLOs with fast/slow-window
                             burn rates and the derived health state

Scenario references are either shipped catalogue names (``efes list``)
or scenario directories in the on-disk format; resolution is cached per
``(name, seed)`` so repeated submissions do not regenerate instances.
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..observability import prometheus_text
from ..resilience import CircuitOpenError, fault_point
from ..scenarios import (
    UnknownScenarioError,
    resolve_scenario,
    scenario_catalogue,
)
from .jobs import JobState, QueueFullError, SchedulerClosedError
from .scheduler import JobScheduler

#: Default bind address of ``efes serve``.
DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8765


class ServiceServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`JobScheduler`."""

    daemon_threads = True

    def __init__(self, address, scheduler: JobScheduler) -> None:
        super().__init__(address, ServiceHandler)
        self.scheduler = scheduler
        self._scenario_cache: dict[tuple[str, int], object] = {}
        self._scenario_lock = threading.Lock()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def resolve_scenario(self, name: str, seed: int):
        with self._scenario_lock:
            cached = self._scenario_cache.get((name, seed))
        if cached is not None:
            return cached
        # A catalogue miss warms every catalogue entry for this seed at
        # once: building one shipped scenario costs the same as building
        # them all, so the second distinct name is a cache hit.
        catalogue = scenario_catalogue(seed)
        with self._scenario_lock:
            for entry_name, entry in catalogue.items():
                self._scenario_cache.setdefault((entry_name, seed), entry)
        if name in catalogue:
            return catalogue[name]
        scenario = resolve_scenario(name, seed)
        with self._scenario_lock:
            self._scenario_cache[(name, seed)] = scenario
        return scenario


class ServiceHandler(BaseHTTPRequestHandler):
    server_version = "repro-service/1.0"
    protocol_version = "HTTP/1.1"

    # The default handler logs every request to stderr; the service logs
    # nothing (metrics are the observability surface).
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass

    @property
    def scheduler(self) -> JobScheduler:
        return self.server.scheduler

    # -- plumbing ---------------------------------------------------------

    def _send_json(self, status: int, doc: dict, headers: dict | None = None):
        body = json.dumps(doc, ensure_ascii=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        raw = self.rfile.read(length)
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ValueError(f"request body is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        return doc

    def _send_text(self, status: int, body: str, content_type: str) -> None:
        raw = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(raw)))
        self.end_headers()
        self.wfile.write(raw)

    def _segments(self) -> list[str]:
        path = self.path.split("?", 1)[0]
        return [segment for segment in path.split("/") if segment]

    def _query(self) -> dict[str, str]:
        parts = self.path.split("?", 1)
        if len(parts) < 2:
            return {}
        return {
            name: values[-1]
            for name, values in urllib.parse.parse_qs(parts[1]).items()
        }

    # -- routes -----------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            fault_point("http.handler", method="GET", path=self.path)
        except OSError as exc:
            self._send_json(500, {"error": f"internal fault: {exc}"})
            return
        segments = self._segments()
        if segments == ["healthz"]:
            stats = self.scheduler.stats()
            store = self.scheduler.store
            self._send_json(
                200,
                {
                    "status": "ok" if stats["open"] else "closing",
                    "backend": self.scheduler.runtime.backend,
                    "health": self.scheduler.health_snapshot(),
                    "queue_depth": stats["queue_depth"],
                    "running": stats["running"],
                    "workers": {
                        "busy": stats["busy_workers"],
                        "total": stats["workers"],
                        "utilisation": stats["worker_utilisation"],
                    },
                    "store": {
                        "entries": len(store),
                        "spooled": store.spooled_count(),
                        "quarantined": store.quarantined_count(),
                    },
                    "journal": stats.get("journal"),
                    "recovery": stats.get("recovery"),
                    "deadlines": stats.get("deadlines"),
                },
            )
            return
        if segments == ["metrics"]:
            self._get_metrics()
            return
        if segments == ["slo"]:
            self._send_json(200, self.scheduler.slo_snapshot())
            return
        if segments == ["jobs"]:
            jobs = self.scheduler.jobs()
            state = self._query().get("state")
            if state is not None:
                jobs = [job for job in jobs if job.state.value == state]
            self._send_json(200, {"jobs": [job.snapshot() for job in jobs]})
            return
        if len(segments) == 2 and segments[0] == "trace":
            self._get_trace(segments[1])
            return
        if len(segments) == 2 and segments[0] == "jobs":
            job = self.scheduler.job(segments[1])
            if job is None:
                self._send_json(404, {"error": f"unknown job {segments[1]!r}"})
            else:
                self._send_json(200, {"job": job.snapshot()})
            return
        if (
            len(segments) == 3
            and segments[0] == "jobs"
            and segments[2] == "result"
        ):
            self._get_result(segments[1])
            return
        self._send_json(404, {"error": f"no such resource: {self.path}"})

    def _get_metrics(self) -> None:
        """JSON by default; Prometheus exposition under text/plain.

        Content negotiation keys on the ``Accept`` header (any
        ``text/plain`` preference) or an explicit ``?format=prometheus``.
        """
        # Point-in-time gauges (resources, utilization, burn rates) are
        # re-sampled per scrape, so Prometheus always sees fresh values.
        self.scheduler.refresh_observability()
        stats = self.scheduler.stats()
        store = self.scheduler.store
        snapshot = self.scheduler.metrics.snapshot()
        accept = self.headers.get("Accept", "")
        wants_text = (
            "text/plain" in accept
            or self._query().get("format") == "prometheus"
        )
        if wants_text:
            gauges = {
                "queue_depth": float(stats["queue_depth"]),
                "queue_capacity": float(stats["max_queue"]),
                "workers_busy": float(stats["busy_workers"]),
                "workers_total": float(stats["workers"]),
                "jobs_running": float(stats["running"]),
                "store_entries": float(len(store)),
                "store_spooled": float(store.spooled_count()),
                "store_quarantined": float(store.quarantined_count()),
            }
            self._send_text(
                200,
                prometheus_text(snapshot, extra_gauges=gauges),
                "text/plain; version=0.0.4; charset=utf-8",
            )
            return
        self._send_json(
            200,
            {
                **snapshot.to_dict(),
                "scheduler": stats,
                "store": {
                    "entries": len(store),
                    "spooled": store.spooled_count(),
                    "quarantined": store.quarantined_count(),
                },
            },
        )

    def _get_trace(self, job_id: str) -> None:
        job = self.scheduler.job(job_id)
        if job is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
        elif job.trace is not None:
            self._send_json(200, {"job": job.snapshot(), "trace": job.trace})
        elif not job.state.is_terminal:
            self._send_json(202, {"job": job.snapshot()})
        else:
            self._send_json(
                404,
                {
                    "job": job.snapshot(),
                    "error": f"no trace recorded for job {job_id!r} "
                    "(from-store results and tracing-disabled schedulers "
                    "produce none)",
                },
            )

    def _get_result(self, job_id: str) -> None:
        job = self.scheduler.job(job_id)
        if job is None:
            self._send_json(404, {"error": f"unknown job {job_id!r}"})
        elif job.state is JobState.DONE:
            result = job.result
            if result is None and job.store_key is not None:
                # A job recovered as settled after a crash keeps no
                # result in memory; the document lives in the store.
                result = self.scheduler.store.get(job.store_key)
            self._send_json(200, {"job": job.snapshot(), "result": result})
        elif job.state is JobState.FAILED:
            self._send_json(500, {"job": job.snapshot(), "error": job.error})
        elif job.state is JobState.CANCELLED:
            self._send_json(410, {"job": job.snapshot(), "error": "cancelled"})
        else:  # queued or running: not ready yet
            self._send_json(202, {"job": job.snapshot()})

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            fault_point("http.handler", method="POST", path=self.path)
        except OSError as exc:
            self._send_json(500, {"error": f"internal fault: {exc}"})
            return
        if self._segments() != ["jobs"]:
            self._send_json(404, {"error": f"no such resource: {self.path}"})
            return
        try:
            body = self._read_body()
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        name = body.get("scenario")
        if not name:
            self._send_json(400, {"error": "missing required field 'scenario'"})
            return
        kind = body.get("kind", "estimate")
        try:
            seed = int(body.get("seed", 1))
            scenario = self.server.resolve_scenario(str(name), seed)
            correlation = body.get("correlation_id") or self.headers.get(
                "X-Correlation-ID"
            )
            idempotency = body.get("idempotency_key") or self.headers.get(
                "Idempotency-Key"
            )
            timeout = body.get("timeout")
            if timeout is None:
                deadline_ms = self.headers.get("X-Deadline-Ms")
                if deadline_ms is not None:
                    timeout = float(deadline_ms) / 1000.0
            job = self.scheduler.submit(
                scenario,
                kind=kind,
                quality=body.get("quality"),
                priority=int(body.get("priority", 0)),
                timeout=timeout,
                correlation_id=correlation,
                idempotency_key=idempotency,
                scenario_seed=seed,
            )
        except UnknownScenarioError as exc:
            self._send_json(404, {"error": str(exc)})
        except QueueFullError as exc:
            self._send_json(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
        except CircuitOpenError as exc:
            # The breaker is shedding load: explicit backoff, no body of
            # doomed work.  Unlike queue backpressure, the payload has no
            # ``retry_after`` key, so clients classify it as
            # ServiceUnavailableError and apply their retry policy.
            self._send_json(
                503,
                {"error": str(exc), "circuit": exc.name},
                headers={"Retry-After": f"{exc.retry_after:g}"},
            )
        except SchedulerClosedError as exc:
            self._send_json(503, {"error": str(exc)})
        except OSError as exc:
            # A failing journal append refuses the ack (write-ahead
            # contract): the client retries — with its idempotency key —
            # rather than trusting a job a crash could lose.
            self._send_json(503, {"error": f"journal unavailable: {exc}"})
        except (TypeError, ValueError) as exc:
            self._send_json(400, {"error": str(exc)})
        else:
            self._send_json(202, {"job": job.snapshot()})

    def do_DELETE(self) -> None:  # noqa: N802 - stdlib naming
        segments = self._segments()
        if len(segments) != 2 or segments[0] != "jobs":
            self._send_json(404, {"error": f"no such resource: {self.path}"})
            return
        try:
            job = self.scheduler.cancel(segments[1])
        except KeyError:
            self._send_json(404, {"error": f"unknown job {segments[1]!r}"})
            return
        self._send_json(200, {"job": job.snapshot()})


def make_server(
    scheduler: JobScheduler,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> ServiceServer:
    """Bind a service server; ``port=0`` picks an ephemeral port."""
    return ServiceServer((host, port), scheduler)


def serve(
    scheduler: JobScheduler,
    host: str = DEFAULT_HOST,
    port: int = DEFAULT_PORT,
) -> None:
    """Blocking entry point used by ``efes serve``."""
    server = make_server(scheduler, host, port)
    try:
        server.serve_forever()
    finally:
        server.server_close()
