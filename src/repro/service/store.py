"""Content-addressed persistence for assessment results.

The :class:`ReportStore` maps a *content key* — a SHA-1 over the scenario
fingerprint (:func:`repro.runtime.fingerprint_scenario`), the job kind,
and the expected result quality — to the job's serialised result
document.  Because the key covers data content rather than scenario
names, a job submitted twice for identical scenario content is served
from the store the second time, across processes if a spool directory is
configured.

Layout of the spool directory: one ``<key>.json`` file per entry,
written atomically (temp file + rename) so a crashed writer never leaves
a torn document behind.  Hits/misses/puts are counted on the attached
:class:`~repro.runtime.metrics.RuntimeMetrics` (``store_hits``,
``store_misses``, ``store_puts``), which is how the service's
``/metrics`` endpoint exposes store effectiveness.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path

from ..runtime import RuntimeMetrics, fingerprint_scenario

#: Store format marker embedded in every spooled document.
STORE_VERSION = 1


def job_key(scenario, kind: str, quality: str | None = None) -> str:
    """The content address of one (scenario content, kind, quality) job."""
    digest = hashlib.sha1()
    digest.update(fingerprint_scenario(scenario).encode())
    digest.update(b"\x1f")
    digest.update(kind.encode("utf-8"))
    digest.update(b"\x1f")
    digest.update((quality or "").encode("utf-8"))
    return digest.hexdigest()


class ReportStore:
    """An in-memory + optional on-disk map of content key -> result doc.

    ``directory=None`` keeps the store purely in memory; with a directory
    every put is spooled to disk and misses fall back to the spool, so
    results survive process restarts.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        metrics: RuntimeMetrics | None = None,
    ) -> None:
        self.directory = Path(directory) if directory is not None else None
        self.metrics = metrics if metrics is not None else RuntimeMetrics()
        self._lock = threading.Lock()
        self._entries: dict[str, dict] = {}
        if self.directory is not None:
            self.directory.mkdir(parents=True, exist_ok=True)

    # -- core protocol ----------------------------------------------------

    def get(self, key: str) -> dict | None:
        """The stored document, or ``None``; counts a hit or a miss."""
        with self._lock:
            doc = self._entries.get(key)
        if doc is None and self.directory is not None:
            doc = self._read_spool(key)
            if doc is not None:
                with self._lock:
                    self._entries[key] = doc
        if doc is None:
            self.metrics.increment("store_misses")
            return None
        self.metrics.increment("store_hits")
        return doc

    def contains(self, key: str) -> bool:
        """Membership without touching the hit/miss counters."""
        with self._lock:
            if key in self._entries:
                return True
        return (
            self.directory is not None and (self._spool_path(key)).exists()
        )

    def put(self, key: str, doc: dict) -> None:
        with self._lock:
            self._entries[key] = doc
        self.metrics.increment("store_puts")
        if self.directory is not None:
            self._write_spool(key, doc)

    # -- spool ------------------------------------------------------------

    def _spool_path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def _read_spool(self, key: str) -> dict | None:
        path = self._spool_path(key)
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None  # missing or torn entry: treat as a miss
        if envelope.get("version") != STORE_VERSION:
            return None
        return envelope.get("document")

    def _write_spool(self, key: str, doc: dict) -> None:
        envelope = {"version": STORE_VERSION, "key": key, "document": doc}
        path = self._spool_path(key)
        temporary = path.with_suffix(f".tmp.{os.getpid()}.{threading.get_ident()}")
        temporary.write_text(
            json.dumps(envelope, sort_keys=True, ensure_ascii=False),
            encoding="utf-8",
        )
        temporary.replace(path)

    # -- maintenance ------------------------------------------------------

    def clear(self, *, spool: bool = False) -> None:
        """Drop the in-memory entries (and, optionally, the spool files)."""
        with self._lock:
            self._entries.clear()
        if spool and self.directory is not None:
            for path in self.directory.glob("*.json"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - concurrent cleanup
                    pass

    def spooled_count(self) -> int:
        if self.directory is None:
            return 0
        return sum(1 for _ in self.directory.glob("*.json"))

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        where = str(self.directory) if self.directory else "memory"
        return f"ReportStore({len(self)} entries, spool={where})"
